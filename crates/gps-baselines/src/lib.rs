//! Baseline streaming triangle estimators the paper compares against (§6,
//! Tables 2–3):
//!
//! - [`triest::TriestBase`] / [`triest::TriestImpr`] — reservoir-based
//!   estimators of De Stefani, Epasto, Riondato & Upfal (KDD 2016),
//!   insertion-only variants.
//! - [`mascot::Mascot`] / [`mascot::MascotC`] — Bernoulli edge sampling of
//!   Lim & Kang (KDD 2015), unconditional and conditional counting.
//! - [`nsamp::NSamp`] / [`nsamp_bulk::NSampBulk`] — neighborhood sampling of
//!   Pavan, Tangwongsan, Tirthapura & Wu (VLDB 2013), `r` independent
//!   estimators; the bulk variant implements the indexing/skipping that the
//!   paper says NSAMP needs to be practical.
//! - [`jha::JhaWedgeSampler`] — wedge sampling of Jha, Seshadhri & Pinar
//!   (KDD 2013), the transitivity estimator the paper also compared against.
//! - [`uniform_reservoir::UniformReservoir`] — plain uniform edge reservoir
//!   with post-hoc Horvitz–Thompson scaling (the natural "no weighting, no
//!   in-stream logic" strawman).
//!
//! All baselines implement [`TriangleEstimator`] so the experiment harness
//! can drive them interchangeably alongside GPS.
//!
//! The store-based baselines (TRIEST, MASCOT, JHA, uniform reservoir) keep
//! their sampled topology in [`common::EdgeSampleStore`], which runs on the
//! same `gps_graph::AdjacencyBackend` substrate as `GpsSampler` — compact
//! by default, nested-hash selectable per sampler via `with_backend` — so
//! Table 2/3 comparisons measure algorithms, not data structures. Same-seed
//! runs are bit-identical across backends
//! (`tests/backend_equivalence.rs`). NSAMP keeps no adjacency at all (at
//! most two edges per [`common::NeighborhoodEstimator`]) and therefore has
//! no backend axis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod common;
pub mod jha;
pub mod mascot;
pub mod nsamp;
pub mod nsamp_bulk;
pub mod triest;
pub mod uniform_reservoir;

pub use common::TriangleEstimator;
pub use jha::JhaWedgeSampler;
pub use mascot::{Mascot, MascotC};
pub use nsamp::NSamp;
pub use nsamp_bulk::NSampBulk;
pub use triest::{TriestBase, TriestImpr};
pub use uniform_reservoir::UniformReservoir;
