//! Bulk-processed NSAMP.
//!
//! The paper notes NSAMP "achieves a near-linear total time if and only if
//! running in bulk-processing. Otherwise the algorithm is too slow and not
//! practical even for medium size graphs" (§6). This module implements the
//! two optimizations that remove the naive `O(r)` per-edge cost:
//!
//! 1. **Geometric skipping for level-1 resampling.** At time `t` each of
//!    the `r` estimators independently replaces its `e1` with probability
//!    `1/t`; instead of `r` coin flips we draw the number of successes and
//!    pick that many estimators — `O(E[successes]) = O(r/t)` amortized,
//!    `O(r·ln T)` over the whole stream.
//! 2. **Endpoint inverted index.** Level-2 updates and wedge-closure checks
//!    only concern estimators whose `e1` touches an endpoint of the arrival
//!    (the closing edge of a wedge shares a node with `e1`), so an index
//!    `node → estimator ids` reduces per-edge work to the estimators that
//!    can actually react.
//!
//! The estimator state and the resulting statistics are identical in
//! distribution to the naive [`crate::nsamp::NSamp`]; only the schedule of
//! RNG draws differs.

use crate::common::{nsamp_estimate, NeighborhoodEstimator, TriangleEstimator};
use gps_graph::types::{Edge, NodeId};
use gps_graph::FxHashMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// NSAMP with bulk processing: statistically equivalent to
/// [`crate::nsamp::NSamp`] at a fraction of the per-edge cost.
///
/// Like the naive variant, the per-estimator state
/// ([`NeighborhoodEstimator`], shared via `common`) holds at most two
/// concrete edges and no adjacency structure; the `node → estimators`
/// inverted index below maps nodes to *estimator ids*, not edges, so there
/// is no adjacency-backend axis here either.
pub struct NSampBulk {
    estimators: Vec<NeighborhoodEstimator>,
    /// node → ids of estimators whose current `e1` touches the node.
    /// Entries go stale when `e1` changes; consumers re-validate.
    index: FxHashMap<NodeId, Vec<u32>>,
    t: u64,
    rng: SmallRng,
}

impl NSampBulk {
    /// Creates a bulk-processed NSAMP with `r` estimators.
    pub fn new(r: usize, seed: u64) -> Self {
        assert!(r > 0, "need at least one estimator");
        NSampBulk {
            estimators: vec![NeighborhoodEstimator::default(); r],
            index: FxHashMap::default(),
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of estimators.
    pub fn estimator_count(&self) -> usize {
        self.estimators.len()
    }

    fn assign_e1(&mut self, id: u32, edge: Edge) {
        self.estimators[id as usize] = NeighborhoodEstimator {
            e1: Some(edge),
            ..Default::default()
        };
        self.index.entry(edge.u()).or_default().push(id);
        self.index.entry(edge.v()).or_default().push(id);
    }

    /// Visits estimators whose **current** `e1` touches `node`, compacting
    /// stale index entries in passing.
    fn touching(&mut self, node: NodeId, out: &mut Vec<u32>) {
        let Some(ids) = self.index.get_mut(&node) else {
            return;
        };
        ids.retain(|&id| {
            let live = self.estimators[id as usize]
                .e1
                .is_some_and(|e1| e1.touches(node));
            if live {
                out.push(id);
            }
            live
        });
        if ids.is_empty() {
            self.index.remove(&node);
        }
    }
}

impl TriangleEstimator for NSampBulk {
    fn process(&mut self, edge: Edge) {
        self.t += 1;
        let t = self.t;
        let r = self.estimators.len();

        // Level 1 via geometric skipping: each estimator flips p = 1/t; the
        // number of successes is Binomial(r, 1/t), sampled by walking
        // geometric gaps so the cost is proportional to the successes.
        if t == 1 {
            for id in 0..r as u32 {
                self.assign_e1(id, edge);
            }
        } else {
            let p = 1.0 / t as f64;
            let log1p = (1.0 - p).ln();
            let mut i = 0usize;
            loop {
                // Skip ~Geometric(p) failures.
                let u: f64 = 1.0 - self.rng.random::<f64>();
                let skip = (u.ln() / log1p).floor() as usize;
                i += skip;
                if i >= r {
                    break;
                }
                self.assign_e1(i as u32, edge);
                i += 1;
            }
        }

        // Levels 2 + closure detection: only estimators whose e1 touches an
        // endpoint of this arrival can react.
        let mut ids = Vec::new();
        self.touching(edge.u(), &mut ids);
        self.touching(edge.v(), &mut ids);
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let est = &mut self.estimators[id as usize];
            let e1 = est.e1.expect("indexed estimators have e1");
            if e1 == edge {
                continue; // the arrival that just became e1
            }
            if edge.adjacent(&e1) {
                est.c += 1;
                if self.rng.random_range(0..est.c) == 0 {
                    est.e2 = Some(edge);
                    est.closed = false;
                }
            }
            if !est.closed && est.closing_edge() == Some(edge) {
                est.closed = true;
            }
        }
    }

    fn triangle_estimate(&self) -> f64 {
        nsamp_estimate(&self.estimators, self.t)
    }

    fn stored_edges(&self) -> usize {
        self.estimators.iter().map(|e| e.stored_edges()).sum()
    }

    fn name(&self) -> &'static str {
        "NSAMP-BULK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;
    use gps_stream::{gen, permuted};

    #[test]
    fn unbiased_on_clustered_graph() {
        let edges = gen::holme_kim(200, 3, 0.5, 21);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 40;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 900 + seed);
            let mut n = NSampBulk::new(512, seed);
            for &e in &stream {
                n.process(e);
            }
            sum += n.triangle_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.20,
            "NSAMP-BULK mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn matches_naive_variant_in_distribution() {
        // Same estimator count, same workload: the *means over seeds* of
        // naive and bulk NSAMP must agree (they sample the same process).
        use crate::nsamp::NSamp;
        let edges = gen::holme_kim(150, 3, 0.6, 5);
        let runs = 60;
        let (mut naive_sum, mut bulk_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let stream = permuted(&edges, 3_000 + seed);
            let mut a = NSamp::new(256, seed);
            let mut b = NSampBulk::new(256, seed + 9_999);
            for &e in &stream {
                a.process(e);
                b.process(e);
            }
            naive_sum += a.triangle_estimate();
            bulk_sum += b.triangle_estimate();
        }
        let (na, bu) = (naive_sum / runs as f64, bulk_sum / runs as f64);
        assert!(
            (na - bu).abs() / na.max(1.0) < 0.25,
            "naive mean {na} and bulk mean {bu} should agree"
        );
    }

    #[test]
    fn no_triangles_means_zero() {
        let mut n = NSampBulk::new(64, 3);
        for i in 0..200u32 {
            n.process(Edge::new(i, i + 1));
        }
        assert_eq!(n.triangle_estimate(), 0.0);
    }

    #[test]
    fn index_stays_consistent_under_heavy_replacement() {
        // Small t keeps level-1 replacement frequent, churning the index.
        let mut n = NSampBulk::new(16, 7);
        for e in gen::erdos_renyi(30, 200, 9) {
            n.process(e);
        }
        // Every estimator has a current e1 and every (estimator, endpoint)
        // pair is findable through the index.
        for (id, est) in n.estimators.iter().enumerate() {
            let e1 = est.e1.expect("all estimators seeded by now");
            for node in [e1.u(), e1.v()] {
                assert!(
                    n.index
                        .get(&node)
                        .is_some_and(|ids| ids.contains(&(id as u32))),
                    "estimator {id} missing from index of node {node}"
                );
            }
        }
        assert!(n.stored_edges() >= 16);
    }

    #[test]
    fn first_arrival_seeds_every_estimator() {
        let mut n = NSampBulk::new(8, 1);
        n.process(Edge::new(5, 6));
        assert_eq!(n.stored_edges(), 8);
    }
}
