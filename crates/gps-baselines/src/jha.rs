//! Wedge sampling — Jha, Seshadhri & Pinar (KDD 2013), "A space efficient
//! streaming algorithm for triangle counting using the birthday paradox".
//!
//! The GPS paper compares against this method too ("results omitted for
//! brevity"; §6 notes it is slow at `O(s_e)` per edge and that GPS achieves
//! ≥ 10× better accuracy). Two coupled reservoirs:
//!
//! 1. a uniform edge reservoir `R_e` of size `s_e`;
//! 2. a wedge reservoir `R_w` of size `s_w`, holding uniform wedges among
//!    those formed by the *current* edge reservoir. A wedge is `closed` if
//!    its closing edge arrived after the wedge entered the reservoir.
//!
//! Estimates at time `t`:
//! - transitivity `κ̂ = 3 · (closed fraction of R_w)`;
//! - total wedges `Ŵ = tot_wedges · t(t−1) / (s_e(s_e−1))` where
//!   `tot_wedges` counts wedges inside `R_e`;
//! - triangles `T̂ = κ̂ · Ŵ / 3`.

use crate::common::{EdgeSampleStore, TriangleEstimator};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy, Debug)]
struct WedgeSlot {
    e1: Edge,
    e2: Edge,
    closed: bool,
}

impl WedgeSlot {
    fn closing_edge(&self) -> Option<Edge> {
        let shared = self.e1.shared_endpoint(&self.e2)?;
        let a = self.e1.other(shared).expect("shared endpoint on e1");
        let b = self.e2.other(shared).expect("shared endpoint on e2");
        Edge::try_new(a, b)
    }
}

/// The Jha–Seshadhri–Pinar streaming wedge sampler.
pub struct JhaWedgeSampler {
    edge_capacity: usize,
    store: EdgeSampleStore,
    wedges: Vec<Option<WedgeSlot>>,
    /// Number of wedges formed by the current edge reservoir.
    tot_wedges: u64,
    t: u64,
    rng: SmallRng,
    /// Scratch for the wedges the newest edge created.
    new_wedges: Vec<Edge>,
}

impl JhaWedgeSampler {
    /// Creates a sampler with `edge_capacity` reservoir edges and
    /// `wedge_capacity` wedge slots, on the default compact adjacency
    /// backend.
    pub fn new(edge_capacity: usize, wedge_capacity: usize, seed: u64) -> Self {
        Self::with_backend(edge_capacity, wedge_capacity, seed, BackendKind::Compact)
    }

    /// [`JhaWedgeSampler::new`] on an explicit adjacency backend. The new
    /// wedges formed by an admitted edge are canonically sorted before the
    /// uniform slot draw, so same-seed runs are bit-identical on either
    /// backend despite their differing neighbor-iteration orders.
    pub fn with_backend(
        edge_capacity: usize,
        wedge_capacity: usize,
        seed: u64,
        backend: BackendKind,
    ) -> Self {
        assert!(edge_capacity >= 2, "need at least two reservoir edges");
        assert!(wedge_capacity >= 1, "need at least one wedge slot");
        JhaWedgeSampler {
            edge_capacity,
            store: EdgeSampleStore::with_backend(backend),
            wedges: vec![None; wedge_capacity],
            tot_wedges: 0,
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
            new_wedges: Vec::new(),
        }
    }

    /// Estimated transitivity (global clustering coefficient) `κ̂`.
    pub fn transitivity_estimate(&self) -> f64 {
        let filled = self.wedges.iter().flatten().count();
        if filled == 0 {
            return 0.0;
        }
        let closed = self.wedges.iter().flatten().filter(|w| w.closed).count();
        3.0 * closed as f64 / filled as f64
    }

    /// Estimated total number of wedges in the stream so far.
    pub fn wedge_estimate(&self) -> f64 {
        let t = self.t as f64;
        let s = self.store.len() as f64;
        if s < 2.0 {
            return self.tot_wedges as f64;
        }
        self.tot_wedges as f64 * (t * (t - 1.0)) / (s * (s - 1.0))
    }

    /// Removes `edge` from the reservoir, updating `tot_wedges`.
    fn evict(&mut self, index: usize) {
        let edge = self.store.edges()[index];
        self.store.remove(edge);
        let lost = self.store.degree(edge.u()) + self.store.degree(edge.v());
        self.tot_wedges -= lost as u64;
        // Wedge slots built on the evicted edge stay; their statistics
        // remain valid snapshots of uniform wedges at their creation time
        // (the JSP analysis keeps them until replaced).
    }

    fn admit(&mut self, edge: Edge) {
        // Wedges the new edge forms with the current reservoir.
        self.new_wedges.clear();
        let (u, v) = (edge.u(), edge.v());
        self.store.adjacency().for_each_neighbor(u, |nbr, ()| {
            if nbr != v {
                self.new_wedges.push(Edge::new(u, nbr));
            }
        });
        self.store.adjacency().for_each_neighbor(v, |nbr, ()| {
            if nbr != u {
                self.new_wedges.push(Edge::new(v, nbr));
            }
        });
        // Canonical order: the uniform index draw below must select the
        // same wedge whatever neighbor-iteration order the backend has.
        self.new_wedges.sort_unstable();
        self.store.insert(edge);
        self.tot_wedges += self.new_wedges.len() as u64;
        if self.tot_wedges == 0 || self.new_wedges.is_empty() {
            return;
        }
        // Each wedge slot is replaced by a uniform new wedge with
        // probability new/tot — this keeps R_w uniform over the wedges of
        // R_e (the birthday-paradox core of the algorithm).
        let p_new = self.new_wedges.len() as f64 / self.tot_wedges as f64;
        for i in 0..self.wedges.len() {
            if self.wedges[i].is_none() || self.rng.random::<f64>() < p_new {
                let partner = self.new_wedges[self.rng.random_range(0..self.new_wedges.len())];
                self.wedges[i] = Some(WedgeSlot {
                    e1: edge,
                    e2: partner,
                    closed: false,
                });
            }
        }
    }
}

impl TriangleEstimator for JhaWedgeSampler {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return;
        }
        self.t += 1;
        // Closure detection against the wedge reservoir.
        for slot in self.wedges.iter_mut().flatten() {
            if !slot.closed && slot.closing_edge() == Some(edge) {
                slot.closed = true;
            }
        }
        // Uniform edge reservoir.
        if self.store.len() < self.edge_capacity {
            self.admit(edge);
        } else if self.rng.random::<f64>() < self.edge_capacity as f64 / self.t as f64 {
            let victim = self.rng.random_range(0..self.store.len());
            self.evict(victim);
            self.admit(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        self.transitivity_estimate() / 3.0 * self.wedge_estimate()
    }

    fn stored_edges(&self) -> usize {
        // Edge reservoir + two edges per wedge slot.
        self.store.len() + 2 * self.wedges.iter().flatten().count()
    }

    fn name(&self) -> &'static str {
        "JHA-WEDGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;
    use gps_stream::{gen, permuted};

    #[test]
    fn transitivity_converges_on_clustered_graph() {
        let edges = gen::holme_kim(600, 3, 0.6, 11);
        let g = CsrGraph::from_edges(&edges);
        let alpha = exact::global_clustering(&g);
        let runs = 40;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 600 + seed);
            let mut jha = JhaWedgeSampler::new(edges.len() / 3, 200, seed);
            for &e in &stream {
                jha.process(e);
            }
            sum += jha.transitivity_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - alpha).abs() / alpha < 0.35,
            "JHA transitivity mean {mean} vs exact {alpha}"
        );
    }

    #[test]
    fn wedge_estimate_tracks_truth() {
        let edges = gen::holme_kim(600, 3, 0.5, 3);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::wedge_count(&g) as f64;
        let runs = 30;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 100 + seed);
            let mut jha = JhaWedgeSampler::new(edges.len() / 4, 100, seed);
            for &e in &stream {
                jha.process(e);
            }
            sum += jha.wedge_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.15,
            "JHA wedge mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn triangle_estimate_is_in_the_right_ballpark() {
        let edges = gen::holme_kim(600, 3, 0.6, 17);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 40;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 900 + seed);
            let mut jha = JhaWedgeSampler::new(edges.len() / 3, 300, seed);
            for &e in &stream {
                jha.process(e);
            }
            sum += jha.triangle_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.40,
            "JHA triangle mean {mean} vs truth {truth} (additive-error method)"
        );
    }

    #[test]
    fn triangle_free_stream_estimates_zero() {
        let mut jha = JhaWedgeSampler::new(64, 32, 5);
        for i in 0..300u32 {
            jha.process(Edge::new(i, i + 1));
        }
        assert_eq!(jha.transitivity_estimate(), 0.0);
        assert_eq!(jha.triangle_estimate(), 0.0);
        assert!(jha.wedge_estimate() > 0.0, "the path still has wedges");
    }

    #[test]
    fn stored_edges_respects_both_budgets() {
        let mut jha = JhaWedgeSampler::new(50, 20, 1);
        for e in gen::erdos_renyi(100, 400, 3) {
            jha.process(e);
        }
        assert!(jha.stored_edges() <= 50 + 2 * 20);
    }
}
