//! TRIEST — reservoir-sampling triangle estimators (De Stefani, Epasto,
//! Riondato & Upfal, KDD 2016), insertion-only variants as used in the
//! paper's comparison (Tables 2–3).

use crate::common::{EdgeSampleStore, TriangleEstimator};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// TRIEST-BASE: classic uniform reservoir over edges; counts triangles
/// *inside the sample* and rescales by the inverse probability that all
/// three edges of a triangle are jointly sampled,
/// `ξ(t) = t(t−1)(t−2) / (M(M−1)(M−2))`.
///
/// ```
/// use gps_baselines::{TriangleEstimator, TriestBase};
/// use gps_graph::Edge;
///
/// // A reservoir big enough to hold the whole stream is exact: K4 has
/// // C(4,3) = 4 triangles.
/// let mut est = TriestBase::new(100, 7);
/// for a in 0..4u32 {
///     for b in (a + 1)..4 {
///         est.process(Edge::new(a, b));
///     }
/// }
/// assert_eq!(est.triangle_estimate(), 4.0);
/// assert_eq!(est.stored_edges(), 6);
/// ```
pub struct TriestBase {
    capacity: usize,
    store: EdgeSampleStore,
    sample_triangles: f64,
    t: u64,
    rng: SmallRng,
}

impl TriestBase {
    /// Creates a TRIEST-BASE estimator with reservoir capacity `capacity`
    /// (must be ≥ 3 so the scaling factor is defined), on the default
    /// compact adjacency backend.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_backend(capacity, seed, BackendKind::Compact)
    }

    /// [`TriestBase::new`] on an explicit adjacency backend. Same-seed runs
    /// produce bit-identical estimates on either backend: the estimator
    /// only queries order-oblivious topology counts.
    pub fn with_backend(capacity: usize, seed: u64, backend: BackendKind) -> Self {
        assert!(capacity >= 3, "TRIEST needs capacity ≥ 3");
        TriestBase {
            capacity,
            store: EdgeSampleStore::with_backend(backend),
            sample_triangles: 0.0,
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn scaling(&self) -> f64 {
        let t = self.t as f64;
        let m = self.capacity as f64;
        ((t * (t - 1.0) * (t - 2.0)) / (m * (m - 1.0) * (m - 2.0))).max(1.0)
    }

    /// Current stream position.
    pub fn arrivals(&self) -> u64 {
        self.t
    }
}

impl TriangleEstimator for TriestBase {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return; // simplified streams have unique edges; be defensive
        }
        self.t += 1;
        if self.store.len() < self.capacity {
            self.sample_triangles += self.store.common_neighbors(edge) as f64;
            self.store.insert(edge);
        } else if self.rng.random::<f64>() < self.capacity as f64 / self.t as f64 {
            let victim_idx = self.rng.random_range(0..self.store.len());
            let victim = self.store.remove_at(victim_idx);
            self.sample_triangles -= self.store.common_neighbors(victim) as f64;
            self.sample_triangles += self.store.common_neighbors(edge) as f64;
            self.store.insert(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        self.sample_triangles * self.scaling()
    }

    fn stored_edges(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        "TRIEST"
    }
}

/// TRIEST-IMPR: counts on *every* arrival before the sampling step, weighted
/// by `η(t) = max(1, (t−1)(t−2) / (M(M−1)))`, and never decrements. The
/// counter itself is the (unbiased) estimate — strictly lower variance than
/// BASE on the same reservoir.
pub struct TriestImpr {
    capacity: usize,
    store: EdgeSampleStore,
    counter: f64,
    t: u64,
    rng: SmallRng,
}

impl TriestImpr {
    /// Creates a TRIEST-IMPR estimator with reservoir capacity `capacity`,
    /// on the default compact adjacency backend.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_backend(capacity, seed, BackendKind::Compact)
    }

    /// [`TriestImpr::new`] on an explicit adjacency backend (same-seed
    /// backend-independence as [`TriestBase::with_backend`]).
    pub fn with_backend(capacity: usize, seed: u64, backend: BackendKind) -> Self {
        assert!(capacity >= 2, "TRIEST-IMPR needs capacity ≥ 2");
        TriestImpr {
            capacity,
            store: EdgeSampleStore::with_backend(backend),
            counter: 0.0,
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TriangleEstimator for TriestImpr {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return;
        }
        self.t += 1;
        let t = self.t as f64;
        let m = self.capacity as f64;
        let eta = (((t - 1.0) * (t - 2.0)) / (m * (m - 1.0))).max(1.0);
        self.counter += eta * self.store.common_neighbors(edge) as f64;
        if self.store.len() < self.capacity {
            self.store.insert(edge);
        } else if self.rng.random::<f64>() < m / t {
            let victim_idx = self.rng.random_range(0..self.store.len());
            self.store.remove_at(victim_idx);
            self.store.insert(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        self.counter
    }

    fn stored_edges(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        "TRIEST-IMPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;
    use gps_stream::{gen, permuted};

    fn k5() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn base_is_exact_when_reservoir_holds_everything() {
        let mut est = TriestBase::new(100, 1);
        for e in k5() {
            est.process(e);
        }
        assert_eq!(est.triangle_estimate(), 10.0); // C(5,3)
        assert_eq!(est.stored_edges(), 10);
    }

    #[test]
    fn impr_is_exact_when_reservoir_holds_everything() {
        let mut est = TriestImpr::new(100, 1);
        for e in k5() {
            est.process(e);
        }
        assert_eq!(est.triangle_estimate(), 10.0);
    }

    #[test]
    fn reservoir_never_exceeds_capacity() {
        let mut est = TriestBase::new(8, 3);
        for e in gen::erdos_renyi(100, 400, 7) {
            est.process(e);
            assert!(est.stored_edges() <= 8);
        }
        assert_eq!(est.stored_edges(), 8);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut est = TriestBase::new(10, 0);
        est.process(Edge::new(0, 1));
        est.process(Edge::new(1, 0));
        assert_eq!(est.arrivals(), 1);
    }

    #[test]
    fn base_and_impr_are_unbiased_on_average() {
        let edges = gen::holme_kim(400, 3, 0.5, 99);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let m = edges.len() / 4;
        let runs = 80;
        let (mut base_sum, mut impr_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let stream = permuted(&edges, 500 + seed);
            let mut base = TriestBase::new(m, seed);
            let mut impr = TriestImpr::new(m, seed);
            for &e in &stream {
                base.process(e);
                impr.process(e);
            }
            base_sum += base.triangle_estimate();
            impr_sum += impr.triangle_estimate();
        }
        let base_mean = base_sum / runs as f64;
        let impr_mean = impr_sum / runs as f64;
        assert!(
            (base_mean - truth).abs() / truth < 0.15,
            "TRIEST-BASE mean {base_mean} vs truth {truth}"
        );
        assert!(
            (impr_mean - truth).abs() / truth < 0.10,
            "TRIEST-IMPR mean {impr_mean} vs truth {truth}"
        );
    }

    #[test]
    fn impr_has_lower_error_than_base() {
        // The headline claim of the TRIEST paper, also visible in the GPS
        // paper's Table 3.
        let edges = gen::holme_kim(400, 3, 0.5, 7);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let m = edges.len() / 5;
        let runs = 60;
        let (mut base_sq, mut impr_sq) = (0.0, 0.0);
        for seed in 0..runs {
            let stream = permuted(&edges, 800 + seed);
            let mut base = TriestBase::new(m, seed);
            let mut impr = TriestImpr::new(m, seed);
            for &e in &stream {
                base.process(e);
                impr.process(e);
            }
            let b = (base.triangle_estimate() - truth) / truth;
            let i = (impr.triangle_estimate() - truth) / truth;
            base_sq += b * b;
            impr_sq += i * i;
        }
        assert!(
            impr_sq < base_sq,
            "IMPR MSE ({impr_sq:.4}) should beat BASE ({base_sq:.4})"
        );
    }
}
