//! Shared infrastructure for the baseline estimators.

use gps_graph::hash::FxHashMap;
use gps_graph::types::{Edge, EdgeKey};
use gps_graph::AdjacencyMap;

/// A streaming triangle-count estimator: the minimal interface the
/// experiment harness needs to drive GPS and every baseline uniformly.
pub trait TriangleEstimator {
    /// Observes one stream arrival.
    fn process(&mut self, edge: Edge);

    /// Current estimate of the number of triangles among all edges streamed
    /// so far.
    fn triangle_estimate(&self) -> f64;

    /// Number of edges currently stored (memory footprint proxy; the paper
    /// compares methods at equal stored-edge budgets).
    fn stored_edges(&self) -> usize;

    /// Short display name for tables.
    fn name(&self) -> &'static str;
}

/// An edge sample supporting O(1) uniform eviction *and* O(1) adjacency
/// queries — the store both TRIEST variants and the uniform reservoir are
/// built on. (Uniform eviction needs an indexable vector; triangle counting
/// needs neighbor sets; this keeps the two views in sync.)
#[derive(Clone, Debug, Default)]
pub struct EdgeSampleStore {
    edges: Vec<Edge>,
    positions: FxHashMap<EdgeKey, usize>,
    adj: AdjacencyMap<()>,
}

impl EdgeSampleStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `edge` is stored.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        self.positions.contains_key(&edge.key())
    }

    /// Inserts an edge; returns `false` if it was already present.
    pub fn insert(&mut self, edge: Edge) -> bool {
        if self.contains(edge) {
            return false;
        }
        self.positions.insert(edge.key(), self.edges.len());
        self.edges.push(edge);
        self.adj.insert(edge, ());
        true
    }

    /// Removes a specific edge; returns `false` if absent.
    pub fn remove(&mut self, edge: Edge) -> bool {
        let Some(pos) = self.positions.remove(&edge.key()) else {
            return false;
        };
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            self.positions.insert(self.edges[pos].key(), pos);
        }
        self.adj.remove(edge);
        true
    }

    /// Removes and returns the edge at a uniformly chosen index (caller
    /// supplies the index to keep RNG ownership with the estimator).
    pub fn remove_at(&mut self, index: usize) -> Edge {
        let edge = self.edges[index];
        self.remove(edge);
        edge
    }

    /// Number of common sampled neighbors of the endpoints of `edge` — the
    /// number of sample triangles `edge` would close.
    #[inline]
    pub fn common_neighbors(&self, edge: Edge) -> usize {
        self.adj.common_neighbor_count(edge.u(), edge.v())
    }

    /// Sampled degree of a node.
    #[inline]
    pub fn degree(&self, node: gps_graph::NodeId) -> usize {
        self.adj.degree(node)
    }

    /// The stored edges (arbitrary order).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Read access to the adjacency view.
    #[inline]
    pub fn adjacency(&self) -> &AdjacencyMap<()> {
        &self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_keep_views_consistent() {
        let mut s = EdgeSampleStore::new();
        assert!(s.insert(Edge::new(0, 1)));
        assert!(s.insert(Edge::new(1, 2)));
        assert!(s.insert(Edge::new(0, 2)));
        assert!(!s.insert(Edge::new(2, 0)), "duplicate rejected");
        assert_eq!(s.len(), 3);
        assert_eq!(s.common_neighbors(Edge::new(0, 1)), 1);
        assert!(s.remove(Edge::new(1, 2)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.common_neighbors(Edge::new(0, 1)), 0);
        assert!(!s.remove(Edge::new(1, 2)));
        assert_eq!(s.degree(0), 2);
    }

    #[test]
    fn swap_remove_keeps_positions_valid() {
        let mut s = EdgeSampleStore::new();
        for i in 0..10u32 {
            s.insert(Edge::new(i, i + 1));
        }
        // Remove from the middle repeatedly; each stored edge must stay
        // findable and removable.
        while !s.is_empty() {
            let e = s.remove_at(s.len() / 2);
            assert!(!s.contains(e));
        }
    }

    #[test]
    fn remove_at_returns_the_indexed_edge() {
        let mut s = EdgeSampleStore::new();
        s.insert(Edge::new(3, 4));
        let e = s.remove_at(0);
        assert_eq!(e, Edge::new(3, 4));
        assert!(s.is_empty());
    }
}
