//! Shared infrastructure for the baseline estimators.

use gps_graph::hash::FxHashMap;
use gps_graph::types::{Edge, EdgeKey};
use gps_graph::{AdjacencyBackend, BackendKind};

/// A streaming triangle-count estimator: the minimal interface the
/// experiment harness needs to drive GPS and every baseline uniformly.
pub trait TriangleEstimator {
    /// Observes one stream arrival.
    fn process(&mut self, edge: Edge);

    /// Current estimate of the number of triangles among all edges streamed
    /// so far.
    fn triangle_estimate(&self) -> f64;

    /// Number of edges currently stored (memory footprint proxy; the paper
    /// compares methods at equal stored-edge budgets).
    fn stored_edges(&self) -> usize;

    /// Short display name for tables.
    fn name(&self) -> &'static str;
}

/// An edge sample supporting O(1) uniform eviction *and* O(1) adjacency
/// queries — the store both TRIEST variants, MASCOT, JHA and the uniform
/// reservoir are built on. (Uniform eviction needs an indexable vector;
/// triangle counting needs neighbor sets; this keeps the two views in sync.)
///
/// The adjacency view is an [`AdjacencyBackend`], defaulting to the same
/// cache-friendly `CompactAdjacency` that backs `GpsSampler` — so Table 2/3
/// comparisons measure *algorithms*, not data structures. The nested-hash
/// representation stays selectable via
/// [`EdgeSampleStore::with_backend`] for differential tests and
/// before/after benchmarks. Every query a baseline makes through this store
/// is order-oblivious (counts, degrees, membership), so the two backends
/// are observationally identical and same-seed runs produce bit-identical
/// estimates on either (see `tests/backend_equivalence.rs`).
#[derive(Clone, Debug)]
pub struct EdgeSampleStore {
    edges: Vec<Edge>,
    positions: FxHashMap<EdgeKey, usize>,
    adj: AdjacencyBackend<()>,
}

impl Default for EdgeSampleStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeSampleStore {
    /// Empty store on the default compact backend.
    pub fn new() -> Self {
        Self::with_backend(BackendKind::Compact)
    }

    /// Empty store on an explicit adjacency backend.
    pub fn with_backend(kind: BackendKind) -> Self {
        EdgeSampleStore {
            edges: Vec::new(),
            positions: FxHashMap::default(),
            adj: AdjacencyBackend::new_of_kind(kind),
        }
    }

    /// Which adjacency representation this store uses.
    #[inline]
    pub fn backend(&self) -> BackendKind {
        self.adj.kind()
    }

    /// Number of stored edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `edge` is stored.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        self.positions.contains_key(&edge.key())
    }

    /// Inserts an edge; returns `false` if it was already present.
    pub fn insert(&mut self, edge: Edge) -> bool {
        if self.contains(edge) {
            return false;
        }
        self.positions.insert(edge.key(), self.edges.len());
        self.edges.push(edge);
        self.adj.insert(edge, ());
        true
    }

    /// Removes a specific edge; returns `false` if absent.
    pub fn remove(&mut self, edge: Edge) -> bool {
        let Some(pos) = self.positions.remove(&edge.key()) else {
            return false;
        };
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            self.positions.insert(self.edges[pos].key(), pos);
        }
        self.adj.remove(edge);
        true
    }

    /// Removes and returns the edge at a uniformly chosen index (caller
    /// supplies the index to keep RNG ownership with the estimator).
    pub fn remove_at(&mut self, index: usize) -> Edge {
        let edge = self.edges[index];
        self.remove(edge);
        edge
    }

    /// Number of common sampled neighbors of the endpoints of `edge` — the
    /// number of sample triangles `edge` would close.
    #[inline]
    pub fn common_neighbors(&self, edge: Edge) -> usize {
        self.adj.common_neighbor_count(edge.u(), edge.v())
    }

    /// Sampled degree of a node.
    #[inline]
    pub fn degree(&self, node: gps_graph::NodeId) -> usize {
        self.adj.degree(node)
    }

    /// The stored edges (arbitrary order).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Read access to the adjacency view.
    #[inline]
    pub fn adjacency(&self) -> &AdjacencyBackend<()> {
        &self.adj
    }
}

/// One NSAMP neighborhood estimator (Pavan et al., VLDB 2013): a uniform
/// stream edge `e1`, a uniform later edge `e2` adjacent to it, the count
/// `c = |N_t(e1)|` of adjacent successors seen, and whether the wedge's
/// closing edge has arrived. Shared by the naive and bulk-processed NSAMP
/// drivers, which differ only in how they *schedule* updates over a vector
/// of these.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborhoodEstimator {
    /// Level-1 sample: a uniform edge of the stream.
    pub e1: Option<Edge>,
    /// Level-2 sample: a uniform edge among those adjacent to `e1` that
    /// arrived after it.
    pub e2: Option<Edge>,
    /// `|N_t(e1)|` so far: adjacent edges arriving after `e1`.
    pub c: u64,
    /// Closing edge of the wedge `(e1, e2)` has arrived while the pair held.
    pub closed: bool,
}

impl NeighborhoodEstimator {
    /// Resets the estimator around a fresh level-1 edge.
    pub fn reset_with(&mut self, e1: Edge) {
        *self = NeighborhoodEstimator {
            e1: Some(e1),
            ..Default::default()
        };
    }

    /// The wedge-completing edge, if `e1`/`e2` currently form a wedge.
    pub fn closing_edge(&self) -> Option<Edge> {
        let (e1, e2) = (self.e1?, self.e2?);
        let shared = e1.shared_endpoint(&e2)?;
        let a = e1.other(shared).expect("shared endpoint is on e1");
        let b = e2.other(shared).expect("shared endpoint is on e2");
        Edge::try_new(a, b)
    }

    /// Edges currently held (0–2): the memory-footprint contribution.
    #[inline]
    pub fn stored_edges(&self) -> usize {
        self.e1.is_some() as usize + self.e2.is_some() as usize
    }
}

/// `Σ c·1{closed} · t / r` — the unbiased NSAMP triangle estimate over a
/// pool of estimators at stream position `t` (shared by both drivers).
pub(crate) fn nsamp_estimate(estimators: &[NeighborhoodEstimator], t: u64) -> f64 {
    let sum: f64 = estimators
        .iter()
        .filter(|e| e.closed)
        .map(|e| e.c as f64)
        .sum();
    sum * t as f64 / estimators.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_keep_views_consistent() {
        for kind in [BackendKind::Compact, BackendKind::HashMap] {
            let mut s = EdgeSampleStore::with_backend(kind);
            assert_eq!(s.backend(), kind);
            assert!(s.insert(Edge::new(0, 1)));
            assert!(s.insert(Edge::new(1, 2)));
            assert!(s.insert(Edge::new(0, 2)));
            assert!(!s.insert(Edge::new(2, 0)), "duplicate rejected");
            assert_eq!(s.len(), 3);
            assert_eq!(s.common_neighbors(Edge::new(0, 1)), 1);
            assert!(s.remove(Edge::new(1, 2)));
            assert_eq!(s.len(), 2);
            assert_eq!(s.common_neighbors(Edge::new(0, 1)), 0);
            assert!(!s.remove(Edge::new(1, 2)));
            assert_eq!(s.degree(0), 2);
        }
    }

    #[test]
    fn default_store_is_compact() {
        assert_eq!(EdgeSampleStore::new().backend(), BackendKind::Compact);
    }

    #[test]
    fn swap_remove_keeps_positions_valid() {
        let mut s = EdgeSampleStore::new();
        for i in 0..10u32 {
            s.insert(Edge::new(i, i + 1));
        }
        // Remove from the middle repeatedly; each stored edge must stay
        // findable and removable.
        while !s.is_empty() {
            let e = s.remove_at(s.len() / 2);
            assert!(!s.contains(e));
        }
    }

    #[test]
    fn remove_at_returns_the_indexed_edge() {
        let mut s = EdgeSampleStore::new();
        s.insert(Edge::new(3, 4));
        let e = s.remove_at(0);
        assert_eq!(e, Edge::new(3, 4));
        assert!(s.is_empty());
    }

    #[test]
    fn neighborhood_estimator_closing_edge_geometry() {
        let mut est = NeighborhoodEstimator {
            e1: Some(Edge::new(1, 2)),
            e2: Some(Edge::new(2, 3)),
            ..Default::default()
        };
        assert_eq!(est.closing_edge(), Some(Edge::new(1, 3)));
        assert_eq!(est.stored_edges(), 2);
        est.e2 = Some(Edge::new(4, 5));
        assert_eq!(
            est.closing_edge(),
            None,
            "non-adjacent pair has no closing edge"
        );
        est.reset_with(Edge::new(7, 8));
        assert_eq!(est.stored_edges(), 1);
        assert_eq!(est.c, 0);
        assert!(!est.closed);
    }
}
