//! NSAMP — neighborhood sampling (Pavan, Tangwongsan, Tirthapura & Wu,
//! VLDB 2013).
//!
//! Each of `r` independent estimators maintains a *neighborhood sample*:
//!
//! 1. `e1`: a uniform edge from the stream (reservoir of size 1);
//! 2. `e2`: a uniform edge among stream edges adjacent to `e1` that arrived
//!    after `e1` (`c` counts those);
//! 3. a flag set when the edge closing the wedge `(e1, e2)` arrives while
//!    `(e1, e2)` is the current pair.
//!
//! A specific triangle with edges ordered `a < b < c` is detected with
//! probability `(1/t)·(1/|N_t(a)|)`, so `X = t · c · 1{detected}` is
//! unbiased for the triangle count and the final estimate averages over the
//! `r` estimators. Every estimator touches every arrival, so the per-edge
//! cost is `O(r)` — the paper's observation that NSAMP is slow without bulk
//! processing is reproduced by the benchmarks.

use crate::common::{nsamp_estimate, NeighborhoodEstimator, TriangleEstimator};
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// NSAMP with `r` parallel neighborhood estimators.
///
/// NSAMP keeps **no adjacency structure** — each
/// [`NeighborhoodEstimator`] holds at most two concrete edges — so unlike
/// the store-based baselines there is no adjacency-backend axis to select;
/// the estimator state is shared with [`crate::nsamp_bulk::NSampBulk`]
/// via `common`.
pub struct NSamp {
    estimators: Vec<NeighborhoodEstimator>,
    t: u64,
    rng: SmallRng,
}

impl NSamp {
    /// Creates an NSAMP estimator with `r` independent neighborhood
    /// samplers. The paper's reference configuration uses `r = 128·1024`
    /// estimators for accurate results; anything ≥ a few thousand gives
    /// usable estimates on 10⁵-edge streams.
    pub fn new(r: usize, seed: u64) -> Self {
        assert!(r > 0, "need at least one estimator");
        NSamp {
            estimators: vec![NeighborhoodEstimator::default(); r],
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of parallel estimators.
    pub fn estimator_count(&self) -> usize {
        self.estimators.len()
    }

    #[inline]
    fn adjacent(e: Edge, u: NodeId, v: NodeId) -> bool {
        e.touches(u) || e.touches(v)
    }
}

impl TriangleEstimator for NSamp {
    fn process(&mut self, edge: Edge) {
        self.t += 1;
        let t = self.t;
        for est in &mut self.estimators {
            // Level 1: reservoir of size 1 over all edges.
            if est.e1.is_none() || self.rng.random_range(0..t) == 0 {
                est.reset_with(edge);
                continue;
            }
            let e1 = est.e1.expect("checked above");
            if e1 == edge {
                continue;
            }
            // Level 2: reservoir of size 1 over N(e1).
            if Self::adjacent(edge, e1.u(), e1.v()) {
                est.c += 1;
                if self.rng.random_range(0..est.c) == 0 {
                    est.e2 = Some(edge);
                    est.closed = false;
                }
            }
            // Detection: does this arrival close the current wedge?
            if !est.closed && est.closing_edge() == Some(edge) {
                est.closed = true;
            }
        }
    }

    fn triangle_estimate(&self) -> f64 {
        nsamp_estimate(&self.estimators, self.t)
    }

    fn stored_edges(&self) -> usize {
        // Each estimator stores at most two edges.
        self.estimators.iter().map(|e| e.stored_edges()).sum()
    }

    fn name(&self) -> &'static str {
        "NSAMP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;
    use gps_stream::{gen, permuted};

    #[test]
    fn single_triangle_is_found_in_expectation() {
        // Tiny stream: one triangle plus noise; with many estimators the
        // average detects it.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(3, 4),
            Edge::new(5, 6),
        ];
        let runs = 200;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut n = NSamp::new(64, seed);
            for &e in &edges {
                n.process(e);
            }
            sum += n.triangle_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - 1.0).abs() < 0.25,
            "mean {mean} should approach 1 triangle"
        );
    }

    #[test]
    fn estimator_is_unbiased_on_clustered_graph() {
        let edges = gen::holme_kim(200, 3, 0.5, 21);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 40;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 900 + seed);
            let mut n = NSamp::new(512, seed);
            for &e in &stream {
                n.process(e);
            }
            sum += n.triangle_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.20,
            "NSAMP mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn no_triangles_means_zero_estimate() {
        let mut n = NSamp::new(128, 3);
        for i in 0..100u32 {
            n.process(Edge::new(i, i + 1));
        }
        assert_eq!(n.triangle_estimate(), 0.0);
    }

    #[test]
    fn stored_edges_is_bounded_by_two_per_estimator() {
        let mut n = NSamp::new(32, 1);
        for e in gen::erdos_renyi(50, 200, 2) {
            n.process(e);
        }
        assert!(n.stored_edges() <= 64);
        assert!(n.stored_edges() >= 32, "every estimator holds an e1 by now");
    }

    // closing_edge geometry is covered by the NeighborhoodEstimator unit
    // tests in `common`, where the shared state now lives.
}
