//! Uniform edge reservoir with post-hoc Horvitz–Thompson scaling.
//!
//! The natural strawman (and the scheme GPS degenerates to under uniform
//! weights, cf. Vitter 1985): keep a uniform size-`M` reservoir, count the
//! triangles fully inside the sample at query time, and divide by the joint
//! inclusion probability of three specific edges,
//! `M(M−1)(M−2) / (t(t−1)(t−2))`.
//!
//! Unlike TRIEST-BASE, the count is recomputed at query time rather than
//! maintained incrementally — making queries `O(M^{3/2})` but arrivals
//! cheaper. The experiment harness uses it to separate "weighted vs uniform
//! sampling" effects from "incremental vs post-hoc counting" effects.

use crate::common::{EdgeSampleStore, TriangleEstimator};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform reservoir of edges with query-time triangle counting.
pub struct UniformReservoir {
    capacity: usize,
    store: EdgeSampleStore,
    t: u64,
    rng: SmallRng,
}

impl UniformReservoir {
    /// Creates a uniform reservoir of `capacity` edges on the default
    /// compact adjacency backend.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_backend(capacity, seed, BackendKind::Compact)
    }

    /// [`UniformReservoir::new`] on an explicit adjacency backend.
    pub fn with_backend(capacity: usize, seed: u64, backend: BackendKind) -> Self {
        assert!(capacity >= 3, "need capacity ≥ 3 for triangle scaling");
        UniformReservoir {
            capacity,
            store: EdgeSampleStore::with_backend(backend),
            t: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Exact triangle count within the current sample.
    pub fn sample_triangles(&self) -> u64 {
        let g = CsrGraph::from_edges(self.store.edges());
        exact::triangle_count(&g)
    }

    /// Stream position.
    pub fn arrivals(&self) -> u64 {
        self.t
    }
}

impl TriangleEstimator for UniformReservoir {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return;
        }
        self.t += 1;
        if self.store.len() < self.capacity {
            self.store.insert(edge);
        } else if self.rng.random::<f64>() < self.capacity as f64 / self.t as f64 {
            let victim = self.rng.random_range(0..self.store.len());
            self.store.remove_at(victim);
            self.store.insert(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        let t = self.t as f64;
        let m = self.capacity as f64;
        let scale = ((t * (t - 1.0) * (t - 2.0)) / (m * (m - 1.0) * (m - 2.0))).max(1.0);
        self.sample_triangles() as f64 * scale
    }

    fn stored_edges(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        "UNIF-RES"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_stream::{gen, permuted};

    #[test]
    fn exact_when_everything_fits() {
        let mut r = UniformReservoir::new(64, 1);
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                r.process(Edge::new(a, b));
            }
        }
        assert_eq!(r.triangle_estimate(), 20.0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut r = UniformReservoir::new(10, 2);
        for e in gen::erdos_renyi(80, 300, 4) {
            r.process(e);
            assert!(r.stored_edges() <= 10);
        }
    }

    #[test]
    fn unbiased_on_average() {
        let edges = gen::holme_kim(300, 3, 0.6, 31);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 100;
        let mut sum = 0.0;
        for seed in 0..runs {
            let stream = permuted(&edges, 700 + seed);
            let mut r = UniformReservoir::new(edges.len() / 3, seed);
            for &e in &stream {
                r.process(e);
            }
            sum += r.triangle_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.15,
            "uniform reservoir mean {mean} vs truth {truth}"
        );
    }
}
