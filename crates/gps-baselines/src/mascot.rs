//! MASCOT — Bernoulli edge-sampling triangle estimators (Lim & Kang,
//! KDD 2015).
//!
//! MASCOT samples each edge independently with a fixed probability `p`
//! (memory is *not* fixed: expected stored edges are `p·|K|`; the GPS paper
//! accounts for this by first running MASCOT and giving the other methods
//! its realized sample size). Two variants:
//!
//! - [`Mascot`] (the improved, "unconditional" variant): every arriving edge
//!   contributes the sample triangles it closes, weighted `1/p²` (only the
//!   two earlier edges are random).
//! - [`MascotC`] (basic, "conditional"): only *sampled* arrivals contribute,
//!   weighted `1/p³`.

use crate::common::{EdgeSampleStore, TriangleEstimator};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// MASCOT with unconditional counting (weight `1/p²`).
pub struct Mascot {
    p: f64,
    store: EdgeSampleStore,
    estimate: f64,
    rng: SmallRng,
}

impl Mascot {
    /// Creates a MASCOT estimator sampling edges with probability `p`, on
    /// the default compact adjacency backend.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64, seed: u64) -> Self {
        Self::with_backend(p, seed, BackendKind::Compact)
    }

    /// [`Mascot::new`] on an explicit adjacency backend (same-seed runs are
    /// bit-identical on either backend).
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn with_backend(p: f64, seed: u64, backend: BackendKind) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        Mascot {
            p,
            store: EdgeSampleStore::with_backend(backend),
            estimate: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The sampling probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl TriangleEstimator for Mascot {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return;
        }
        // Unconditional counting: the arriving edge is deterministic; the
        // two earlier triangle edges are each sampled with probability p.
        let closed = self.store.common_neighbors(edge) as f64;
        self.estimate += closed / (self.p * self.p);
        if self.rng.random::<f64>() < self.p {
            self.store.insert(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        self.estimate
    }

    fn stored_edges(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        "MASCOT"
    }
}

/// MASCOT-C with conditional counting (weight `1/p³`).
pub struct MascotC {
    p: f64,
    store: EdgeSampleStore,
    estimate: f64,
    rng: SmallRng,
}

impl MascotC {
    /// Creates a MASCOT-C estimator sampling edges with probability `p`, on
    /// the default compact adjacency backend.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64, seed: u64) -> Self {
        Self::with_backend(p, seed, BackendKind::Compact)
    }

    /// [`MascotC::new`] on an explicit adjacency backend.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn with_backend(p: f64, seed: u64, backend: BackendKind) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        MascotC {
            p,
            store: EdgeSampleStore::with_backend(backend),
            estimate: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TriangleEstimator for MascotC {
    fn process(&mut self, edge: Edge) {
        if self.store.contains(edge) {
            return;
        }
        if self.rng.random::<f64>() < self.p {
            let closed = self.store.common_neighbors(edge) as f64;
            self.estimate += closed / (self.p * self.p * self.p);
            self.store.insert(edge);
        }
    }

    fn triangle_estimate(&self) -> f64 {
        self.estimate
    }

    fn stored_edges(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        "MASCOT-C"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;
    use gps_stream::{gen, permuted};

    fn k6() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn p_equals_one_is_exact() {
        let mut m = Mascot::new(1.0, 1);
        let mut mc = MascotC::new(1.0, 1);
        for e in k6() {
            m.process(e);
            mc.process(e);
        }
        assert_eq!(m.triangle_estimate(), 20.0); // C(6,3)
        assert_eq!(mc.triangle_estimate(), 20.0);
        assert_eq!(m.stored_edges(), 15);
    }

    #[test]
    fn stored_edges_near_expectation() {
        let edges = gen::erdos_renyi(500, 4000, 3);
        let mut m = Mascot::new(0.25, 5);
        for e in edges {
            m.process(e);
        }
        let expected = 1000.0;
        let got = m.stored_edges() as f64;
        assert!(
            (got - expected).abs() < 150.0,
            "stored {got} should be near Binomial mean {expected}"
        );
    }

    #[test]
    fn both_variants_are_unbiased_on_average() {
        let edges = gen::holme_kim(300, 3, 0.5, 11);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 120;
        let (mut m_sum, mut c_sum) = (0.0, 0.0);
        for seed in 0..runs {
            let stream = permuted(&edges, 100 + seed);
            let mut m = Mascot::new(0.4, seed);
            let mut c = MascotC::new(0.4, seed + 5000);
            for &e in &stream {
                m.process(e);
                c.process(e);
            }
            m_sum += m.triangle_estimate();
            c_sum += c.triangle_estimate();
        }
        let m_mean = m_sum / runs as f64;
        let c_mean = c_sum / runs as f64;
        assert!(
            (m_mean - truth).abs() / truth < 0.10,
            "MASCOT mean {m_mean} vs {truth}"
        );
        assert!(
            (c_mean - truth).abs() / truth < 0.15,
            "MASCOT-C mean {c_mean} vs {truth}"
        );
    }

    #[test]
    fn unconditional_beats_conditional() {
        let edges = gen::holme_kim(300, 3, 0.5, 13);
        let g = CsrGraph::from_edges(&edges);
        let truth = exact::triangle_count(&g) as f64;
        let runs = 60;
        let (mut m_sq, mut c_sq) = (0.0, 0.0);
        for seed in 0..runs {
            let stream = permuted(&edges, 300 + seed);
            let mut m = Mascot::new(0.3, seed);
            let mut c = MascotC::new(0.3, seed);
            for &e in &stream {
                m.process(e);
                c.process(e);
            }
            let em = (m.triangle_estimate() - truth) / truth;
            let ec = (c.triangle_estimate() - truth) / truth;
            m_sq += em * em;
            c_sq += ec * ec;
        }
        assert!(
            m_sq < c_sq,
            "MASCOT MSE {m_sq:.4} should beat MASCOT-C {c_sq:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let _ = Mascot::new(0.0, 0);
    }
}
