//! Same-seed equivalence of every ported baseline across adjacency
//! backends, mirroring `gps-core/tests/backend_equivalence.rs`.
//!
//! Each store-based baseline observes its sample only through
//! order-oblivious queries — common-neighbor counts, degrees, membership —
//! and consumes RNG draws on a schedule that does not depend on the
//! adjacency representation (JHA additionally sorts its candidate wedges
//! into a canonical order before the uniform slot draw). Both backends
//! agree on every such query, so with equal seeds a baseline must produce
//! the *bit-identical* estimate trajectory and stored sample on either —
//! the contract that makes the Table 2/3 backend axis a pure performance
//! experiment rather than a change of algorithm.

use gps_baselines::common::TriangleEstimator;
use gps_baselines::{JhaWedgeSampler, Mascot, MascotC, TriestBase, TriestImpr, UniformReservoir};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_stream::{gen, permuted};
use proptest::prelude::*;

/// Random edge stream, duplicates intentionally allowed: the duplicate-skip
/// paths must also behave identically on both backends.
fn arb_stream(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect()
    })
}

/// Drives a compact-backed and a hashmap-backed instance of one baseline
/// through the same stream, asserting identical estimates every `stride`
/// arrivals (plus at the end) and an identical footprint throughout.
/// `stride > 1` exists only for [`UniformReservoir`], whose estimate is a
/// deliberate O(M^{3/2}) query-time recount.
fn assert_same_run_strided(
    stream: &[Edge],
    mut compact: impl TriangleEstimator,
    mut hashmap: impl TriangleEstimator,
    stride: usize,
) {
    for (i, &e) in stream.iter().enumerate() {
        compact.process(e);
        hashmap.process(e);
        if i % stride == 0 || i + 1 == stream.len() {
            assert_eq!(
                compact.triangle_estimate().to_bits(),
                hashmap.triangle_estimate().to_bits(),
                "{} estimate diverged at arrival {i} ({e})",
                compact.name(),
            );
        }
        assert_eq!(
            compact.stored_edges(),
            hashmap.stored_edges(),
            "{} footprint diverged at arrival {i} ({e})",
            compact.name(),
        );
    }
}

/// [`assert_same_run_strided`] with the estimate checked on every arrival.
fn assert_same_run(
    stream: &[Edge],
    compact: impl TriangleEstimator,
    hashmap: impl TriangleEstimator,
) {
    assert_same_run_strided(stream, compact, hashmap, 1);
}

const C: BackendKind = BackendKind::Compact;
const H: BackendKind = BackendKind::HashMap;

proptest! {
    #[test]
    fn triest_base_is_backend_independent(
        stream in arb_stream(24, 300),
        capacity in 3usize..48,
        seed in any::<u64>(),
    ) {
        assert_same_run(
            &stream,
            TriestBase::with_backend(capacity, seed, C),
            TriestBase::with_backend(capacity, seed, H),
        );
    }

    #[test]
    fn triest_impr_is_backend_independent(
        stream in arb_stream(24, 300),
        capacity in 2usize..48,
        seed in any::<u64>(),
    ) {
        assert_same_run(
            &stream,
            TriestImpr::with_backend(capacity, seed, C),
            TriestImpr::with_backend(capacity, seed, H),
        );
    }

    #[test]
    fn mascot_variants_are_backend_independent(
        stream in arb_stream(24, 300),
        p in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        assert_same_run(
            &stream,
            Mascot::with_backend(p, seed, C),
            Mascot::with_backend(p, seed, H),
        );
        assert_same_run(
            &stream,
            MascotC::with_backend(p, seed, C),
            MascotC::with_backend(p, seed, H),
        );
    }

    #[test]
    fn jha_is_backend_independent(
        stream in arb_stream(20, 250),
        edge_capacity in 2usize..32,
        wedge_capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        assert_same_run(
            &stream,
            JhaWedgeSampler::with_backend(edge_capacity, wedge_capacity, seed, C),
            JhaWedgeSampler::with_backend(edge_capacity, wedge_capacity, seed, H),
        );
    }

    #[test]
    fn uniform_reservoir_is_backend_independent(
        stream in arb_stream(24, 300),
        capacity in 3usize..48,
        seed in any::<u64>(),
    ) {
        assert_same_run(
            &stream,
            UniformReservoir::with_backend(capacity, seed, C),
            UniformReservoir::with_backend(capacity, seed, H),
        );
    }
}

#[test]
fn all_baselines_agree_on_a_clustered_stream_at_scale() {
    // A realistic Holme–Kim stream large enough to force evictions, spill
    // blocks and node churn in the compact store — the regimes where a
    // representation bug would show as an estimate divergence.
    let edges = permuted(&gen::holme_kim(1_500, 4, 0.6, 11), 5);
    assert!(edges.len() > 5_000);
    let m = edges.len() / 5;
    assert_same_run(
        &edges,
        TriestBase::with_backend(m, 42, C),
        TriestBase::with_backend(m, 42, H),
    );
    assert_same_run(
        &edges,
        TriestImpr::with_backend(m, 42, C),
        TriestImpr::with_backend(m, 42, H),
    );
    assert_same_run(
        &edges,
        Mascot::with_backend(0.2, 42, C),
        Mascot::with_backend(0.2, 42, H),
    );
    assert_same_run(
        &edges,
        JhaWedgeSampler::with_backend(m, 200, 42, C),
        JhaWedgeSampler::with_backend(m, 200, 42, H),
    );
    assert_same_run_strided(
        &edges,
        UniformReservoir::with_backend(m, 42, C),
        UniformReservoir::with_backend(m, 42, H),
        1_000,
    );
}
