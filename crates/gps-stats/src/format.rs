//! Human-readable number formatting in the paper's style
//! (`4.9B` triangles, `925.8K` edges, `1.8T` wedges).

/// Formats a nonnegative count with an SI-style suffix, one decimal place:
/// `1234` → `1.2K`, `4.9e9` → `4.9B`, `1.8e12` → `1.8T`. Values below 1000
/// print as integers. NaN prints as `nan`.
pub fn si(x: f64) -> String {
    if x.is_nan() {
        return "nan".into();
    }
    let neg = x < 0.0;
    let a = x.abs();
    let (value, suffix) = if a >= 1e12 {
        (a / 1e12, "T")
    } else if a >= 1e9 {
        (a / 1e9, "B")
    } else if a >= 1e6 {
        (a / 1e6, "M")
    } else if a >= 1e3 {
        (a / 1e3, "K")
    } else {
        let s = format!("{}{}", if neg { "-" } else { "" }, a.round());
        return s;
    };
    format!("{}{:.1}{}", if neg { "-" } else { "" }, value, suffix)
}

/// Formats a probability/ratio with four decimals (the paper's `|K̂|/|K|`
/// and ARE columns).
pub fn ratio(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a duration in microseconds with two decimals (the paper's
/// "µs/edge" column).
pub fn micros(us: f64) -> String {
    format!("{us:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_suffixes() {
        assert_eq!(si(0.0), "0");
        assert_eq!(si(999.0), "999");
        assert_eq!(si(1_234.0), "1.2K");
        assert_eq!(si(925_800.0), "925.8K");
        assert_eq!(si(56_300_000.0), "56.3M");
        assert_eq!(si(4_900_000_000.0), "4.9B");
        assert_eq!(si(1_800_000_000_000.0), "1.8T");
    }

    #[test]
    fn si_handles_negatives_and_nan() {
        assert_eq!(si(-1_500.0), "-1.5K");
        assert_eq!(si(-12.0), "-12");
        assert_eq!(si(f64::NAN), "nan");
    }

    #[test]
    fn ratio_and_micros() {
        assert_eq!(ratio(0.00361), "0.0036");
        assert_eq!(micros(0.634), "0.63");
    }
}
