//! Minimal plain-text table rendering + TSV export for the experiment
//! harness (the binaries print paper-style tables to stdout and
//! machine-readable TSV next to them).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-padded columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:width$}", cell, width = widths[i]);
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders as tab-separated values (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["graph", "X", "ARE"]);
        t.row(["hollywood-sim", "4.9B", "0.0009"]);
        t.row(["amazon-sim", "667.1K", "0.0001"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("graph"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The "X" column starts at the same offset in every row.
        let col = lines[0].find('X').unwrap();
        assert_eq!(&lines[2][col..col + 4], "4.9B");
        assert_eq!(&lines[3][col..col + 6], "667.1K");
    }

    #[test]
    fn tsv_is_machine_readable() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
