//! The paper's error metrics.
//!
//! - **ARE** (`|X̂ − X| / X`): absolute relative error of one estimate
//!   (paper §6, step 3).
//! - **MARE** (`(1/T)·Σ_t |X̂_t − X_t| / X_t`): mean ARE over a time series
//!   of checkpoints (paper Table 3).
//! - **max-ARE**: the worst checkpoint (paper Table 3's "Max. ARE").

/// Absolute relative error `|estimate − actual| / actual`.
///
/// Defined as 0 when both are 0 and `+inf` when only `actual` is 0 — the
/// conventions that make MARE well-behaved on early-stream checkpoints
/// where a graph may have no triangles yet.
pub fn are(estimate: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - actual).abs() / actual
    }
}

/// Accumulates a time series of (estimate, actual) pairs and reports MARE
/// and max-ARE.
#[derive(Clone, Debug, Default)]
pub struct ErrorSeries {
    sum: f64,
    max: f64,
    n: u64,
    skipped: u64,
}

impl ErrorSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one checkpoint. Checkpoints with `actual == 0` and a nonzero
    /// estimate would make MARE infinite; they are counted separately in
    /// [`ErrorSeries::skipped`] (the paper's checkpoints start late enough
    /// that the actual counts are nonzero).
    pub fn push(&mut self, estimate: f64, actual: f64) {
        let e = are(estimate, actual);
        if e.is_finite() {
            self.sum += e;
            self.max = self.max.max(e);
            self.n += 1;
        } else {
            self.skipped += 1;
        }
    }

    /// Mean ARE over the recorded checkpoints.
    pub fn mare(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Maximum ARE over the recorded checkpoints.
    pub fn max_are(&self) -> f64 {
        self.max
    }

    /// Number of checkpoints recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Checkpoints skipped because the true value was 0 while the estimate
    /// was not.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Merges another series (for averaging across runs).
    pub fn merge(&mut self, other: &ErrorSeries) {
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.n += other.n;
        self.skipped += other.skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn are_basic_cases() {
        assert_eq!(are(100.0, 100.0), 0.0);
        assert!((are(99.0, 100.0) - 0.01).abs() < 1e-12);
        assert!((are(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(are(0.0, 0.0), 0.0);
        assert_eq!(are(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn series_mare_and_max() {
        let mut s = ErrorSeries::new();
        s.push(110.0, 100.0); // 0.10
        s.push(95.0, 100.0); // 0.05
        s.push(100.0, 100.0); // 0.00
        assert!((s.mare() - 0.05).abs() < 1e-12);
        assert!((s.max_are() - 0.10).abs() < 1e-12);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn series_skips_undefined_checkpoints() {
        let mut s = ErrorSeries::new();
        s.push(5.0, 0.0);
        s.push(50.0, 100.0);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.count(), 1);
        assert!((s.mare() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_reports_zero() {
        let s = ErrorSeries::new();
        assert_eq!(s.mare(), 0.0);
        assert_eq!(s.max_are(), 0.0);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = ErrorSeries::new();
        a.push(110.0, 100.0);
        let mut b = ErrorSeries::new();
        b.push(130.0, 100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mare() - 0.2).abs() < 1e-12);
        assert!((a.max_are() - 0.3).abs() < 1e-12);
    }
}
