//! Running (streaming) moment accumulation — Welford's algorithm.

/// Numerically stable running mean/variance (Welford), plus min/max.
#[derive(Clone, Copy, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_forms() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        let mut r = Running::new();
        r.push(3.5);
        assert_eq!(r.mean(), 3.5);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Running::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);
        let mut empty = Running::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }
}
