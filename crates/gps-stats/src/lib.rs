//! Statistics utilities shared by the experiment harness and tests:
//! running moments, the paper's error metrics (ARE / MARE / max-ARE),
//! human-readable number formatting, plain-text table rendering and TSV
//! export. No dependencies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod format;
pub mod metrics;
pub mod running;
pub mod table;

pub use format::si;
pub use metrics::{are, ErrorSeries};
pub use running::Running;
pub use table::Table;
