//! Edge sampling-weight functions `W(k, K̂)`.
//!
//! GPS's distinguishing feature (paper §3.2, property S3) is that the weight
//! of an arriving edge may depend on the *topology of the current reservoir*
//! — e.g. how many sampled triangles the edge would close — as well as on
//! intrinsic edge attributes. The [`EdgeWeight`] trait captures that
//! contract; the paper's variance-minimizing choice for triangle counting
//! (§3.5 and §4: `W(k, K̂) = 9·|△̂(k)| + 1`) is [`TriangleWeight`].
//!
//! Weights must be strictly positive and, per Theorem 1's measurability
//! condition, may only depend on the sample as the edge *finds* it — the
//! sampler guarantees this by computing the weight before the provisional
//! insertion.

use crate::reservoir::SampleView;
use gps_graph::types::Edge;

/// A sampling-weight function `W(k, K̂)`.
pub trait EdgeWeight {
    /// Weight for the arriving `edge` given the current sample view.
    /// Must return a finite value `> 0`.
    fn weight(&self, edge: Edge, sample: &SampleView<'_>) -> f64;

    /// Weight plus "is `edge` already sampled" in one call — the sampler's
    /// per-arrival fast path. The default composes [`EdgeWeight::weight`]
    /// with a separate membership test; topology-driven weights override it
    /// to reuse the endpoint resolutions their weight walk performs anyway
    /// (see [`TriangleWeight`]). Implementations must return exactly
    /// `(self.weight(edge, sample), sample.contains(edge))`.
    #[inline]
    fn weight_and_presence(&self, edge: Edge, sample: &SampleView<'_>) -> (f64, bool) {
        (self.weight(edge, sample), sample.contains(edge))
    }
}

/// Uniform weights: `W ≡ 1`. GPS degenerates to classic uniform reservoir
/// sampling (paper §3.2: "if we set W(k, K̂) = 1 for every k, Algorithm 1
/// leads to uniform sampling as in the standard reservoir sampling").
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformWeight;

impl EdgeWeight for UniformWeight {
    #[inline]
    fn weight(&self, _edge: Edge, _sample: &SampleView<'_>) -> f64 {
        1.0
    }
}

/// Triangle-targeted weights: `W(k, K̂) = coefficient · |△̂(k)| + floor`,
/// where `|△̂(k)|` is the number of sampled triangles the arriving edge
/// completes.
///
/// The paper derives the coefficient from IPPS variance minimization (§3.5)
/// and uses `9·|△̂(k)| + 1` throughout its evaluation (§4, "we use
/// W(k, K̂) = 9 ∗ |△̂(k)|+1"): 9 = 3² because each triangle contributes
/// three edges, and the `+1` floor keeps edges that currently close no
/// triangle sampleable.
#[derive(Clone, Copy, Debug)]
pub struct TriangleWeight {
    /// Multiplier on the closed-triangle count (paper: 9).
    pub coefficient: f64,
    /// Default weight added to every edge (paper: 1).
    pub floor: f64,
}

impl Default for TriangleWeight {
    fn default() -> Self {
        TriangleWeight {
            coefficient: 9.0,
            floor: 1.0,
        }
    }
}

impl EdgeWeight for TriangleWeight {
    #[inline]
    fn weight(&self, edge: Edge, sample: &SampleView<'_>) -> f64 {
        self.coefficient * sample.triangles_closed_by(edge) as f64 + self.floor
    }

    #[inline]
    fn weight_and_presence(&self, edge: Edge, sample: &SampleView<'_>) -> (f64, bool) {
        let (triangles, present) = sample.triangle_closure_raw(edge);
        (self.coefficient * triangles as f64 + self.floor, present)
    }
}

/// Wedge-targeted weights: `W(k, K̂) = coefficient · |Λ̂(k)| + floor` where
/// `|Λ̂(k)|` is the number of sampled edges adjacent to the arriving edge —
/// i.e. the number of wedges it completes (paper §3.2 suggests "the number
/// of edges in the currently sampled graph that are adjacent to an arriving
/// edge" as a weight). The analogous IPPS coefficient is 4 = 2² since a
/// wedge has two edges.
#[derive(Clone, Copy, Debug)]
pub struct WedgeWeight {
    /// Multiplier on the adjacent-edge count (wedges completed).
    pub coefficient: f64,
    /// Default weight added to every edge.
    pub floor: f64,
}

impl Default for WedgeWeight {
    fn default() -> Self {
        WedgeWeight {
            coefficient: 4.0,
            floor: 1.0,
        }
    }
}

impl EdgeWeight for WedgeWeight {
    #[inline]
    fn weight(&self, edge: Edge, sample: &SampleView<'_>) -> f64 {
        self.coefficient * sample.wedges_closed_by(edge) as f64 + self.floor
    }

    #[inline]
    fn weight_and_presence(&self, edge: Edge, sample: &SampleView<'_>) -> (f64, bool) {
        let (deg_sum, present) = sample.wedge_closure_raw(edge);
        let wedges = deg_sum - if present { 2 } else { 0 };
        (self.coefficient * wedges as f64 + self.floor, present)
    }
}

/// Combined triangle + wedge weights, for samples that must serve both
/// estimands well simultaneously (the paper's Table 1 shows one sample
/// estimating triangles, wedges and clustering together).
#[derive(Clone, Copy, Debug)]
pub struct TriadWeight {
    /// Triangle coefficient (paper-style default 9).
    pub triangle_coefficient: f64,
    /// Wedge coefficient (default 4).
    pub wedge_coefficient: f64,
    /// Default weight added to every edge.
    pub floor: f64,
}

impl Default for TriadWeight {
    fn default() -> Self {
        TriadWeight {
            triangle_coefficient: 9.0,
            wedge_coefficient: 4.0,
            floor: 1.0,
        }
    }
}

impl EdgeWeight for TriadWeight {
    #[inline]
    fn weight(&self, edge: Edge, sample: &SampleView<'_>) -> f64 {
        let (triangles, wedges) = sample.triad_closed_by(edge);
        self.triangle_coefficient * triangles as f64
            + self.wedge_coefficient * wedges as f64
            + self.floor
    }

    #[inline]
    fn weight_and_presence(&self, edge: Edge, sample: &SampleView<'_>) -> (f64, bool) {
        let (triangles, deg_sum, present) = sample.triad_counts_raw(edge);
        let wedges = deg_sum - if present { 2 } else { 0 };
        let w = self.triangle_coefficient * triangles as f64
            + self.wedge_coefficient * wedges as f64
            + self.floor;
        (w, present)
    }
}

/// Arbitrary user-supplied weight function (attributes, auxiliary variables,
/// byte counts, …; paper §3.2 S3 lists "endpoint node/edge identities,
/// attributes, and other auxiliary variables").
pub struct FnWeight<F>(pub F);

impl<F: Fn(Edge, &SampleView<'_>) -> f64> EdgeWeight for FnWeight<F> {
    #[inline]
    fn weight(&self, edge: Edge, sample: &SampleView<'_>) -> f64 {
        (self.0)(edge, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir::GpsSampler;

    /// Builds a sampler holding a triangle (1,2,3) plus edge (3,4), with
    /// capacity large enough that nothing is evicted.
    fn loaded_sampler() -> GpsSampler<UniformWeight> {
        let mut s = GpsSampler::new(16, UniformWeight, 1);
        for e in [
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(1, 3),
            Edge::new(3, 4),
        ] {
            s.process(e);
        }
        s
    }

    #[test]
    fn uniform_weight_is_one() {
        let s = loaded_sampler();
        assert_eq!(UniformWeight.weight(Edge::new(9, 10), &s.view()), 1.0);
    }

    #[test]
    fn triangle_weight_counts_closed_triangles() {
        let s = loaded_sampler();
        let w = TriangleWeight::default();
        // (1,4) closes triangle (1,3,4)? needs edges (1,3) ✓ and (3,4) ✓.
        assert_eq!(w.weight(Edge::new(1, 4), &s.view()), 9.0 + 1.0);
        // (2,4) closes (2,3,4) via (2,3) and (3,4).
        assert_eq!(w.weight(Edge::new(2, 4), &s.view()), 10.0);
        // (5,6) closes nothing → floor.
        assert_eq!(w.weight(Edge::new(5, 6), &s.view()), 1.0);
        // Re-arrival of (1,2) would close triangle (1,2,3) — weight counts it.
        assert_eq!(w.weight(Edge::new(1, 2), &s.view()), 10.0);
    }

    #[test]
    fn wedge_weight_counts_adjacent_edges() {
        let s = loaded_sampler();
        let w = WedgeWeight::default();
        // (4,5): node 4 touches edge (3,4) → 1 adjacent edge; node 5 none.
        assert_eq!(w.weight(Edge::new(4, 5), &s.view()), 4.0 + 1.0);
        // (1,4): node 1 touches 2 sampled edges, node 4 touches 1 → 3.
        assert_eq!(w.weight(Edge::new(1, 4), &s.view()), 12.0 + 1.0);
        assert_eq!(w.weight(Edge::new(8, 9), &s.view()), 1.0);
    }

    #[test]
    fn triad_weight_combines_both() {
        let s = loaded_sampler();
        let w = TriadWeight::default();
        // (1,4): 1 triangle closed, 3 adjacent edges.
        assert_eq!(w.weight(Edge::new(1, 4), &s.view()), 9.0 + 12.0 + 1.0);
    }

    #[test]
    fn fn_weight_sees_sample() {
        let s = loaded_sampler();
        let w = FnWeight(|e: Edge, view: &SampleView<'_>| {
            1.0 + view.degree(e.u()) as f64 + view.degree(e.v()) as f64
        });
        // degrees in sample: node 3 has degree 3, node 5 degree 0.
        assert_eq!(w.weight(Edge::new(3, 5), &s.view()), 4.0);
    }
}
