//! In-stream estimation — paper Algorithm 3 (`InStream GPS`).
//!
//! Instead of reconstructing subgraph estimates from the reservoir after the
//! fact, in-stream estimation takes a *snapshot* of each triangle/wedge at
//! the moment its last edge arrives (a stopped-Martingale estimator, paper
//! Theorem 4/6): when edge `k3` arrives and its first two edges `k1, k2` are
//! sampled, the wedge `(k1, k2)` is frozen at inverse-probability value
//! `1/(q1·q2)` using the *current* threshold. Snapshots are never re-visited
//! — the sample keeps evolving, but extracted information does not change.
//!
//! Variance estimation (Theorem 7) needs covariances between snapshots taken
//! at different times; Algorithm 3 accumulates those incrementally via two
//! per-sampled-edge accumulators `C̃_k(△)`, `C̃_k(Λ)` which are dropped when
//! `k` is evicted (lines 39–40).
//!
//! The paper's evaluation (Table 1, Table 3) shows this estimator achieves
//! visibly lower variance than post-stream estimation *on the same sample* —
//! reproduced in this workspace by `gps-bench`.

use crate::estimate::{Estimate, TriadEstimates};
use crate::reservoir::{prob, Arrival, GpsSampler, SampleView};
use crate::slab::SlotId;
use crate::weights::EdgeWeight;
use gps_graph::types::Edge;

/// Portable snapshot of every Algorithm-3 accumulator an
/// [`InStreamEstimator`] carries beyond its sampler: the five global
/// count/variance accumulators plus the per-sampled-edge covariance
/// accumulators `C̃_k(△), C̃_k(Λ)` (paper Alg 3 lines 39–40).
///
/// Together with the sampler's own persisted state this makes a resumed
/// estimator *exact*: [`InStreamEstimator::resume`] reinstates everything,
/// so estimates after the handover are bit-identical to an uninterrupted
/// run at the same watermark — unlike [`InStreamEstimator::from_sampler`],
/// which re-seeds from a post-stream estimate and loses the cross-snapshot
/// covariance terms. The `gps-sample v2` persist section carries this
/// state on disk.
#[derive(Clone, Debug, PartialEq)]
pub struct InStreamState {
    /// Triangle count accumulator `Ñ(△)`.
    pub n_tri: f64,
    /// Triangle variance accumulator `Ṽ(△)`.
    pub v_tri: f64,
    /// Wedge count accumulator `Ñ(Λ)`.
    pub n_wedge: f64,
    /// Wedge variance accumulator `Ṽ(Λ)`.
    pub v_wedge: f64,
    /// Triangle–wedge covariance accumulator `Ṽ(△,Λ)`.
    pub tri_wedge_cov: f64,
    /// Per sampled edge `(C̃_k(△), C̃_k(Λ))`, parallel to the
    /// [`GpsSampler::edges`] iteration order of the sampler the state was
    /// exported from.
    pub per_edge: Vec<(f64, f64)>,
}

impl InStreamState {
    /// The state of a fresh estimator over an empty sampler.
    pub fn empty() -> Self {
        InStreamState {
            n_tri: 0.0,
            v_tri: 0.0,
            n_wedge: 0.0,
            v_wedge: 0.0,
            tri_wedge_cov: 0.0,
            per_edge: Vec::new(),
        }
    }
}

/// GPS sampler plus in-stream triangle/wedge count and variance
/// accumulators (paper Algorithm 3).
pub struct InStreamEstimator<W> {
    sampler: GpsSampler<W>,
    n_tri: f64,
    v_tri: f64,
    n_wedge: f64,
    v_wedge: f64,
    tri_wedge_cov: f64,
    /// Scratch: slots of (k1, k2) per triangle completed by the arrival.
    tri_buf: Vec<(SlotId, SlotId)>,
    /// Scratch: slots of sampled edges adjacent to the arrival.
    wedge_buf: Vec<SlotId>,
}

impl<W: EdgeWeight> InStreamEstimator<W> {
    /// Creates an in-stream estimator over a fresh `GPS(m)` sampler.
    ///
    /// Given the same `capacity`, `weight_fn` and `seed`, the underlying
    /// sampler selects *exactly* the same edges as a bare [`GpsSampler`] —
    /// the paper's experimental setup relies on this to compare post- and
    /// in-stream estimation on identical samples.
    pub fn new(capacity: usize, weight_fn: W, seed: u64) -> Self {
        Self::with_backend(capacity, weight_fn, seed, gps_graph::BackendKind::Compact)
    }

    /// [`InStreamEstimator::new`] over a sampler on an explicit adjacency
    /// backend (see [`GpsSampler::with_backend`]): same-seed runs produce
    /// bit-identical samples *and* estimates on either backend.
    pub fn with_backend(
        capacity: usize,
        weight_fn: W,
        seed: u64,
        backend: gps_graph::BackendKind,
    ) -> Self {
        InStreamEstimator {
            sampler: GpsSampler::with_backend(capacity, weight_fn, seed, backend),
            n_tri: 0.0,
            v_tri: 0.0,
            n_wedge: 0.0,
            v_wedge: 0.0,
            tri_wedge_cov: 0.0,
            tri_buf: Vec::new(),
            wedge_buf: Vec::new(),
        }
    }

    /// Wraps an existing sampler — the resume path for restored reservoirs
    /// (`gps-engine` snapshots re-enter in-stream estimation through here).
    ///
    /// The global count/variance accumulators are seeded from a post-stream
    /// estimate of the sample as handed over (zero for an empty sampler, so
    /// wrapping a fresh sampler is identical to
    /// [`InStreamEstimator::new`]): the post-stream estimate is unbiased
    /// for every subgraph completed before the handover, and snapshots of
    /// subgraphs completed afterwards add their increments on top, keeping
    /// the running totals unbiased across the handover. The per-edge
    /// covariance accumulators restart at zero — covariance between pre-
    /// and post-handover snapshots is not tracked (the persist format does
    /// not carry it), so variance estimates straddling a handover are
    /// slightly understated.
    pub fn from_sampler(sampler: GpsSampler<W>) -> Self {
        // On an empty (fresh) sampler the post-stream estimate is the
        // all-zero bundle, so this single path covers both fresh wrapping
        // and resume.
        let seeded = crate::post_stream::estimate(&sampler);
        InStreamEstimator {
            sampler,
            n_tri: seeded.triangles.value,
            v_tri: seeded.triangles.variance,
            n_wedge: seeded.wedges.value,
            v_wedge: seeded.wedges.variance,
            tri_wedge_cov: seeded.tri_wedge_cov,
            tri_buf: Vec::new(),
            wedge_buf: Vec::new(),
        }
    }

    /// Consumes the estimator, returning the underlying sampler (e.g. to
    /// persist it — the snapshot formats store samples, not accumulators).
    pub fn into_sampler(self) -> GpsSampler<W> {
        self.sampler
    }

    /// Exports the full Algorithm-3 accumulator state. Pair with the
    /// sampler's persisted sample (the `gps-sample v2` section does both)
    /// and [`InStreamEstimator::resume`] for an exact handover.
    pub fn export_state(&self) -> InStreamState {
        InStreamState {
            n_tri: self.n_tri,
            v_tri: self.v_tri,
            n_wedge: self.n_wedge,
            v_wedge: self.v_wedge,
            tri_wedge_cov: self.tri_wedge_cov,
            per_edge: self
                .sampler
                .slab()
                .iter()
                .map(|(_, r)| (r.cov_tri, r.cov_wedge))
                .collect(),
        }
    }

    /// Consumes the estimator, returning the sampler and the exported
    /// accumulator state in one move (the engine's checkpoint/`finish`
    /// paths use this to hand both halves over without cloning).
    pub fn into_parts(self) -> (GpsSampler<W>, InStreamState) {
        let state = self.export_state();
        (self.sampler, state)
    }

    /// Exact resume: wraps `sampler` and reinstates a previously
    /// [`export_state`]ed accumulator snapshot, including the per-edge
    /// covariance accumulators (written back in [`GpsSampler::edges`]
    /// order, which restored samplers preserve).
    ///
    /// Subsequent estimates are bit-identical to the estimator the state
    /// was exported from — the exactness contract the `gps-sample v2`
    /// persist section and engine checkpoints rely on.
    ///
    /// # Panics
    ///
    /// If `state.per_edge` does not have exactly one entry per sampled
    /// edge (the persist layer validates this before calling; direct
    /// callers pairing a sampler with a state from elsewhere have a logic
    /// error).
    ///
    /// [`export_state`]: InStreamEstimator::export_state
    pub fn resume(mut sampler: GpsSampler<W>, state: InStreamState) -> Self {
        let (slab, _adj, _z) = sampler.estimator_parts();
        assert_eq!(
            state.per_edge.len(),
            slab.len(),
            "in-stream state covers {} edges but the sampler holds {}",
            state.per_edge.len(),
            slab.len()
        );
        let slots: Vec<SlotId> = slab.iter().map(|(slot, _)| slot).collect();
        for (slot, &(cov_tri, cov_wedge)) in slots.into_iter().zip(&state.per_edge) {
            let record = slab.get_mut(slot);
            record.cov_tri = cov_tri;
            record.cov_wedge = cov_wedge;
        }
        InStreamEstimator {
            sampler,
            n_tri: state.n_tri,
            v_tri: state.v_tri,
            n_wedge: state.n_wedge,
            v_wedge: state.v_wedge,
            tri_wedge_cov: state.tri_wedge_cov,
            tri_buf: Vec::new(),
            wedge_buf: Vec::new(),
        }
    }

    /// Processes one arrival: snapshot-estimates the subgraphs the edge
    /// completes (`GPSEstimate`, Alg 3 lines 8–27), *then* offers the edge
    /// to the sampler (`GPSUpdate`).
    pub fn process(&mut self, edge: Edge) -> Arrival {
        if self.sampler.contains(edge) {
            // Duplicate arrival: counting its completions again would bias
            // the estimators upward, so skip both phases.
            return self.sampler.process(edge);
        }
        self.snapshot_completions(edge);
        self.sampler.process(edge)
    }

    /// Feeds a whole stream through [`InStreamEstimator::process`].
    pub fn process_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.process(e);
        }
    }

    fn snapshot_completions(&mut self, edge: Edge) {
        let (v1, v2) = edge.endpoints();
        // Phase 1 (immutable): enumerate completed subgraphs from the
        // adjacency into scratch buffers. The fused walk resolves each
        // endpoint once for both the triangle and wedge enumerations,
        // instead of once per phase (ROADMAP "walker fusion" item).
        {
            let view = self.sampler.view();
            self.tri_buf.clear();
            self.wedge_buf.clear();
            let tri_buf = &mut self.tri_buf;
            let wedge_buf = &mut self.wedge_buf;
            view.for_each_completion_slots(
                v1,
                v2,
                |_, s1, s2| tri_buf.push((s1, s2)),
                |slot| wedge_buf.push(slot),
            );
        }
        // Phase 2 (mutable): fold the snapshots into the global accumulators
        // and update the per-edge covariance accumulators.
        let (slab, _adj, z) = self.sampler.estimator_parts();

        // Triangles (k1, k2, k) completed by k (Alg 3 lines 9–19). The
        // snapshot freezes the wedge (k1, k2) just before k's sampling step.
        for &(s1, s2) in &self.tri_buf {
            let q1 = prob(slab.get(s1).weight, z);
            let q2 = prob(slab.get(s2).weight, z);
            let inv12 = 1.0 / (q1 * q2);
            self.n_tri += inv12;
            self.v_tri += (inv12 - 1.0) * inv12;
            self.v_tri += 2.0 * (slab.get(s1).cov_tri + slab.get(s2).cov_tri) * inv12;
            self.tri_wedge_cov += (slab.get(s1).cov_wedge + slab.get(s2).cov_wedge) * inv12;
            slab.get_mut(s1).cov_tri += (1.0 / q1 - 1.0) / q2;
            slab.get_mut(s2).cov_tri += (1.0 / q2 - 1.0) / q1;
        }

        // Wedges (j, k) completed by k (Alg 3 lines 20–27).
        for &slot in &self.wedge_buf {
            let q = prob(slab.get(slot).weight, z);
            let inv = 1.0 / q;
            self.n_wedge += inv;
            self.v_wedge += inv * (inv - 1.0);
            self.v_wedge += 2.0 * slab.get(slot).cov_wedge * inv;
            self.tri_wedge_cov += slab.get(slot).cov_tri * inv;
            slab.get_mut(slot).cov_wedge += inv - 1.0;
        }
        // Eviction cleanup (Alg 3 lines 39–40) is automatic: the evicted
        // edge's accumulators live in its slab record and die with it.
    }

    /// Current snapshot estimates `Ñ(△), Ñ(Λ), Ṽ(△), Ṽ(Λ), Ṽ(△,Λ)` and
    /// the derived clustering coefficient.
    pub fn estimates(&self) -> TriadEstimates {
        TriadEstimates::from_parts(
            Estimate {
                value: self.n_tri,
                variance: self.v_tri,
            },
            Estimate {
                value: self.n_wedge,
                variance: self.v_wedge,
            },
            self.tri_wedge_cov,
        )
    }

    /// Triangle count estimate `Ñ(△)` (cheap accessor for tracking loops).
    #[inline]
    pub fn triangle_count(&self) -> f64 {
        self.n_tri
    }

    /// Wedge count estimate `Ñ(Λ)`.
    #[inline]
    pub fn wedge_count(&self) -> f64 {
        self.n_wedge
    }

    /// The underlying sampler (e.g. to run post-stream estimation on the
    /// identical sample, as the paper's comparison does).
    #[inline]
    pub fn sampler(&self) -> &GpsSampler<W> {
        &self.sampler
    }

    /// Read-only sample view.
    #[inline]
    pub fn view(&self) -> SampleView<'_> {
        self.sampler.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post_stream;
    use crate::weights::{TriangleWeight, UniformWeight};

    fn k4_edges() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn full_retention_counts_exactly() {
        let mut est = InStreamEstimator::new(64, TriangleWeight::default(), 1);
        est.process_stream(k4_edges());
        let e = est.estimates();
        assert!((e.triangles.value - 4.0).abs() < 1e-12);
        assert!((e.wedges.value - 12.0).abs() < 1e-12);
        assert_eq!(e.triangles.variance, 0.0);
        assert_eq!(e.wedges.variance, 0.0);
        assert!((e.clustering.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_order_invariant_under_full_retention() {
        // Any arrival order must give the same exact counts when nothing is
        // evicted (every subgraph is snapshotted at its completion).
        let mut orders = vec![k4_edges()];
        let mut rev = k4_edges();
        rev.reverse();
        orders.push(rev);
        let mut rotated = k4_edges();
        rotated.rotate_left(3);
        orders.push(rotated);
        for order in orders {
            let mut est = InStreamEstimator::new(64, UniformWeight, 5);
            est.process_stream(order);
            assert!((est.triangle_count() - 4.0).abs() < 1e-12);
            assert!((est.wedge_count() - 12.0).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut est = InStreamEstimator::new(64, UniformWeight, 2);
        let tri = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        est.process_stream(tri);
        let before = est.triangle_count();
        est.process(Edge::new(0, 2)); // duplicate
        est.process(Edge::new(2, 0)); // duplicate, other orientation
        assert_eq!(est.triangle_count(), before);
        assert_eq!(est.sampler().duplicates(), 2);
    }

    #[test]
    fn same_seed_same_sample_as_bare_sampler() {
        let mut edges = vec![];
        for base in (0..60u32).step_by(3) {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base + 1, base + 2));
            edges.push(Edge::new(base, base + 2));
        }
        let mut bare = GpsSampler::new(10, TriangleWeight::default(), 77);
        bare.process_stream(edges.clone());
        let mut instream = InStreamEstimator::new(10, TriangleWeight::default(), 77);
        instream.process_stream(edges);
        let mut a: Vec<Edge> = bare.edges().map(|s| s.edge).collect();
        let mut b: Vec<Edge> = instream.sampler().edges().map(|s| s.edge).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "in-stream wrapper must not perturb the sample");
        assert_eq!(bare.threshold(), instream.sampler().threshold());
    }

    #[test]
    fn variance_terms_are_nonnegative_under_eviction() {
        let mut est = InStreamEstimator::new(8, TriangleWeight::default(), 3);
        let mut edges = vec![];
        for base in 0..20u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        est.process_stream(edges);
        assert!(est.sampler().threshold() > 0.0);
        let e = est.estimates();
        assert!(e.triangles.variance >= 0.0);
        assert!(e.wedges.variance >= 0.0);
        assert!(e.tri_wedge_cov >= 0.0);
    }

    #[test]
    fn post_stream_on_same_sample_agrees_under_full_retention() {
        // With no eviction both estimators see every subgraph at p = 1 and
        // must agree exactly.
        let mut est = InStreamEstimator::new(128, TriangleWeight::default(), 9);
        est.process_stream(k4_edges());
        let post = post_stream::estimate(est.sampler());
        let instream = est.estimates();
        assert!((post.triangles.value - instream.triangles.value).abs() < 1e-12);
        assert!((post.wedges.value - instream.wedges.value).abs() < 1e-12);
    }

    #[test]
    fn from_sampler_on_fresh_sampler_matches_new() {
        let edges = k4_edges();
        let mut a = InStreamEstimator::new(3, TriangleWeight::default(), 21);
        let mut b =
            InStreamEstimator::from_sampler(GpsSampler::new(3, TriangleWeight::default(), 21));
        for &e in &edges {
            a.process(e);
            b.process(e);
        }
        assert_eq!(a.triangle_count().to_bits(), b.triangle_count().to_bits());
        assert_eq!(a.wedge_count().to_bits(), b.wedge_count().to_bits());
        let (ea, eb) = (a.estimates(), b.estimates());
        assert_eq!(
            ea.triangles.variance.to_bits(),
            eb.triangles.variance.to_bits()
        );
        assert_eq!(a.sampler().threshold(), b.sampler().threshold());
    }

    #[test]
    fn from_sampler_seeds_counts_from_post_stream_estimate() {
        // Hand over a sampler that already holds a full K4: the wrapped
        // estimator must start from the post-stream (here: exact) counts,
        // and new completions add on top.
        let mut sampler = GpsSampler::new(64, TriangleWeight::default(), 4);
        sampler.process_stream(k4_edges());
        let mut est = InStreamEstimator::from_sampler(sampler);
        assert!((est.triangle_count() - 4.0).abs() < 1e-12);
        assert!((est.wedge_count() - 12.0).abs() < 1e-12);
        // Extend node 4 into the clique: edges (0,4), (1,4) close one new
        // triangle (0,1,4) and new wedges.
        est.process(Edge::new(0, 4));
        est.process(Edge::new(1, 4));
        assert!((est.triangle_count() - 5.0).abs() < 1e-12);
        let sampler = est.into_sampler();
        assert_eq!(sampler.len(), 8);
    }

    fn eviction_stream() -> Vec<Edge> {
        let mut edges = vec![];
        for base in 0..30u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        edges
    }

    #[test]
    fn export_resume_continues_bit_identically_to_uninterrupted_run() {
        // Split the stream mid-way, export/resume the accumulator state on
        // the *same* sampler (RNG state carried over), and finish the
        // stream: every estimate must be bit-identical to the uninterrupted
        // run — the exactness contract `from_sampler` cannot offer.
        let edges = eviction_stream();
        let split = 50;
        let mut full = InStreamEstimator::new(8, TriangleWeight::default(), 11);
        full.process_stream(edges.iter().copied());

        let mut first = InStreamEstimator::new(8, TriangleWeight::default(), 11);
        first.process_stream(edges[..split].iter().copied());
        assert!(
            first.sampler().threshold() > 0.0,
            "split must land after evictions started"
        );
        let (sampler, state) = first.into_parts();
        let mut resumed = InStreamEstimator::resume(sampler, state);
        resumed.process_stream(edges[split..].iter().copied());

        let (a, b) = (full.estimates(), resumed.estimates());
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(
            a.triangles.variance.to_bits(),
            b.triangles.variance.to_bits()
        );
        assert_eq!(a.wedges.value.to_bits(), b.wedges.value.to_bits());
        assert_eq!(a.wedges.variance.to_bits(), b.wedges.variance.to_bits());
        assert_eq!(a.tri_wedge_cov.to_bits(), b.tri_wedge_cov.to_bits());
    }

    #[test]
    fn resume_after_sampler_round_trip_is_exact_at_watermark() {
        // Persist-style round trip: rebuild the sampler from raw records
        // (fresh RNG — statistically equivalent, not bit-identical going
        // forward) and reinstate the exported state. At the save watermark
        // the estimates must be bit-identical to the original estimator.
        let edges = eviction_stream();
        let mut orig = InStreamEstimator::new(8, TriangleWeight::default(), 11);
        orig.process_stream(edges.iter().copied().take(60));
        let state = orig.export_state();
        let before = orig.estimates();
        let sampler = orig.sampler();
        let records: Vec<_> = sampler
            .edges()
            .map(|s| (s.edge, s.weight, s.priority))
            .collect();
        let rebuilt = GpsSampler::restore_with_backend(
            8,
            TriangleWeight::default(),
            11,
            sampler.threshold(),
            sampler.arrivals(),
            records,
            sampler.backend(),
        );
        let resumed = InStreamEstimator::resume(rebuilt, state.clone());
        let after = resumed.estimates();
        assert_eq!(
            before.triangles.value.to_bits(),
            after.triangles.value.to_bits()
        );
        assert_eq!(
            before.triangles.variance.to_bits(),
            after.triangles.variance.to_bits()
        );
        assert_eq!(before.wedges.value.to_bits(), after.wedges.value.to_bits());
        assert_eq!(
            before.wedges.variance.to_bits(),
            after.wedges.variance.to_bits()
        );
        assert_eq!(
            before.tri_wedge_cov.to_bits(),
            after.tri_wedge_cov.to_bits()
        );
        // And the round trip preserved the per-edge accumulators exactly.
        assert_eq!(resumed.export_state(), state);
    }

    #[test]
    #[should_panic(expected = "in-stream state covers")]
    fn resume_rejects_mismatched_per_edge_length() {
        let mut sampler = GpsSampler::new(8, UniformWeight, 1);
        sampler.process_stream(k4_edges());
        let mut state = InStreamState::empty();
        state.per_edge.push((0.0, 0.0));
        let _ = InStreamEstimator::resume(sampler, state);
    }

    #[test]
    fn empty_state_matches_fresh_estimator() {
        assert_eq!(
            InStreamEstimator::new(4, UniformWeight, 0).export_state(),
            InStreamState::empty()
        );
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let est = InStreamEstimator::new(4, UniformWeight, 0);
        let e = est.estimates();
        assert_eq!(e.triangles.value, 0.0);
        assert_eq!(e.wedges.value, 0.0);
        assert_eq!(e.clustering.value, 0.0);
    }
}
