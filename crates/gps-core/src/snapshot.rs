//! Generic in-stream subgraph counting via snapshots — paper Theorem 4.
//!
//! The triangle/wedge machinery of Algorithm 3 is one instance of a general
//! pattern: *each time a subgraph matching a motif is completed by an
//! arriving edge, freeze ("snapshot") the Horvitz–Thompson product of its
//! already-sampled edges and add it to a counter.* Theorem 4(ii) shows the
//! resulting sum is an unbiased estimator of the number of motif instances
//! in the streamed graph, because arrival times are deterministic stopping
//! times.
//!
//! [`MotifCounter`] exposes that pattern for arbitrary motifs: the caller
//! supplies a detector that, given the sample and the arriving edge, lists
//! the sampled edge sets completed by the arrival. [`four_clique_counter`]
//! is a ready-made instance counting 4-cliques, demonstrating estimation of
//! a motif the paper only gestures at ("triangle or other clique", §5).

use crate::reservoir::{Arrival, GpsSampler, SampleView};
use crate::weights::EdgeWeight;
use gps_graph::types::Edge;

/// Detector callback: pushes, for each motif instance completed by
/// `arriving`, the set of *sampled* edges forming the rest of the instance.
pub trait MotifDetector {
    /// Enumerates completed instances into `out` (one `Vec<Edge>` each).
    fn detect(&self, sample: &SampleView<'_>, arriving: Edge, out: &mut Vec<Vec<Edge>>);
}

impl<F: Fn(&SampleView<'_>, Edge, &mut Vec<Vec<Edge>>)> MotifDetector for F {
    fn detect(&self, sample: &SampleView<'_>, arriving: Edge, out: &mut Vec<Vec<Edge>>) {
        self(sample, arriving, out)
    }
}

/// In-stream unbiased counter for an arbitrary motif (Theorem 4(ii)).
pub struct MotifCounter<W, D> {
    sampler: GpsSampler<W>,
    detector: D,
    count: f64,
    instances_seen: u64,
    scratch: Vec<Vec<Edge>>,
}

impl<W: EdgeWeight, D: MotifDetector> MotifCounter<W, D> {
    /// Creates a counter over a fresh `GPS(m)` sampler.
    pub fn new(capacity: usize, weight_fn: W, detector: D, seed: u64) -> Self {
        MotifCounter {
            sampler: GpsSampler::new(capacity, weight_fn, seed),
            detector,
            count: 0.0,
            instances_seen: 0,
            scratch: Vec::new(),
        }
    }

    /// Processes one arrival: snapshot each completed instance, then offer
    /// the edge to the sampler.
    pub fn process(&mut self, edge: Edge) -> Arrival {
        if !self.sampler.contains(edge) {
            self.scratch.clear();
            self.detector
                .detect(&self.sampler.view(), edge, &mut self.scratch);
            for instance in &self.scratch {
                let mut product = 1.0;
                let mut complete = true;
                for &e in instance {
                    match self.sampler.inclusion_prob(e) {
                        Some(p) => product /= p,
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if complete {
                    self.count += product;
                    self.instances_seen += 1;
                }
            }
        }
        self.sampler.process(edge)
    }

    /// Streams every edge through [`MotifCounter::process`].
    pub fn process_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.process(e);
        }
    }

    /// The running unbiased motif-count estimate.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.count
    }

    /// Number of sampled motif instances that contributed snapshots.
    #[inline]
    pub fn instances_seen(&self) -> u64 {
        self.instances_seen
    }

    /// Underlying sampler.
    #[inline]
    pub fn sampler(&self) -> &GpsSampler<W> {
        &self.sampler
    }
}

/// Detector for 4-cliques: when `(u, v)` arrives, every sampled pair
/// `{w, x}` of common neighbors of `u` and `v` with `(w, x)` sampled
/// completes the clique `{u, v, w, x}`; its remaining 5 edges must all be
/// in the sample.
pub fn four_clique_detector() -> impl MotifDetector {
    |sample: &SampleView<'_>, arriving: Edge, out: &mut Vec<Vec<Edge>>| {
        let (u, v) = arriving.endpoints();
        let mut commons = Vec::new();
        sample.for_each_common_slot(u, v, |w, _, _| commons.push(w));
        for (i, &w) in commons.iter().enumerate() {
            for &x in &commons[i + 1..] {
                let wx = Edge::new(w, x);
                if sample.contains(wx) {
                    out.push(vec![
                        Edge::new(u, w),
                        Edge::new(v, w),
                        Edge::new(u, x),
                        Edge::new(v, x),
                        wx,
                    ]);
                }
            }
        }
    }
}

/// Ready-made in-stream 4-clique counter. Uses triangle-targeted weights as
/// a proxy objective: edges in many sampled triangles are exactly the ones
/// likely to appear in cliques.
pub fn four_clique_counter(
    capacity: usize,
    seed: u64,
) -> MotifCounter<crate::weights::TriangleWeight, impl MotifDetector> {
    MotifCounter::new(
        capacity,
        crate::weights::TriangleWeight::default(),
        four_clique_detector(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: u32) -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn four_cliques_exact_under_full_retention() {
        // K5 has C(5,4) = 5 four-cliques.
        let mut counter = four_clique_counter(1000, 3);
        counter.process_stream(complete_graph(5));
        assert!((counter.estimate() - 5.0).abs() < 1e-12);
        assert_eq!(counter.instances_seen(), 5);

        // K6: C(6,4) = 15.
        let mut counter = four_clique_counter(1000, 4);
        counter.process_stream(complete_graph(6));
        assert!((counter.estimate() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn no_cliques_in_sparse_graphs() {
        let mut counter = four_clique_counter(100, 1);
        counter.process_stream((0..50).map(|i| Edge::new(i, i + 1)));
        assert_eq!(counter.estimate(), 0.0);
        assert_eq!(counter.instances_seen(), 0);
    }

    #[test]
    fn triangle_motif_matches_in_stream_estimator() {
        // A triangle detector through the generic API must agree with the
        // dedicated InStreamEstimator on triangle counts (same seed).
        let detector = |sample: &SampleView<'_>, arriving: Edge, out: &mut Vec<Vec<Edge>>| {
            let (u, v) = arriving.endpoints();
            let mut commons = Vec::new();
            sample.for_each_common_slot(u, v, |w, _, _| commons.push(w));
            for w in commons {
                out.push(vec![Edge::new(u, w), Edge::new(v, w)]);
            }
        };
        let edges = complete_graph(9);
        let mut generic =
            MotifCounter::new(20, crate::weights::TriangleWeight::default(), detector, 55);
        generic.process_stream(edges.clone());
        let mut dedicated = crate::in_stream::InStreamEstimator::new(
            20,
            crate::weights::TriangleWeight::default(),
            55,
        );
        dedicated.process_stream(edges);
        assert!((generic.estimate() - dedicated.triangle_count()).abs() < 1e-9);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut counter = four_clique_counter(100, 9);
        counter.process_stream(complete_graph(4));
        let before = counter.estimate();
        counter.process(Edge::new(0, 1));
        assert_eq!(counter.estimate(), before);
    }
}
