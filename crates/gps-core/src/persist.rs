//! Saving and restoring reference samples.
//!
//! The paper's post-stream estimation exists to let GPS "construct a
//! reference sample of edges to support retrospective graph queries" (§1).
//! A reference sample is only useful if it can outlive the process that
//! built it, so this module serializes the sampler's estimation-relevant
//! state — sampled edges with weights and priorities, the threshold `z*`,
//! and the stream position — to a simple line-oriented text format:
//!
//! ```text
//! gps-sample v1
//! capacity 20000
//! arrivals 265000
//! threshold 417.22914
//! edges 20000
//! 17 94 10.0 241.9018...
//! ...
//! ```
//!
//! The format is deliberately plain (no binary framing, no dependencies):
//! samples are inspectable with standard tools and diff cleanly. Weights,
//! priorities and the threshold round-trip exactly (Rust's shortest-exact
//! float formatting), so estimates from a restored sample equal estimates
//! from the original up to float summation order — the rebuilt adjacency
//! map may iterate neighbors in a different order, which can shift sums by
//! an ULP.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::reservoir::GpsSampler;
use crate::weights::EdgeWeight;
use gps_graph::types::Edge;

/// Magic first line of the format.
const MAGIC: &str = "gps-sample v1";

/// Errors arising from saving/loading samples.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the expected magic/version line.
    BadHeader(String),
    /// A malformed line (1-based index within the file).
    Parse {
        /// Line number.
        line: usize,
        /// Offending content (truncated).
        content: String,
    },
    /// Edge count declared in the header does not match the body.
    CountMismatch {
        /// Header-declared count.
        declared: usize,
        /// Actual parsed count.
        found: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadHeader(h) => write!(f, "not a gps-sample file (header {h:?})"),
            PersistError::Parse { line, content } => {
                write!(f, "cannot parse sample line {line}: {content:?}")
            }
            PersistError::CountMismatch { declared, found } => {
                write!(f, "sample declares {declared} edges but contains {found}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A sample loaded from disk, ready to become a sampler again.
#[derive(Clone, Debug, PartialEq)]
pub struct SavedSample {
    /// Reservoir capacity `m`.
    pub capacity: usize,
    /// Stream position when saved.
    pub arrivals: u64,
    /// Threshold `z*` when saved.
    pub threshold: f64,
    /// Sampled `(edge, weight, priority)` records.
    pub records: Vec<(Edge, f64, f64)>,
}

impl SavedSample {
    /// Rebuilds a sampler from the saved state. Pass the weight function to
    /// use if the sampler will keep consuming the stream; for purely
    /// retrospective use any weight function works (stored weights are what
    /// estimation reads).
    pub fn into_sampler<W: EdgeWeight>(self, weight_fn: W, seed: u64) -> GpsSampler<W> {
        GpsSampler::restore(
            self.capacity,
            weight_fn,
            seed,
            self.threshold,
            self.arrivals,
            self.records,
        )
    }
}

/// Writes the sampler's estimation state to `writer`.
pub fn save<W: EdgeWeight, Out: Write>(
    sampler: &GpsSampler<W>,
    writer: Out,
) -> Result<(), PersistError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "capacity {}", sampler.capacity())?;
    writeln!(w, "arrivals {}", sampler.arrivals())?;
    writeln!(w, "threshold {}", sampler.threshold())?;
    writeln!(w, "edges {}", sampler.len())?;
    for se in sampler.edges() {
        writeln!(
            w,
            "{} {} {} {}",
            se.edge.u(),
            se.edge.v(),
            se.weight,
            se.priority
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Saves to a file path. See [`save`].
pub fn save_file<W: EdgeWeight, P: AsRef<std::path::Path>>(
    sampler: &GpsSampler<W>,
    path: P,
) -> Result<(), PersistError> {
    save(sampler, std::fs::File::create(path)?)
}

/// Reads a saved sample from `reader`. The input must contain exactly one
/// sample section: trailing non-blank content (e.g. more body lines than
/// the header declared, or a second concatenated section — use
/// [`load_section`] for those) is a [`PersistError::Parse`] pointing at
/// the first offending line.
pub fn load<R: Read>(reader: R) -> Result<SavedSample, PersistError> {
    let mut r = BufReader::new(reader);
    let sample = load_section(&mut r)?;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        if !line.trim().is_empty() {
            return Err(PersistError::Parse {
                line: 0,
                content: format!(
                    "trailing content after the declared records: {}",
                    line.trim_end().chars().take(60).collect::<String>()
                ),
            });
        }
    }
    Ok(sample)
}

/// Reads one `gps-sample v1` section from `reader`, consuming exactly the
/// header plus the declared number of body records (interspersed blank
/// lines allowed) and leaving the reader positioned immediately after —
/// so container formats can concatenate sections (`gps-engine`'s sharded
/// snapshot stores one section per shard). Line numbers in errors are
/// relative to the start of the section.
pub fn load_section<R: BufRead>(r: &mut R) -> Result<SavedSample, PersistError> {
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut read_line = |r: &mut R, line: &mut String| -> Result<bool, PersistError> {
        line.clear();
        lineno += 1;
        Ok(r.read_line(line)? != 0)
    };
    let parse_err = |lineno: usize, line: &str| PersistError::Parse {
        line: lineno,
        content: line.trim_end().chars().take(80).collect(),
    };

    if !read_line(r, &mut line)? || line.trim_end() != MAGIC {
        return Err(PersistError::BadHeader(line.trim_end().to_string()));
    }

    let mut header = |r: &mut R, line: &mut String, key: &str| -> Result<String, PersistError> {
        if !read_line(r, line)? {
            return Err(parse_err(0, ""));
        }
        let trimmed = line.trim_end();
        match trimmed.strip_prefix(key).and_then(|v| v.strip_prefix(' ')) {
            Some(v) => Ok(v.to_string()),
            None => Err(parse_err(0, trimmed)),
        }
    };

    let capacity: usize = header(r, &mut line, "capacity")?
        .parse()
        .map_err(|_| parse_err(2, &line))?;
    let arrivals: u64 = header(r, &mut line, "arrivals")?
        .parse()
        .map_err(|_| parse_err(3, &line))?;
    let threshold: f64 = header(r, &mut line, "threshold")?
        .parse()
        .map_err(|_| parse_err(4, &line))?;
    let count: usize = header(r, &mut line, "edges")?
        .parse()
        .map_err(|_| parse_err(5, &line))?;

    // Cap the pre-allocation: `count` comes from the file, and a corrupt
    // header must surface as CountMismatch (EOF before `count` records),
    // not a capacity-overflow panic. The vector still grows to any honest
    // count.
    let mut records = Vec::with_capacity(count.min(1 << 20));
    let mut body_line = 5usize;
    while records.len() < count {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(PersistError::CountMismatch {
                declared: count,
                found: records.len(),
            });
        }
        body_line += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let mut next = || fields.next().ok_or_else(|| parse_err(body_line, trimmed));
        let u: u32 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let v: u32 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let weight: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let priority: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let edge = Edge::try_new(u, v).ok_or_else(|| parse_err(body_line, trimmed))?;
        records.push((edge, weight, priority));
    }
    Ok(SavedSample {
        capacity,
        arrivals,
        threshold,
        records,
    })
}

/// Loads from a file path. See [`load`].
pub fn load_file<P: AsRef<std::path::Path>>(path: P) -> Result<SavedSample, PersistError> {
    load(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post_stream;
    use crate::weights::{TriangleWeight, UniformWeight};

    fn loaded_sampler() -> GpsSampler<TriangleWeight> {
        let mut s = GpsSampler::new(12, TriangleWeight::default(), 3);
        let mut edges = vec![];
        for base in 0..15u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        s.process_stream(edges);
        assert!(s.threshold() > 0.0);
        s
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let sampler = loaded_sampler();
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let saved = load(buf.as_slice()).unwrap();
        assert_eq!(saved.capacity, sampler.capacity());
        assert_eq!(saved.arrivals, sampler.arrivals());
        assert_eq!(saved.threshold, sampler.threshold());
        assert_eq!(saved.records.len(), sampler.len());
    }

    #[test]
    fn restored_sampler_estimates_identically() {
        let sampler = loaded_sampler();
        let original = post_stream::estimate(&sampler);
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap().into_sampler(UniformWeight, 0);
        let again = post_stream::estimate(&restored);
        // Equal up to float summation order (see module docs).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        assert!(close(original.triangles.value, again.triangles.value));
        assert!(close(original.triangles.variance, again.triangles.variance));
        assert!(close(original.wedges.value, again.wedges.value));
        assert!(close(original.tri_wedge_cov, again.tri_wedge_cov));
    }

    #[test]
    fn restored_sampler_can_keep_streaming() {
        let sampler = loaded_sampler();
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let mut restored = load(buf.as_slice())
            .unwrap()
            .into_sampler(TriangleWeight::default(), 7);
        let before = restored.arrivals();
        restored.process(Edge::new(900, 901));
        assert_eq!(restored.arrivals(), before + 1);
        assert_eq!(restored.len(), restored.capacity());
        // Threshold can only grow.
        assert!(restored.threshold() >= sampler.threshold());
    }

    #[test]
    fn sections_compose_on_one_reader() {
        // Two samples written back to back load as two sections — the
        // container contract gps-engine's sharded snapshot relies on.
        let a = loaded_sampler();
        let mut b = GpsSampler::new(6, TriangleWeight::default(), 9);
        b.process_stream((0..30u32).map(|i| Edge::new(i, i + 1)));
        let mut buf = Vec::new();
        save(&a, &mut buf).unwrap();
        save(&b, &mut buf).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let sa = load_section(&mut r).unwrap();
        let sb = load_section(&mut r).unwrap();
        assert_eq!(sa.records.len(), a.len());
        assert_eq!(sa.threshold, a.threshold());
        assert_eq!(sb.records.len(), b.len());
        assert_eq!(sb.capacity, 6);
        // The reader is exhausted: a third section is a BadHeader (EOF).
        assert!(matches!(
            load_section(&mut r),
            Err(PersistError::BadHeader(_))
        ));
        // But the strict single-sample entry point rejects the same input,
        // pointing at the first trailing line (the second section's magic).
        match load(buf.as_slice()) {
            Err(PersistError::Parse { content, .. }) => {
                assert!(content.contains("trailing content"), "{content}");
                assert!(content.contains("gps-sample"), "{content}");
            }
            other => panic!("expected trailing-content Parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_input() {
        assert!(matches!(
            load("nonsense".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        let bad_body = "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\nx y z w\n";
        assert!(matches!(
            load(bad_body.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        let bad_count =
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 2\n0 1 1.0 2.0\n";
        assert!(matches!(
            load(bad_count.as_bytes()),
            Err(PersistError::CountMismatch { .. })
        ));
        // A corrupt (absurd) declared count must error, not panic on
        // pre-allocation.
        let huge_count = format!(
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges {}\n0 1 1.0 2.0\n",
            u64::MAX
        );
        assert!(matches!(
            load(huge_count.as_bytes()),
            Err(PersistError::CountMismatch { .. })
        ));
        let self_loop =
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\n3 3 1.0 2.0\n";
        assert!(matches!(
            load(self_loop.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let sampler = loaded_sampler();
        let path = std::env::temp_dir().join("gps-persist-test.sample");
        save_file(&sampler, &path).unwrap();
        let saved = load_file(&path).unwrap();
        assert_eq!(saved.records.len(), sampler.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::CountMismatch {
            declared: 5,
            found: 3,
        };
        assert!(format!("{e}").contains("5"));
        let e = PersistError::BadHeader("x".into());
        assert!(format!("{e}").contains("gps-sample"));
    }
}
