//! Saving and restoring reference samples.
//!
//! The paper's post-stream estimation exists to let GPS "construct a
//! reference sample of edges to support retrospective graph queries" (§1).
//! A reference sample is only useful if it can outlive the process that
//! built it, so this module serializes the sampler's estimation-relevant
//! state — sampled edges with weights and priorities, the threshold `z*`,
//! and the stream position — to a simple line-oriented text format:
//!
//! ```text
//! gps-sample v1
//! capacity 20000
//! arrivals 265000
//! threshold 417.22914
//! edges 20000
//! 17 94 10.0 241.9018...
//! ...
//! ```
//!
//! The format is deliberately plain (no binary framing, no dependencies):
//! samples are inspectable with standard tools and diff cleanly. Weights,
//! priorities and the threshold round-trip exactly (Rust's shortest-exact
//! float formatting), so estimates from a restored sample equal estimates
//! from the original up to float summation order — the rebuilt adjacency
//! map may iterate neighbors in a different order, which can shift sums by
//! an ULP.
//!
//! A second section kind, `gps-sample v2`, additionally carries the
//! in-stream estimator's full accumulator state (paper Algorithm 3): an
//! `acc` header with the five global count/variance accumulators, and two
//! extra per-record columns for the per-edge covariance accumulators
//! `C̃_k(△), C̃_k(Λ)`:
//!
//! ```text
//! gps-sample v2
//! capacity 20000
//! arrivals 265000
//! threshold 417.22914
//! acc 81.5 12.25 912.0 55.5 7.75
//! edges 20000
//! 17 94 10.0 241.9018... 0.0 1.5
//! ...
//! ```
//!
//! Restoring a v2 section through [`SavedSample::into_estimator`] is
//! *exact*: the resumed estimator's estimates are bit-identical to the
//! saved one's at the save watermark, and the cross-snapshot covariance
//! terms keep accumulating correctly afterwards — unlike a v1 restore,
//! which re-seeds the accumulators from a post-stream estimate (see
//! [`InStreamEstimator::from_sampler`]). Both section kinds compose in the
//! same container streams ([`load_section`] dispatches on the magic line).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::in_stream::{InStreamEstimator, InStreamState};
use crate::reservoir::GpsSampler;
use crate::weights::EdgeWeight;
use gps_graph::types::Edge;

/// Magic first line of the sample-only format.
const MAGIC: &str = "gps-sample v1";

/// Magic first line of the sample + in-stream-accumulators format.
const MAGIC_V2: &str = "gps-sample v2";

/// Errors arising from saving/loading samples.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the expected magic/version line.
    BadHeader(String),
    /// A malformed line (1-based index within the file).
    Parse {
        /// Line number.
        line: usize,
        /// Offending content (truncated).
        content: String,
    },
    /// Edge count declared in the header does not match the body.
    CountMismatch {
        /// Header-declared count.
        declared: usize,
        /// Actual parsed count.
        found: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadHeader(h) => write!(f, "not a gps-sample file (header {h:?})"),
            PersistError::Parse { line, content } => {
                write!(f, "cannot parse sample line {line}: {content:?}")
            }
            PersistError::CountMismatch { declared, found } => {
                write!(f, "sample declares {declared} edges but contains {found}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A sample loaded from disk, ready to become a sampler again.
#[derive(Clone, Debug, PartialEq)]
pub struct SavedSample {
    /// Reservoir capacity `m`.
    pub capacity: usize,
    /// Stream position when saved.
    pub arrivals: u64,
    /// Threshold `z*` when saved.
    pub threshold: f64,
    /// Sampled `(edge, weight, priority)` records.
    pub records: Vec<(Edge, f64, f64)>,
    /// In-stream accumulator state (`gps-sample v2` sections only; `None`
    /// for v1). `per_edge` is parallel to `records`.
    pub in_stream: Option<InStreamState>,
}

impl SavedSample {
    /// Rebuilds a sampler from the saved state, discarding any in-stream
    /// accumulator state. Pass the weight function to use if the sampler
    /// will keep consuming the stream; for purely retrospective use any
    /// weight function works (stored weights are what estimation reads).
    pub fn into_sampler<W: EdgeWeight>(self, weight_fn: W, seed: u64) -> GpsSampler<W> {
        GpsSampler::restore(
            self.capacity,
            weight_fn,
            seed,
            self.threshold,
            self.arrivals,
            self.records,
        )
    }

    /// Rebuilds an in-stream estimator from the saved state. A v2 section
    /// resumes *exactly* (accumulators reinstated, estimates bit-identical
    /// at the save watermark); a v1 section falls back to the inexact
    /// post-stream re-seeding of [`InStreamEstimator::from_sampler`].
    pub fn into_estimator<W: EdgeWeight>(
        self,
        weight_fn: W,
        seed: u64,
        backend: gps_graph::BackendKind,
    ) -> InStreamEstimator<W> {
        let SavedSample {
            capacity,
            arrivals,
            threshold,
            records,
            in_stream,
        } = self;
        let sampler = GpsSampler::restore_with_backend(
            capacity, weight_fn, seed, threshold, arrivals, records, backend,
        );
        match in_stream {
            // The v2 parser guarantees one per-edge entry per record, so
            // `resume`'s length contract holds for any loaded section.
            Some(state) => InStreamEstimator::resume(sampler, state),
            None => InStreamEstimator::from_sampler(sampler),
        }
    }
}

/// Writes the sampler's estimation state to `writer`.
pub fn save<W: EdgeWeight, Out: Write>(
    sampler: &GpsSampler<W>,
    writer: Out,
) -> Result<(), PersistError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "capacity {}", sampler.capacity())?;
    writeln!(w, "arrivals {}", sampler.arrivals())?;
    writeln!(w, "threshold {}", sampler.threshold())?;
    writeln!(w, "edges {}", sampler.len())?;
    for se in sampler.edges() {
        writeln!(
            w,
            "{} {} {} {}",
            se.edge.u(),
            se.edge.v(),
            se.weight,
            se.priority
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Saves to a file path. See [`save`].
pub fn save_file<W: EdgeWeight, P: AsRef<std::path::Path>>(
    sampler: &GpsSampler<W>,
    path: P,
) -> Result<(), PersistError> {
    save(sampler, std::fs::File::create(path)?)
}

/// Writes an in-stream estimator's sampler *and* accumulator state to
/// `writer` as a `gps-sample v2` section. Restoring through
/// [`SavedSample::into_estimator`] is exact (see the module docs).
pub fn save_estimator<W: EdgeWeight, Out: Write>(
    est: &InStreamEstimator<W>,
    writer: Out,
) -> Result<(), PersistError> {
    save_with_state(est.sampler(), &est.export_state(), writer)
}

/// The parts form of [`save_estimator`]: writes a sampler plus an exported
/// [`InStreamState`] as a `gps-sample v2` section. Container formats that
/// hold the two separately (a finished `gps-engine` snapshot keeps each
/// shard's sampler next to its exported accumulators) write sections
/// through this.
///
/// # Panics
/// Panics if `state.per_edge` does not cover exactly the sampler's edges —
/// a state exported from a *different* sampler would silently attach the
/// wrong covariances otherwise.
pub fn save_with_state<W: EdgeWeight, Out: Write>(
    sampler: &GpsSampler<W>,
    state: &InStreamState,
    writer: Out,
) -> Result<(), PersistError> {
    assert_eq!(
        state.per_edge.len(),
        sampler.len(),
        "in-stream state covers {} edges but the sampler holds {}",
        state.per_edge.len(),
        sampler.len()
    );
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC_V2}")?;
    writeln!(w, "capacity {}", sampler.capacity())?;
    writeln!(w, "arrivals {}", sampler.arrivals())?;
    writeln!(w, "threshold {}", sampler.threshold())?;
    writeln!(
        w,
        "acc {} {} {} {} {}",
        state.n_tri, state.v_tri, state.n_wedge, state.v_wedge, state.tri_wedge_cov
    )?;
    writeln!(w, "edges {}", sampler.len())?;
    for (se, (cov_tri, cov_wedge)) in sampler.edges().zip(&state.per_edge) {
        writeln!(
            w,
            "{} {} {} {} {} {}",
            se.edge.u(),
            se.edge.v(),
            se.weight,
            se.priority,
            cov_tri,
            cov_wedge
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a saved sample from `reader`. The input must contain exactly one
/// sample section: trailing non-blank content (e.g. more body lines than
/// the header declared, or a second concatenated section — use
/// [`load_section`] for those) is a [`PersistError::Parse`] pointing at
/// the first offending line.
pub fn load<R: Read>(reader: R) -> Result<SavedSample, PersistError> {
    let mut r = BufReader::new(reader);
    let sample = load_section(&mut r)?;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        if !line.trim().is_empty() {
            return Err(PersistError::Parse {
                line: 0,
                content: format!(
                    "trailing content after the declared records: {}",
                    line.trim_end().chars().take(60).collect::<String>()
                ),
            });
        }
    }
    Ok(sample)
}

/// Reads one `gps-sample v1` **or** `gps-sample v2` section from `reader`
/// (the magic line selects the kind), consuming exactly the header plus the
/// declared number of body records (interspersed blank lines allowed) and
/// leaving the reader positioned immediately after — so container formats
/// can concatenate sections (`gps-engine`'s sharded snapshot stores one
/// section per shard, of either kind). Line numbers in errors are relative
/// to the start of the section.
///
/// Every numeric field is validated on load — weights and priorities must
/// be finite and positive, the threshold finite and non-negative, the
/// accumulators finite — so a section that parses can always be restored
/// without panicking ([`PersistError`], never a corrupt sampler). Every
/// consumed line must carry its newline terminator (the writer always
/// emits one): a file cut mid-line errors instead of parsing a shortened
/// final number as a silently different value.
pub fn load_section<R: BufRead>(r: &mut R) -> Result<SavedSample, PersistError> {
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut read_line = |r: &mut R, line: &mut String| -> Result<bool, PersistError> {
        line.clear();
        lineno += 1;
        Ok(r.read_line(line)? != 0)
    };
    let parse_err = |lineno: usize, line: &str| PersistError::Parse {
        line: lineno,
        content: line.trim_end().chars().take(80).collect(),
    };

    if !read_line(r, &mut line)? {
        return Err(PersistError::BadHeader(line.trim_end().to_string()));
    }
    let v2 = match line.trim_end() {
        m if m == MAGIC => false,
        m if m == MAGIC_V2 => true,
        other => return Err(PersistError::BadHeader(other.to_string())),
    };

    let mut header = |r: &mut R, line: &mut String, key: &str| -> Result<String, PersistError> {
        if !read_line(r, line)? {
            return Err(parse_err(0, ""));
        }
        // The writer terminates every line; a missing terminator means the
        // file was cut mid-line, and a truncated final number would
        // otherwise parse as a silently different value. (The magic line
        // is exempt: garbage there reports BadHeader instead.)
        if !line.ends_with('\n') {
            return Err(parse_err(
                0,
                &format!("truncated line: {}", line.trim_end()),
            ));
        }
        let trimmed = line.trim_end();
        match trimmed.strip_prefix(key).and_then(|v| v.strip_prefix(' ')) {
            Some(v) => Ok(v.to_string()),
            None => Err(parse_err(0, trimmed)),
        }
    };

    let capacity: usize = header(r, &mut line, "capacity")?
        .parse()
        .map_err(|_| parse_err(2, &line))?;
    let arrivals: u64 = header(r, &mut line, "arrivals")?
        .parse()
        .map_err(|_| parse_err(3, &line))?;
    let threshold: f64 = header(r, &mut line, "threshold")?
        .parse()
        .map_err(|_| parse_err(4, &line))?;
    if !(threshold >= 0.0 && threshold.is_finite()) {
        return Err(parse_err(4, &line));
    }
    let acc = if v2 {
        let acc_line = header(r, &mut line, "acc")?;
        let mut fields = acc_line.split_whitespace().map(|f| {
            f.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| parse_err(5, &acc_line))
        });
        let mut next = || {
            fields
                .next()
                .unwrap_or_else(|| Err(parse_err(5, &acc_line)))
        };
        let acc = [next()?, next()?, next()?, next()?, next()?];
        if fields.next().is_some() {
            return Err(parse_err(5, &acc_line));
        }
        Some(acc)
    } else {
        None
    };
    let header_lines = if v2 { 6 } else { 5 };
    let count: usize = header(r, &mut line, "edges")?
        .parse()
        .map_err(|_| parse_err(header_lines, &line))?;

    // Cap the pre-allocation: `count` comes from the file, and a corrupt
    // header must surface as CountMismatch (EOF before `count` records),
    // not a capacity-overflow panic. The vector still grows to any honest
    // count.
    let mut records = Vec::with_capacity(count.min(1 << 20));
    let mut per_edge = Vec::with_capacity(if v2 { count.min(1 << 20) } else { 0 });
    let mut body_line = header_lines;
    while records.len() < count {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(PersistError::CountMismatch {
                declared: count,
                found: records.len(),
            });
        }
        body_line += 1;
        // Same truncation guard as the header lines: a record cut
        // mid-line must error, not parse a shortened number.
        if !line.ends_with('\n') {
            return Err(parse_err(
                body_line,
                &format!("truncated line: {}", line.trim_end()),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let mut next = || fields.next().ok_or_else(|| parse_err(body_line, trimmed));
        let u: u32 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let v: u32 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let weight: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        let priority: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
        if !(weight.is_finite() && weight > 0.0 && priority.is_finite() && priority > 0.0) {
            return Err(parse_err(body_line, trimmed));
        }
        if v2 {
            let cov_tri: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
            let cov_wedge: f64 = next()?.parse().map_err(|_| parse_err(body_line, trimmed))?;
            if !(cov_tri.is_finite() && cov_wedge.is_finite()) {
                return Err(parse_err(body_line, trimmed));
            }
            per_edge.push((cov_tri, cov_wedge));
        }
        let edge = Edge::try_new(u, v).ok_or_else(|| parse_err(body_line, trimmed))?;
        records.push((edge, weight, priority));
    }
    let in_stream = acc.map(
        |[n_tri, v_tri, n_wedge, v_wedge, tri_wedge_cov]| InStreamState {
            n_tri,
            v_tri,
            n_wedge,
            v_wedge,
            tri_wedge_cov,
            per_edge,
        },
    );
    Ok(SavedSample {
        capacity,
        arrivals,
        threshold,
        records,
        in_stream,
    })
}

/// Loads from a file path. See [`load`].
pub fn load_file<P: AsRef<std::path::Path>>(path: P) -> Result<SavedSample, PersistError> {
    load(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post_stream;
    use crate::weights::{TriangleWeight, UniformWeight};

    fn loaded_sampler() -> GpsSampler<TriangleWeight> {
        let mut s = GpsSampler::new(12, TriangleWeight::default(), 3);
        let mut edges = vec![];
        for base in 0..15u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        s.process_stream(edges);
        assert!(s.threshold() > 0.0);
        s
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let sampler = loaded_sampler();
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let saved = load(buf.as_slice()).unwrap();
        assert_eq!(saved.capacity, sampler.capacity());
        assert_eq!(saved.arrivals, sampler.arrivals());
        assert_eq!(saved.threshold, sampler.threshold());
        assert_eq!(saved.records.len(), sampler.len());
    }

    #[test]
    fn restored_sampler_estimates_identically() {
        let sampler = loaded_sampler();
        let original = post_stream::estimate(&sampler);
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap().into_sampler(UniformWeight, 0);
        let again = post_stream::estimate(&restored);
        // Equal up to float summation order (see module docs).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        assert!(close(original.triangles.value, again.triangles.value));
        assert!(close(original.triangles.variance, again.triangles.variance));
        assert!(close(original.wedges.value, again.wedges.value));
        assert!(close(original.tri_wedge_cov, again.tri_wedge_cov));
    }

    #[test]
    fn restored_sampler_can_keep_streaming() {
        let sampler = loaded_sampler();
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        let mut restored = load(buf.as_slice())
            .unwrap()
            .into_sampler(TriangleWeight::default(), 7);
        let before = restored.arrivals();
        restored.process(Edge::new(900, 901));
        assert_eq!(restored.arrivals(), before + 1);
        assert_eq!(restored.len(), restored.capacity());
        // Threshold can only grow.
        assert!(restored.threshold() >= sampler.threshold());
    }

    #[test]
    fn sections_compose_on_one_reader() {
        // Two samples written back to back load as two sections — the
        // container contract gps-engine's sharded snapshot relies on.
        let a = loaded_sampler();
        let mut b = GpsSampler::new(6, TriangleWeight::default(), 9);
        b.process_stream((0..30u32).map(|i| Edge::new(i, i + 1)));
        let mut buf = Vec::new();
        save(&a, &mut buf).unwrap();
        save(&b, &mut buf).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let sa = load_section(&mut r).unwrap();
        let sb = load_section(&mut r).unwrap();
        assert_eq!(sa.records.len(), a.len());
        assert_eq!(sa.threshold, a.threshold());
        assert_eq!(sb.records.len(), b.len());
        assert_eq!(sb.capacity, 6);
        // The reader is exhausted: a third section is a BadHeader (EOF).
        assert!(matches!(
            load_section(&mut r),
            Err(PersistError::BadHeader(_))
        ));
        // But the strict single-sample entry point rejects the same input,
        // pointing at the first trailing line (the second section's magic).
        match load(buf.as_slice()) {
            Err(PersistError::Parse { content, .. }) => {
                assert!(content.contains("trailing content"), "{content}");
                assert!(content.contains("gps-sample"), "{content}");
            }
            other => panic!("expected trailing-content Parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_input() {
        assert!(matches!(
            load("nonsense".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        let bad_body = "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\nx y z w\n";
        assert!(matches!(
            load(bad_body.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        let bad_count =
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 2\n0 1 1.0 2.0\n";
        assert!(matches!(
            load(bad_count.as_bytes()),
            Err(PersistError::CountMismatch { .. })
        ));
        // A corrupt (absurd) declared count must error, not panic on
        // pre-allocation.
        let huge_count = format!(
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges {}\n0 1 1.0 2.0\n",
            u64::MAX
        );
        assert!(matches!(
            load(huge_count.as_bytes()),
            Err(PersistError::CountMismatch { .. })
        ));
        let self_loop =
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\n3 3 1.0 2.0\n";
        assert!(matches!(
            load(self_loop.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
    }

    #[test]
    fn v2_round_trip_is_bit_exact() {
        // Save an estimator mid-stream (with evictions, so the per-edge
        // accumulators are non-trivial), reload, and require bit-identical
        // estimates and accumulator state.
        let mut est = InStreamEstimator::new(12, TriangleWeight::default(), 3);
        let mut edges = vec![];
        for base in 0..15u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        est.process_stream(edges);
        assert!(est.sampler().threshold() > 0.0);
        let before = est.estimates();
        let state = est.export_state();
        assert!(
            state.per_edge.iter().any(|&(t, w)| t != 0.0 || w != 0.0),
            "stream too small to exercise per-edge accumulators"
        );

        let mut buf = Vec::new();
        save_estimator(&est, &mut buf).unwrap();
        let saved = load(buf.as_slice()).unwrap();
        assert_eq!(saved.in_stream.as_ref(), Some(&state));
        let restored = saved.into_estimator(
            TriangleWeight::default(),
            3,
            gps_graph::BackendKind::Compact,
        );
        let after = restored.estimates();
        assert_eq!(
            before.triangles.value.to_bits(),
            after.triangles.value.to_bits()
        );
        assert_eq!(
            before.triangles.variance.to_bits(),
            after.triangles.variance.to_bits()
        );
        assert_eq!(before.wedges.value.to_bits(), after.wedges.value.to_bits());
        assert_eq!(
            before.wedges.variance.to_bits(),
            after.wedges.variance.to_bits()
        );
        assert_eq!(
            before.tri_wedge_cov.to_bits(),
            after.tri_wedge_cov.to_bits()
        );
        assert_eq!(restored.export_state(), state);
    }

    #[test]
    fn v1_and_v2_sections_compose_on_one_reader() {
        let sampler = loaded_sampler();
        let mut est = InStreamEstimator::new(6, TriangleWeight::default(), 9);
        est.process_stream((0..30u32).map(|i| Edge::new(i, i + 1)));
        let mut buf = Vec::new();
        save(&sampler, &mut buf).unwrap();
        save_estimator(&est, &mut buf).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let s1 = load_section(&mut r).unwrap();
        let s2 = load_section(&mut r).unwrap();
        assert!(s1.in_stream.is_none());
        let state = s2.in_stream.as_ref().expect("v2 section carries state");
        assert_eq!(state.per_edge.len(), s2.records.len());
    }

    #[test]
    fn v2_rejects_malformed_sections() {
        // Truncated acc header.
        let bad_acc = "gps-sample v2\ncapacity 4\narrivals 9\nthreshold 1.5\nacc 1 2 3\nedges 0\n";
        assert!(matches!(
            load(bad_acc.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // Non-finite accumulator.
        let nan_acc =
            "gps-sample v2\ncapacity 4\narrivals 9\nthreshold 1.5\nacc 1 2 3 4 NaN\nedges 0\n";
        assert!(matches!(
            load(nan_acc.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // Record missing the covariance columns.
        let short_record = "gps-sample v2\ncapacity 4\narrivals 9\nthreshold 1.5\n\
             acc 0 0 0 0 0\nedges 1\n0 1 1.0 2.0\n";
        assert!(matches!(
            load(short_record.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // Missing acc header entirely (v1 body under a v2 magic).
        let no_acc = "gps-sample v2\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 0\n";
        assert!(matches!(
            load(no_acc.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
    }

    #[test]
    fn loaded_sections_never_restore_to_a_corrupt_sampler() {
        // Values that parse as floats but would make `into_sampler` panic
        // (non-positive or non-finite weights/priorities, bad thresholds)
        // must be rejected at load time.
        for body in [
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\n0 1 -1.0 2.0\n",
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\n0 1 1.0 0.0\n",
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold 1.5\nedges 1\n0 1 inf 2.0\n",
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold NaN\nedges 0\n",
            "gps-sample v1\ncapacity 4\narrivals 9\nthreshold -2.0\nedges 0\n",
        ] {
            assert!(
                matches!(load(body.as_bytes()), Err(PersistError::Parse { .. })),
                "accepted: {body}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let sampler = loaded_sampler();
        let path = std::env::temp_dir().join("gps-persist-test.sample");
        save_file(&sampler, &path).unwrap();
        let saved = load_file(&path).unwrap();
        assert_eq!(saved.records.len(), sampler.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::CountMismatch {
            declared: 5,
            found: 3,
        };
        assert!(format!("{e}").contains("5"));
        let e = PersistError::BadHeader("x".into());
        assert!(format!("{e}").contains("gps-sample"));
    }
}
