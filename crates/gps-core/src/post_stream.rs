//! Post-stream estimation — paper Algorithm 2 (`GPSEstimate`).
//!
//! Computes unbiased triangle/wedge count estimates, their unbiased
//! variances, the triangle–wedge covariance, and the (delta-method)
//! clustering coefficient — *purely from the reservoir*, at any point in the
//! stream. This supports the paper's "reference sample" use case:
//! retrospective graph queries against a stored sample.
//!
//! The computation is local per sampled edge `k = (v1, v2)` (paper §4,
//! "Efficiency"): every triangle and wedge containing `k` is enumerated from
//! `k`'s sampled neighborhoods, and each subgraph's Horvitz–Thompson product
//! uses the *current* threshold `z*`. Per-edge accumulators (`c△`, `cΛ` in
//! the pseudocode) turn the pairwise covariance sums into a single pass.
//! Each triangle is seen from its 3 edges and each wedge from its 2, giving
//! the 1/3 and 1/2 normalizations of Eq. (13)/(14). Total cost is
//! `O(Σ_k min(deĝ(v1), deĝ(v2)) + deĝ(v1) + deĝ(v2)) = O(a(K̂)·m) ≤ O(m^{3/2})`,
//! and the per-edge independence makes the pass embarrassingly parallel
//! ([`estimate_with_threads`]).

use crate::estimate::{Estimate, TriadEstimates};
use crate::reservoir::{prob, GpsSampler, SampleView};
use crate::slab::EdgeRecord;
use crate::weights::EdgeWeight;

/// Per-edge partial sums (one edge's share of Eq. 13/14 and the covariance).
#[derive(Clone, Copy, Debug, Default)]
struct Contribution {
    n_tri: f64,
    v_tri: f64,
    c_tri_pairs: f64,
    n_wedge: f64,
    v_wedge: f64,
    c_wedge_pairs: f64,
    tri_wedge_cov: f64,
}

impl Contribution {
    fn merge(&mut self, other: &Contribution) {
        self.n_tri += other.n_tri;
        self.v_tri += other.v_tri;
        self.c_tri_pairs += other.c_tri_pairs;
        self.n_wedge += other.n_wedge;
        self.v_wedge += other.v_wedge;
        self.c_wedge_pairs += other.c_wedge_pairs;
        self.tri_wedge_cov += other.tri_wedge_cov;
    }

    fn into_estimates(self) -> TriadEstimates {
        let triangles = Estimate {
            value: self.n_tri / 3.0,
            variance: self.v_tri / 3.0 + self.c_tri_pairs,
        };
        let wedges = Estimate {
            value: self.n_wedge / 2.0,
            variance: self.v_wedge / 2.0 + self.c_wedge_pairs,
        };
        TriadEstimates::from_parts(triangles, wedges, self.tri_wedge_cov)
    }
}

/// One sampled edge's contribution (paper Alg 2 lines 3–30).
///
/// The triangle and wedge enumerations share one fused adjacency walk
/// ([`SampleView::for_each_completion_slots`]), so each endpoint of `k` is
/// resolved once per contribution instead of once per phase. The two
/// callbacks write disjoint local accumulators (merged below) because they
/// are borrowed simultaneously by the fused walk.
fn edge_contribution(view: &SampleView<'_>, record: &EdgeRecord) -> Contribution {
    let (v1, v2) = record.edge.endpoints();
    let z = view.threshold();
    let qi = 1.0 / prob(record.weight, z);
    // Running sums over subgraphs at this edge, used to accumulate the
    // pairwise covariance products incrementally (c△ / cΛ in Alg 2).
    let mut c_tri = 0.0;
    let mut c_wedge = 0.0;
    let (mut n_tri, mut v_tri, mut c_tri_pairs) = (0.0, 0.0, 0.0);
    let (mut n_wedge, mut v_wedge, mut c_wedge_pairs) = (0.0, 0.0, 0.0);

    view.for_each_completion_slots(
        v1,
        v2,
        // Triangles (k1, k2, k) closed by k: sampled common neighbors.
        |_, s1, s2| {
            let q1 = prob(view.record(s1).weight, z);
            let q2 = prob(view.record(s2).weight, z);
            let inv12 = 1.0 / (q1 * q2);
            let inv = qi * inv12;
            n_tri += inv;
            v_tri += inv * (inv - 1.0);
            c_tri_pairs += c_tri * inv12;
            c_tri += inv12;
        },
        // Wedges (k1, k) sharing endpoint v1, then (k2, k) sharing v2 —
        // the walk excludes k itself. The pairwise accumulator spans both
        // arms: any two wedges containing k intersect in exactly {k},
        // regardless of which endpoint they pivot on.
        |slot| {
            let q1 = prob(view.record(slot).weight, z);
            let inv1 = 1.0 / q1;
            let inv = qi * inv1;
            n_wedge += inv;
            v_wedge += inv * (inv - 1.0);
            c_wedge_pairs += c_wedge * inv1;
            c_wedge += inv1;
        },
    );

    // Close the covariance accumulators (Alg 2 lines 29–30) and the
    // triangle–wedge cross term feeding the clustering CI (Eq. 12 restricted
    // to single-edge overlaps, matching the per-edge accumulators of Alg 3).
    let factor = qi * (qi - 1.0);
    Contribution {
        n_tri,
        v_tri,
        c_tri_pairs: c_tri_pairs * 2.0 * factor,
        n_wedge,
        v_wedge,
        c_wedge_pairs: c_wedge_pairs * 2.0 * factor,
        tri_wedge_cov: c_tri * c_wedge * factor,
    }
}

/// Runs Algorithm 2 serially over the current sample.
pub fn estimate<W: EdgeWeight>(sampler: &GpsSampler<W>) -> TriadEstimates {
    let view = sampler.view();
    let mut total = Contribution::default();
    for (_, record) in view.records() {
        total.merge(&edge_contribution(&view, record));
    }
    total.into_estimates()
}

/// Runs Algorithm 2 with `threads` workers over slot-range chunks
/// (the paper notes Alg 2 "already has abundant parallelism").
///
/// Results are identical to [`estimate`] up to floating-point summation
/// order. Falls back to the serial path for `threads <= 1` or tiny samples.
pub fn estimate_with_threads<W: EdgeWeight>(
    sampler: &GpsSampler<W>,
    threads: usize,
) -> TriadEstimates {
    let view = sampler.view();
    let upper = view.slab().slot_upper_bound();
    if threads <= 1 || upper < 1024 {
        return estimate(sampler);
    }
    let chunk = upper.div_ceil(threads);
    let mut partials = vec![Contribution::default(); threads];
    std::thread::scope(|scope| {
        for (i, partial) in partials.iter_mut().enumerate() {
            let view = sampler.view();
            scope.spawn(move || {
                let lo = i * chunk;
                let hi = ((i + 1) * chunk).min(upper);
                let mut acc = Contribution::default();
                for slot in lo..hi {
                    if let Some(record) = view.slab().get_if_live(slot as u32) {
                        acc.merge(&edge_contribution(&view, record));
                    }
                }
                *partial = acc;
            });
        }
    });
    let mut total = Contribution::default();
    for p in &partials {
        total.merge(p);
    }
    total.into_estimates()
}

/// Point estimates only (no variance bookkeeping) — used by tight loops
/// that need just `N̂(△)`, `N̂(Λ)` (e.g. per-checkpoint tracking).
pub fn estimate_counts<W: EdgeWeight>(sampler: &GpsSampler<W>) -> (f64, f64) {
    let view = sampler.view();
    let z = view.threshold();
    let (mut tri, mut wedge) = (0.0f64, 0.0f64);
    for (_, record) in view.records() {
        let (v1, v2) = record.edge.endpoints();
        let qi = 1.0 / prob(record.weight, z);
        let (mut tri_k, mut wedge_k) = (0.0, 0.0);
        view.for_each_completion_slots(
            v1,
            v2,
            |_, s1, s2| {
                let q1 = prob(view.record(s1).weight, z);
                let q2 = prob(view.record(s2).weight, z);
                tri_k += qi / (q1 * q2);
            },
            |slot| {
                wedge_k += qi / prob(view.record(slot).weight, z);
            },
        );
        tri += tri_k;
        wedge += wedge_k;
    }
    (tri / 3.0, wedge / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{TriangleWeight, UniformWeight};
    use gps_graph::types::Edge;

    fn k4_edges() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn full_retention_is_exact_with_zero_variance() {
        // Capacity ≥ stream: z* = 0, every p = 1, estimates are exact and
        // every variance term carries a (1/p - 1) = 0 factor.
        let mut s = GpsSampler::new(64, TriangleWeight::default(), 5);
        s.process_stream(k4_edges());
        let est = estimate(&s);
        assert!((est.triangles.value - 4.0).abs() < 1e-12);
        assert!((est.wedges.value - 12.0).abs() < 1e-12);
        assert_eq!(est.triangles.variance, 0.0);
        assert_eq!(est.wedges.variance, 0.0);
        assert_eq!(est.tri_wedge_cov, 0.0);
        assert!((est.clustering.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_only_matches_full_path() {
        let mut s = GpsSampler::new(32, TriangleWeight::default(), 8);
        // Two overlapping triangles plus a tail.
        s.process_stream([
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(2, 3),
            Edge::new(0, 3),
            Edge::new(3, 4),
        ]);
        let est = estimate(&s);
        let (t, w) = estimate_counts(&s);
        assert!((est.triangles.value - t).abs() < 1e-12);
        assert!((est.wedges.value - w).abs() < 1e-12);
        assert!((t - 2.0).abs() < 1e-12);
        // Wedges: deg = [3, 2, 3, 3, 1] → 3+1+3+3+0 = 10.
        assert!((w - 10.0).abs() < 1e-12);
    }

    #[test]
    fn variances_are_nonnegative_under_eviction() {
        // Small capacity forces evictions and z* > 0.
        let mut s = GpsSampler::new(12, TriangleWeight::default(), 3);
        let mut edges = vec![];
        for base in 0..12u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        s.process_stream(edges);
        assert!(s.threshold() > 0.0, "eviction must have occurred");
        let est = estimate(&s);
        assert!(est.triangles.variance >= 0.0);
        assert!(est.wedges.variance >= 0.0);
        assert!(est.tri_wedge_cov >= 0.0, "Theorem 3(ii): covariance ≥ 0");
        assert!(est.triangles.value >= 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut s = GpsSampler::new(2000, TriangleWeight::default(), 17);
        let mut edges = vec![];
        for base in (0..3000u32).step_by(3) {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base + 1, base + 2));
            edges.push(Edge::new(base, base + 2));
        }
        s.process_stream(edges);
        let serial = estimate(&s);
        let parallel = estimate_with_threads(&s, 4);
        assert!((serial.triangles.value - parallel.triangles.value).abs() < 1e-6);
        assert!((serial.wedges.value - parallel.wedges.value).abs() < 1e-6);
        assert!(
            (serial.triangles.variance - parallel.triangles.variance).abs()
                < 1e-6 * (1.0 + serial.triangles.variance)
        );
    }

    #[test]
    fn empty_sampler_estimates_zero() {
        let s = GpsSampler::new(8, UniformWeight, 0);
        let est = estimate(&s);
        assert_eq!(est.triangles.value, 0.0);
        assert_eq!(est.wedges.value, 0.0);
        assert_eq!(est.clustering.value, 0.0);
    }

    #[test]
    fn single_edge_has_no_subgraphs() {
        let mut s = GpsSampler::new(8, UniformWeight, 0);
        s.process(Edge::new(0, 1));
        let est = estimate(&s);
        assert_eq!(est.triangles.value, 0.0);
        assert_eq!(est.wedges.value, 0.0);
    }
}
