//! The Graph Priority Sampler — paper Algorithm 1, `GPS(m)`.
//!
//! [`GpsSampler`] maintains a fixed-capacity reservoir `K̂` of edges over a
//! one-pass stream. Each arriving edge `k` receives:
//!
//! 1. a weight `w(k) = W(k, K̂)` from a pluggable [`EdgeWeight`] function,
//!    computed against the sample *as the edge finds it* (Theorem 1's
//!    measurability condition);
//! 2. an independent uniform `u(k) ∈ (0, 1]`;
//! 3. the priority `r(k) = w(k)/u(k)`.
//!
//! The reservoir keeps the `m` highest-priority edges seen so far; the
//! threshold `z*` tracks the maximum priority ever discarded. At any time,
//! the conditional inclusion probability of a sampled edge is
//! `p(k) = min{1, w(k)/z*}` (procedure `GPSNormalize`), and `1/p(k)` is its
//! Horvitz–Thompson edge estimator.
//!
//! Data structures follow the paper §3.2: a binary min-heap over priorities
//! (O(1) eviction candidate, O(log m) updates) plus a hash adjacency over
//! the sampled edges so that topology-dependent weights cost
//! `O(min(deĝ(v1), deĝ(v2)))`, and total space is `O(|V̂| + m)`.

use crate::heap::{HeapEntry, MinHeap};
use crate::slab::{EdgeRecord, Slab, SlotId};
use crate::weights::EdgeWeight;
use gps_graph::types::{Edge, NodeId};
use gps_graph::{AdjacencyBackend, BackendKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of processing one stream arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// The edge is already in the reservoir; the arrival was ignored.
    /// (The paper's model assumes unique edges; duplicates in real streams
    /// are skipped so estimators stay unbiased for the simplified graph.)
    Duplicate,
    /// Inserted while the reservoir had spare capacity.
    Inserted {
        /// Weight assigned to the arriving edge.
        weight: f64,
    },
    /// Inserted; the previous lowest-priority edge was evicted.
    Replaced {
        /// Weight assigned to the arriving edge.
        weight: f64,
        /// The evicted edge.
        evicted: Edge,
    },
    /// The arriving edge itself had the lowest priority among the `m + 1`
    /// candidates and was discarded.
    Rejected {
        /// Weight assigned to the arriving edge.
        weight: f64,
    },
}

/// A sampled edge as exposed by [`GpsSampler::edges`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledEdge {
    /// The edge.
    pub edge: Edge,
    /// Its sampling weight `w(k)` (assigned at arrival).
    pub weight: f64,
    /// Its priority `r(k) = w(k)/u(k)`.
    pub priority: f64,
    /// Its current HT inclusion probability `p(k) = min{1, w(k)/z*}`.
    pub inclusion_prob: f64,
}

/// Read-only view of the sample, passed to weight functions and estimators.
pub struct SampleView<'a> {
    slab: &'a Slab,
    adj: &'a AdjacencyBackend<SlotId>,
    threshold: f64,
}

impl<'a> SampleView<'a> {
    /// Number of sampled edges `|K̂|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.slab.len()
    }

    /// Number of nodes touched by sampled edges `|V̂|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.num_nodes()
    }

    /// Current threshold `z*` (0 until the first discard).
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Sampled degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.degree(node)
    }

    /// Whether `edge` is currently sampled.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        self.adj.contains(edge)
    }

    /// Weight of a sampled edge.
    #[inline]
    pub fn weight_of(&self, edge: Edge) -> Option<f64> {
        self.adj.get(edge).map(|slot| self.slab.get(slot).weight)
    }

    /// Current HT inclusion probability `p(k) = min{1, w(k)/z*}` of a
    /// sampled edge (`1` while `z* = 0`, i.e. before any discard).
    #[inline]
    pub fn inclusion_prob_of(&self, edge: Edge) -> Option<f64> {
        self.adj.get(edge).map(|slot| self.prob_of_slot(slot))
    }

    /// Number of sampled triangles the (not necessarily sampled) edge
    /// `(u, v)` closes: `|Γ̂(u) ∩ Γ̂(v)|`.
    #[inline]
    pub fn triangles_closed_by(&self, edge: Edge) -> usize {
        self.adj.common_neighbor_count(edge.u(), edge.v())
    }

    /// Number of sampled edges adjacent to `edge` — the number of wedges it
    /// closes. If `edge` is itself sampled it is not counted.
    #[inline]
    pub fn wedges_closed_by(&self, edge: Edge) -> usize {
        let (deg_sum, present) = self.adj.wedge_closure_counts(edge.u(), edge.v());
        deg_sum - if present { 2 } else { 0 }
    }

    /// Fused `(triangles, wedges)` closed by `edge` — one endpoint
    /// resolution instead of the three separate
    /// [`SampleView::triangles_closed_by`] + [`SampleView::wedges_closed_by`]
    /// walks; the inner loop of [`crate::weights::TriadWeight`].
    #[inline]
    pub fn triad_closed_by(&self, edge: Edge) -> (usize, usize) {
        let (triangles, deg_sum, present) = self.adj.triad_counts(edge.u(), edge.v());
        (triangles, deg_sum - if present { 2 } else { 0 })
    }

    /// Raw fused topology query `(triangles, degree-sum, edge_present)` —
    /// the single-resolution primitive behind
    /// [`crate::weights::EdgeWeight::weight_and_presence`].
    #[inline]
    pub fn triad_counts_raw(&self, edge: Edge) -> (usize, usize, bool) {
        self.adj.triad_counts(edge.u(), edge.v())
    }

    /// Raw fused `(triangles, edge_present)` query (triangle weights).
    #[inline]
    pub fn triangle_closure_raw(&self, edge: Edge) -> (usize, bool) {
        self.adj.triangle_closure_counts(edge.u(), edge.v())
    }

    /// Raw fused `(degree-sum, edge_present)` query (wedge weights).
    #[inline]
    pub fn wedge_closure_raw(&self, edge: Edge) -> (usize, bool) {
        self.adj.wedge_closure_counts(edge.u(), edge.v())
    }

    /// HT inclusion probability for a slot.
    #[inline]
    pub(crate) fn prob_of_slot(&self, slot: SlotId) -> f64 {
        prob(self.slab.get(slot).weight, self.threshold)
    }

    /// Calls `f(w, slot_uw, slot_vw)` for each sampled common neighbor `w`
    /// of the endpoints of `(u, v)` — i.e. per sampled triangle the edge
    /// closes.
    #[inline]
    pub(crate) fn for_each_common_slot<F: FnMut(NodeId, SlotId, SlotId)>(
        &self,
        u: NodeId,
        v: NodeId,
        f: F,
    ) {
        self.adj.for_each_common_neighbor(u, v, f);
    }

    /// Fused completion walk (the estimator inner loop of Algorithms 2/3):
    /// one endpoint resolution answers both the triangle enumeration —
    /// `tri(w, slot_uw, slot_vw)` per sampled common neighbor, as
    /// [`SampleView::for_each_common_slot`] — and the wedge enumeration —
    /// `wedge(slot)` per sampled edge incident to `u` excluding `(u, v)`
    /// itself, then per sampled edge incident to `v` likewise, in each
    /// node's incident-list order (it subsumes the separate incident walks
    /// the estimators performed before the fusion).
    #[inline]
    pub(crate) fn for_each_completion_slots<FT, FW>(&self, u: NodeId, v: NodeId, tri: FT, wedge: FW)
    where
        FT: FnMut(NodeId, SlotId, SlotId),
        FW: FnMut(SlotId),
    {
        self.adj.for_each_completion(u, v, tri, wedge);
    }

    /// Iterates the sampled edges themselves — for weight functions that
    /// scan the reservoir (e.g. the space-lean O(m)-rescan alternative the
    /// paper discusses in §3.2 S4).
    pub fn sampled_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.slab.iter().map(|(_, r)| r.edge)
    }

    /// Calls `f(w)` for each sampled common neighbor `w` of `u` and `v` —
    /// i.e. per sampled triangle an edge `(u, v)` would close. Public
    /// counterpart of the estimators' slot-level iteration, for custom
    /// weight functions and motif detectors.
    pub fn for_each_common_sampled_neighbor<F: FnMut(NodeId)>(
        &self,
        u: NodeId,
        v: NodeId,
        mut f: F,
    ) {
        self.adj.for_each_common_neighbor(u, v, |w, _, _| f(w));
    }

    /// Direct record access by slot (estimator internals).
    #[inline]
    pub(crate) fn record(&self, slot: SlotId) -> &EdgeRecord {
        self.slab.get(slot)
    }

    /// Iterates `(slot, record)` pairs of all sampled edges.
    pub(crate) fn records(&self) -> impl Iterator<Item = (SlotId, &EdgeRecord)> + '_ {
        self.slab.iter()
    }

    /// Underlying slab (parallel estimator chunking).
    #[inline]
    pub(crate) fn slab(&self) -> &Slab {
        self.slab
    }
}

/// Inclusion probability `min{1, w/z*}`, with `p = 1` while `z* = 0`.
#[inline]
pub(crate) fn prob(weight: f64, threshold: f64) -> f64 {
    if threshold <= 0.0 {
        1.0
    } else {
        (weight / threshold).min(1.0)
    }
}

/// The GPS(m) sampler (paper Algorithm 1).
pub struct GpsSampler<W> {
    capacity: usize,
    weight_fn: W,
    slab: Slab,
    heap: MinHeap,
    adj: AdjacencyBackend<SlotId>,
    z_star: f64,
    rng: SmallRng,
    arrivals: u64,
    duplicates: u64,
    inserts: u64,
    evictions: u64,
    rejections: u64,
}

/// Always-on sampler counters (plain `u64` fields bumped on the ingest
/// path — cheap enough to never gate). Harvested by the engine layer into
/// `gps-telemetry` registries; every field is a pure function of seed +
/// stream, so the derived metrics are stable-class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Total arrivals processed (stream position `t`).
    pub arrivals: u64,
    /// Arrivals skipped as duplicates of sampled edges.
    pub duplicates: u64,
    /// Arrivals admitted to the reservoir (fill inserts + replacements).
    pub inserts: u64,
    /// Sampled edges discarded to make room for a higher priority.
    pub evictions: u64,
    /// Arrivals discarded on arrival (priority at or below the minimum).
    pub rejections: u64,
    /// Lifetime adjacency-pool spill transitions (see
    /// `gps_graph::CompactAdjacency::spill_count`).
    pub slab_spills: u64,
}

impl<W: EdgeWeight> GpsSampler<W> {
    /// Creates a sampler with reservoir capacity `m`, a weight function and
    /// a deterministic RNG seed, on the default compact adjacency backend.
    ///
    /// ```
    /// use gps_core::{GpsSampler, TriangleWeight};
    /// use gps_graph::{BackendKind, Edge};
    ///
    /// let mut sampler = GpsSampler::new(100, TriangleWeight::default(), 42);
    /// sampler.process_stream([Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
    /// assert_eq!(sampler.len(), 3);
    /// assert_eq!(sampler.backend(), BackendKind::Compact);
    /// // Capacity exceeds the stream, so nothing was discarded and every
    /// // sampled edge still has inclusion probability 1.
    /// assert_eq!(sampler.inclusion_prob(Edge::new(0, 2)), Some(1.0));
    /// ```
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, weight_fn: W, seed: u64) -> Self {
        Self::with_backend(capacity, weight_fn, seed, BackendKind::Compact)
    }

    /// Creates a sampler on an explicit adjacency backend.
    ///
    /// Given identical arguments otherwise, both backends produce the
    /// *bit-identical* reservoir, threshold and RNG stream — the sampler
    /// consumes one uniform draw per non-duplicate arrival and weight
    /// functions observe only topology counts, which the backends agree on.
    /// [`BackendKind::HashMap`] exists for differential tests and for
    /// measuring the compact backend's speedup (`bench_baseline`).
    ///
    /// ```
    /// use gps_core::{GpsSampler, TriangleWeight};
    /// use gps_graph::{BackendKind, Edge};
    ///
    /// let stream: Vec<Edge> = (0..200).map(|i| Edge::new(i, i + 1)).collect();
    /// let mut compact =
    ///     GpsSampler::with_backend(16, TriangleWeight::default(), 7, BackendKind::Compact);
    /// let mut hashmap =
    ///     GpsSampler::with_backend(16, TriangleWeight::default(), 7, BackendKind::HashMap);
    /// compact.process_stream(stream.iter().copied());
    /// hashmap.process_stream(stream.iter().copied());
    /// assert_eq!(compact.threshold(), hashmap.threshold());
    /// let mut a: Vec<Edge> = compact.edges().map(|s| s.edge).collect();
    /// let mut b: Vec<Edge> = hashmap.edges().map(|s| s.edge).collect();
    /// a.sort();
    /// b.sort();
    /// assert_eq!(a, b);
    /// ```
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_backend(capacity: usize, weight_fn: W, seed: u64, backend: BackendKind) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        GpsSampler {
            capacity,
            weight_fn,
            slab: Slab::with_capacity(capacity + 1),
            heap: MinHeap::with_capacity(capacity + 1),
            adj: Self::sized_adjacency(backend, capacity),
            z_star: 0.0,
            rng: SmallRng::seed_from_u64(seed),
            arrivals: 0,
            duplicates: 0,
            inserts: 0,
            evictions: 0,
            rejections: 0,
        }
    }

    /// Adjacency pre-sized like the slab and heap: the reservoir holds at
    /// most `capacity + 1` edges at once (the provisional insert), hence at
    /// most `2 * (capacity + 1)` incident nodes — sizing for that up front
    /// kills rehash churn during reservoir fill.
    fn sized_adjacency(backend: BackendKind, capacity: usize) -> AdjacencyBackend<SlotId> {
        AdjacencyBackend::with_capacity(backend, 2 * (capacity + 1), capacity + 1)
    }

    /// Restores a sampler from a previously saved sample state (see
    /// `gps_core::persist`): the sampled edges with their original weights
    /// and priorities, plus the threshold `z*` and the stream position.
    ///
    /// Post-stream estimation on the restored sampler is *identical* to
    /// estimation on the original. The RNG restarts from `seed`, so if the
    /// restored sampler keeps consuming the stream, its future `u(k)` draws
    /// are fresh — statistically equivalent (they are IID) but not
    /// bit-identical to the original process continuing.
    ///
    /// # Panics
    /// Panics if `capacity == 0`, more than `capacity` edges are supplied,
    /// a duplicate edge is supplied, or a weight/priority is not finite and
    /// positive.
    pub fn restore<I>(
        capacity: usize,
        weight_fn: W,
        seed: u64,
        threshold: f64,
        arrivals: u64,
        records: I,
    ) -> Self
    where
        I: IntoIterator<Item = (Edge, f64, f64)>,
    {
        Self::restore_with_backend(
            capacity,
            weight_fn,
            seed,
            threshold,
            arrivals,
            records,
            BackendKind::Compact,
        )
    }

    /// [`GpsSampler::restore`] onto an explicit adjacency backend — needed
    /// when resuming a checkpointed baseline-arm (`HashMap`) run so
    /// before/after comparisons keep measuring the backend they started on.
    ///
    /// # Panics
    /// Same conditions as [`GpsSampler::restore`].
    pub fn restore_with_backend<I>(
        capacity: usize,
        weight_fn: W,
        seed: u64,
        threshold: f64,
        arrivals: u64,
        records: I,
        backend: BackendKind,
    ) -> Self
    where
        I: IntoIterator<Item = (Edge, f64, f64)>,
    {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "invalid threshold {threshold}"
        );
        let mut sampler = GpsSampler {
            capacity,
            weight_fn,
            slab: Slab::with_capacity(capacity + 1),
            heap: MinHeap::with_capacity(capacity + 1),
            adj: Self::sized_adjacency(backend, capacity),
            z_star: threshold,
            rng: SmallRng::seed_from_u64(seed),
            arrivals,
            duplicates: 0,
            inserts: 0,
            evictions: 0,
            rejections: 0,
        };
        for (edge, weight, priority) in records {
            assert!(
                weight.is_finite() && weight > 0.0 && priority > 0.0,
                "invalid record for {edge}: weight {weight}, priority {priority}"
            );
            assert!(
                !sampler.adj.contains(edge),
                "duplicate edge {edge} in restored sample"
            );
            let slot = sampler.slab.insert(EdgeRecord::new(edge, weight, priority));
            let (_, hints) = sampler.adj.insert_with_hints(edge, slot);
            sampler.slab.get_mut(slot).hints = hints;
            sampler.heap.push(HeapEntry { priority, slot });
            assert!(
                sampler.slab.len() <= capacity,
                "more edges than capacity {capacity}"
            );
        }
        sampler
    }

    /// Processes one stream arrival (procedure `GPSUpdate`).
    pub fn process(&mut self, edge: Edge) -> Arrival {
        self.arrivals += 1;
        // Weight against the sample as the edge finds it (before the
        // provisional insert), per Theorem 1's measurability requirement.
        // The fused call also answers the duplicate check, reusing the
        // endpoint resolutions the weight walk performs anyway; a
        // duplicate's weight is discarded and no uniform draw is consumed,
        // exactly as if the check had run first.
        let view = SampleView {
            slab: &self.slab,
            adj: &self.adj,
            threshold: self.z_star,
        };
        let (weight, duplicate) = self.weight_fn.weight_and_presence(edge, &view);
        if duplicate {
            self.duplicates += 1;
            return Arrival::Duplicate;
        }
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight function returned invalid weight {weight} for {edge}"
        );
        // u ∈ (0, 1]: rand yields [0, 1), so 1 - x is in (0, 1].
        let u = 1.0 - self.rng.random::<f64>();
        let priority = weight / u;

        if self.slab.len() < self.capacity {
            let slot = self.slab.insert(EdgeRecord::new(edge, weight, priority));
            let (_, hints) = self.adj.insert_with_hints(edge, slot);
            self.slab.get_mut(slot).hints = hints;
            self.heap.push(HeapEntry { priority, slot });
            self.inserts += 1;
            return Arrival::Inserted { weight };
        }

        // Reservoir full: of the m+1 candidates, discard the lowest
        // priority and raise the threshold to it (Alg 1 lines 11–14).
        let current_min = self.heap.peek().expect("full reservoir has a minimum");
        if priority <= current_min.priority {
            self.z_star = self.z_star.max(priority);
            self.rejections += 1;
            return Arrival::Rejected { weight };
        }
        let slot = self.slab.insert(EdgeRecord::new(edge, weight, priority));
        let (_, hints) = self.adj.insert_with_hints(edge, slot);
        self.slab.get_mut(slot).hints = hints;
        let evicted_entry = self
            .heap
            .replace_min(HeapEntry { priority, slot })
            .expect("full reservoir has a minimum");
        self.z_star = self.z_star.max(evicted_entry.priority);
        let evicted_record = self.slab.remove(evicted_entry.slot);
        self.adj
            .remove_hinted(evicted_record.edge, evicted_record.hints);
        self.inserts += 1;
        self.evictions += 1;
        Arrival::Replaced {
            weight,
            evicted: evicted_record.edge,
        }
    }

    /// Feeds every edge of an iterator through [`GpsSampler::process`].
    pub fn process_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.process(e);
        }
    }

    /// Reservoir capacity `m`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current sample size `|K̂|` (equal to `m` once the stream has produced
    /// at least `m` distinct edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True if the sample is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Current threshold `z*`: the `(m+1)`-st highest priority seen, or 0 if
    /// nothing has been discarded yet.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.z_star
    }

    /// Total arrivals processed (stream position `t`).
    #[inline]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Arrivals skipped as duplicates of sampled edges.
    #[inline]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Always-on ingest counters (see [`SamplerStats`]). Counter fields
    /// restart from zero on [`GpsSampler::restore`] (only `arrivals`
    /// carries the checkpointed stream position), so consumers harvesting
    /// across restarts should track deltas per sampler instance.
    #[inline]
    pub fn stats(&self) -> SamplerStats {
        SamplerStats {
            arrivals: self.arrivals,
            duplicates: self.duplicates,
            inserts: self.inserts,
            evictions: self.evictions,
            rejections: self.rejections,
            slab_spills: self.adj.spill_count(),
        }
    }

    /// Read-only sample view (for estimators and weight functions).
    #[inline]
    pub fn view(&self) -> SampleView<'_> {
        SampleView {
            slab: &self.slab,
            adj: &self.adj,
            threshold: self.z_star,
        }
    }

    /// Whether `edge` is currently sampled.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        self.adj.contains(edge)
    }

    /// Current HT inclusion probability of a sampled edge (procedure
    /// `GPSNormalize`, paper Alg 1 lines 15–17); `None` if not sampled.
    pub fn inclusion_prob(&self, edge: Edge) -> Option<f64> {
        self.adj
            .get(edge)
            .map(|slot| prob(self.slab.get(slot).weight, self.z_star))
    }

    /// Iterates the sampled edges with their weights, priorities and current
    /// inclusion probabilities.
    pub fn edges(&self) -> impl Iterator<Item = SampledEdge> + '_ {
        self.slab.iter().map(move |(_, r)| SampledEdge {
            edge: r.edge,
            weight: r.weight,
            priority: r.priority,
            inclusion_prob: prob(r.weight, self.z_star),
        })
    }

    /// Horvitz–Thompson estimator `Ŝ_J = ∏_{i∈J} 1/p(i)` of the subgraph
    /// indicator for an arbitrary edge set `J` (paper Theorem 2): nonzero —
    /// and unbiased for "all of `J` has arrived" — only when every edge of
    /// `J` is in the sample.
    ///
    /// Duplicate edges in `subgraph` are counted once (a subgraph is a set).
    pub fn subgraph_estimate(&self, subgraph: &[Edge]) -> f64 {
        // Motif-sized queries dedup with an allocation-free backward scan;
        // larger edge sets sort instead so the query never goes O(|J|²).
        const SCAN_DEDUP_MAX: usize = 16;
        if subgraph.len() <= SCAN_DEDUP_MAX {
            let mut product = 1.0;
            for (i, &e) in subgraph.iter().enumerate() {
                if subgraph[..i].contains(&e) {
                    continue;
                }
                match self.inclusion_prob(e) {
                    Some(p) => product /= p,
                    None => return 0.0,
                }
            }
            return product;
        }
        let mut edges = subgraph.to_vec();
        edges.sort_unstable();
        edges.dedup();
        let mut product = 1.0;
        for &e in &edges {
            match self.inclusion_prob(e) {
                Some(p) => product /= p,
                None => return 0.0,
            }
        }
        product
    }

    /// Which adjacency backend this sampler runs on.
    #[inline]
    pub fn backend(&self) -> BackendKind {
        self.adj.kind()
    }

    /// In-stream internals: mutable slab plus the pieces needed to walk the
    /// sampled topology while mutating covariance accumulators.
    pub(crate) fn estimator_parts(&mut self) -> (&mut Slab, &AdjacencyBackend<SlotId>, f64) {
        (&mut self.slab, &self.adj, self.z_star)
    }

    /// Read-only slab: in-stream state export walks the per-edge covariance
    /// accumulators in the same slot order as [`GpsSampler::edges`].
    pub(crate) fn slab(&self) -> &Slab {
        &self.slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{TriangleWeight, UniformWeight};

    fn edges_chain(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn fills_then_holds_capacity() {
        let mut s = GpsSampler::new(8, UniformWeight, 3);
        for (i, e) in edges_chain(50).into_iter().enumerate() {
            s.process(e);
            assert!(s.len() <= 8);
            if i < 8 {
                assert_eq!(s.len(), i + 1);
            } else {
                assert_eq!(s.len(), 8, "fixed-size property S1");
            }
        }
        assert_eq!(s.arrivals(), 50);
    }

    #[test]
    fn threshold_is_monotone_and_zero_before_discard() {
        let mut s = GpsSampler::new(4, UniformWeight, 7);
        let mut last = 0.0;
        for (i, e) in edges_chain(100).into_iter().enumerate() {
            s.process(e);
            if i < 4 {
                assert_eq!(s.threshold(), 0.0);
            }
            assert!(s.threshold() >= last, "threshold must be non-decreasing");
            last = s.threshold();
        }
        assert!(last > 0.0);
    }

    #[test]
    fn inclusion_probs_lie_in_unit_interval() {
        let mut s = GpsSampler::new(16, TriangleWeight::default(), 11);
        s.process_stream(gps_stream_like(200));
        for se in s.edges() {
            assert!(se.inclusion_prob > 0.0 && se.inclusion_prob <= 1.0);
            assert_eq!(s.inclusion_prob(se.edge), Some(se.inclusion_prob));
        }
        assert_eq!(s.inclusion_prob(Edge::new(9999, 10000)), None);
    }

    /// A denser synthetic stream with triangles (clique chunks).
    fn gps_stream_like(n: u32) -> Vec<Edge> {
        let mut edges = vec![];
        for base in (0..n).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        edges
    }

    #[test]
    fn duplicates_are_skipped() {
        let mut s = GpsSampler::new(8, UniformWeight, 5);
        assert!(matches!(
            s.process(Edge::new(1, 2)),
            Arrival::Inserted { .. }
        ));
        assert_eq!(s.process(Edge::new(2, 1)), Arrival::Duplicate);
        assert_eq!(s.len(), 1);
        assert_eq!(s.duplicates(), 1);
    }

    #[test]
    fn same_seed_reproduces_sample_exactly() {
        let stream = gps_stream_like(100);
        let mut a = GpsSampler::new(20, TriangleWeight::default(), 42);
        let mut b = GpsSampler::new(20, TriangleWeight::default(), 42);
        a.process_stream(stream.clone());
        b.process_stream(stream);
        let mut ea: Vec<Edge> = a.edges().map(|s| s.edge).collect();
        let mut eb: Vec<Edge> = b.edges().map(|s| s.edge).collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);
        assert_eq!(a.threshold(), b.threshold());
    }

    #[test]
    fn different_seeds_differ() {
        let stream = gps_stream_like(100);
        let mut a = GpsSampler::new(10, UniformWeight, 1);
        let mut b = GpsSampler::new(10, UniformWeight, 2);
        a.process_stream(stream.clone());
        b.process_stream(stream);
        let ea: std::collections::BTreeSet<Edge> = a.edges().map(|s| s.edge).collect();
        let eb: std::collections::BTreeSet<Edge> = b.edges().map(|s| s.edge).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn full_retention_keeps_probability_one() {
        // Capacity exceeds the stream: z* stays 0, all p = 1, and the
        // subgraph estimator is the exact indicator.
        let mut s = GpsSampler::new(1000, TriangleWeight::default(), 9);
        let tri = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        s.process_stream(tri);
        assert_eq!(s.threshold(), 0.0);
        for e in tri {
            assert_eq!(s.inclusion_prob(e), Some(1.0));
        }
        assert_eq!(s.subgraph_estimate(&tri), 1.0);
        assert_eq!(
            s.subgraph_estimate(&[Edge::new(0, 1), Edge::new(5, 6)]),
            0.0
        );
    }

    #[test]
    fn subgraph_estimate_ignores_duplicate_edges() {
        let mut s = GpsSampler::new(10, UniformWeight, 0);
        s.process(Edge::new(0, 1));
        let dup = [Edge::new(0, 1), Edge::new(1, 0)];
        assert_eq!(s.subgraph_estimate(&dup), 1.0);
    }

    #[test]
    fn subgraph_estimate_dedups_large_queries_via_sort_path() {
        // > 16 edges forces the sort+dedup branch; the answer must match
        // the small-query scan branch on the same logical set.
        let mut s = GpsSampler::new(64, UniformWeight, 0);
        let chain: Vec<Edge> = (0..12u32).map(|i| Edge::new(i, i + 1)).collect();
        s.process_stream(chain.iter().copied());
        // 36 entries, every edge three times in both orientations.
        let mut large: Vec<Edge> = Vec::new();
        for &e in &chain {
            large.push(e);
            large.push(Edge::new(e.v(), e.u()));
            large.push(e);
        }
        assert!(large.len() > 16);
        assert_eq!(s.subgraph_estimate(&large), s.subgraph_estimate(&chain));
        // A large query containing an unsampled edge is still 0.
        large.push(Edge::new(100, 101));
        assert_eq!(s.subgraph_estimate(&large), 0.0);
    }

    #[test]
    fn eviction_reports_the_displaced_edge() {
        let mut s = GpsSampler::new(1, UniformWeight, 13);
        s.process(Edge::new(0, 1));
        // Process arrivals until one replaces (priority coin flips).
        let mut replaced = false;
        for i in 2..100u32 {
            match s.process(Edge::new(0, i)) {
                Arrival::Replaced { evicted, .. } => {
                    assert!(!s.contains(evicted));
                    replaced = true;
                    break;
                }
                Arrival::Rejected { .. } => continue,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(
            replaced,
            "100 arrivals at capacity 1 should replace at least once"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = GpsSampler::new(0, UniformWeight, 0);
    }

    #[test]
    fn view_reflects_sampled_topology() {
        let mut s = GpsSampler::new(100, UniformWeight, 3);
        s.process_stream([
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(1, 3),
            Edge::new(3, 4),
        ]);
        let v = s.view();
        assert_eq!(v.num_edges(), 4);
        assert_eq!(v.num_nodes(), 4);
        assert_eq!(v.degree(3), 3);
        assert_eq!(v.triangles_closed_by(Edge::new(1, 4)), 1);
        assert_eq!(v.wedges_closed_by(Edge::new(4, 5)), 1);
        // For an edge already in the sample, adjacency excludes itself:
        // partners are (1,3) at node 1 and (2,3) at node 2.
        assert_eq!(v.wedges_closed_by(Edge::new(1, 2)), 2);
        assert!(v.weight_of(Edge::new(1, 2)).is_some());
        assert_eq!(v.weight_of(Edge::new(7, 8)), None);
    }
}
