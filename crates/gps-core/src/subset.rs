//! Edge subset-sum estimation.
//!
//! Priority sampling was originally designed for estimating "arbitrary
//! subset sums" (Duffield–Lund–Thorup, cited as the basis of GPS); the paper
//! motivates GPS samples as answering queries over "arbitrary graph subsets
//! (i.e., triangles, cliques, stars, subgraph with particular attributes)".
//! This module provides the single-edge case: unbiased estimates of
//! `Σ_{k ∈ K_t : pred(k)} value(k)` from the reservoir, with the
//! Theorem 3(iii) variance estimator. Covariances between distinct single
//! edges vanish (Theorem 3(iv): disjoint edge sets), so the variance is a
//! plain per-edge sum.

use crate::estimate::Estimate;
use crate::reservoir::GpsSampler;
use crate::weights::EdgeWeight;
use gps_graph::types::Edge;

/// Estimates `Σ value(k)` over all streamed edges `k` with the given
/// per-edge value function (return 0 for edges outside the subset).
pub fn edge_total<W: EdgeWeight, F: FnMut(Edge) -> f64>(
    sampler: &GpsSampler<W>,
    mut value: F,
) -> Estimate {
    let mut total = 0.0;
    let mut variance = 0.0;
    for se in sampler.edges() {
        let c = value(se.edge);
        if c == 0.0 {
            continue;
        }
        let inv = 1.0 / se.inclusion_prob;
        total += c * inv;
        // Theorem 3(iii) with J = {k}: V̂ar(Ŝ_k) = Ŝ_k(Ŝ_k − 1).
        variance += c * c * inv * (inv - 1.0);
    }
    Estimate {
        value: total,
        variance,
    }
}

/// Estimates the number of streamed edges satisfying `pred`.
pub fn edge_count<W: EdgeWeight, F: FnMut(Edge) -> bool>(
    sampler: &GpsSampler<W>,
    mut pred: F,
) -> Estimate {
    edge_total(sampler, |e| if pred(e) { 1.0 } else { 0.0 })
}

/// Estimates the total number of streamed edges (sanity check: the
/// Horvitz–Thompson sum of all sampled inverse probabilities).
pub fn stream_edge_count<W: EdgeWeight>(sampler: &GpsSampler<W>) -> Estimate {
    edge_count(sampler, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::UniformWeight;

    #[test]
    fn exact_when_nothing_evicted() {
        let mut s = GpsSampler::new(100, UniformWeight, 1);
        s.process_stream((0..50).map(|i| Edge::new(i, i + 1)));
        let est = stream_edge_count(&s);
        assert!((est.value - 50.0).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn predicate_counts_subset_only() {
        let mut s = GpsSampler::new(100, UniformWeight, 2);
        s.process_stream((0..40).map(|i| Edge::new(i, i + 1)));
        // Edges whose lower endpoint is even: 20 of them.
        let est = edge_count(&s, |e| e.u() % 2 == 0);
        assert!((est.value - 20.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_totals_scale() {
        let mut s = GpsSampler::new(100, UniformWeight, 3);
        s.process_stream((0..10).map(|i| Edge::new(i, i + 1)));
        // value(k) = u-endpoint: 0 + 1 + ... + 9 = 45.
        let est = edge_total(&s, |e| e.u() as f64);
        assert!((est.value - 45.0).abs() < 1e-12);
    }

    #[test]
    fn under_eviction_value_is_positive_with_variance() {
        let mut s = GpsSampler::new(10, UniformWeight, 4);
        s.process_stream((0..200).map(|i| Edge::new(i, i + 1)));
        let est = stream_edge_count(&s);
        assert!(est.value > 0.0);
        assert!(
            est.variance > 0.0,
            "eviction implies p < 1 and positive variance"
        );
    }

    #[test]
    fn unbiased_over_many_seeds() {
        // Mean of the HT count over many independent samples approaches the
        // true stream length (Theorem 2 applied to single edges).
        let true_count = 120.0;
        let mut sum = 0.0;
        let runs = 400;
        for seed in 0..runs {
            let mut s = GpsSampler::new(30, UniformWeight, seed);
            s.process_stream((0..120).map(|i| Edge::new(i, i + 1)));
            sum += stream_edge_count(&s).value;
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - true_count).abs() / true_count < 0.05,
            "HT edge count should be unbiased: mean {mean} vs {true_count}"
        );
    }
}
