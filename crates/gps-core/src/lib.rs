//! # Graph Priority Sampling (GPS)
//!
//! A faithful, production-oriented implementation of *"On Sampling from
//! Massive Graph Streams"* (Ahmed, Duffield, Willke, Rossi — VLDB 2017):
//! order-based reservoir sampling over graph edge streams with
//! topology-dependent weights, plus unbiased subgraph-count estimation in
//! two flavors.
//!
//! ## The pieces
//!
//! - [`reservoir::GpsSampler`] — Algorithm 1, `GPS(m)`: a fixed-size
//!   priority reservoir. Each arriving edge gets weight `W(k, K̂)` (see
//!   [`weights`]), priority `w/u` with uniform `u ∈ (0,1]`, and the `m`
//!   highest-priority edges are retained. The running threshold `z*` turns
//!   sampled edges into Horvitz–Thompson estimators `1/p(k)`,
//!   `p(k) = min{1, w(k)/z*}`.
//! - [`post_stream`] — Algorithm 2: at any time, compute unbiased
//!   triangle/wedge counts, unbiased variances, and a delta-method global
//!   clustering coefficient from the reservoir alone.
//! - [`in_stream::InStreamEstimator`] — Algorithm 3: snapshot
//!   (stopped-Martingale) estimators updated at the instant each subgraph is
//!   completed by an arrival; same sample, lower variance.
//! - [`snapshot::MotifCounter`] — Theorem 4 generalized to arbitrary motifs
//!   (e.g. 4-cliques).
//! - [`subset`] — classic priority-sampling subset sums over edges with
//!   attributes/auxiliary variables.
//!
//! ## Quick start
//!
//! ```
//! use gps_core::{GpsSampler, TriangleWeight, post_stream};
//! use gps_graph::Edge;
//!
//! // Sample a tiny stream with the paper's triangle-targeted weights.
//! let mut sampler = GpsSampler::new(1_000, TriangleWeight::default(), 42);
//! for e in [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2), Edge::new(2, 3)] {
//!     sampler.process(e);
//! }
//! let est = post_stream::estimate(&sampler);
//! assert!((est.triangles.value - 1.0).abs() < 1e-12);
//! let (lb, ub) = est.triangles.ci95();
//! assert!(lb <= 1.0 && 1.0 <= ub);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimate;
pub mod heap;
pub mod in_stream;
pub mod local;
pub mod persist;
pub mod post_stream;
pub mod reservoir;
pub mod slab;
pub mod snapshot;
pub mod subset;
pub mod weights;

pub use estimate::{variance_of_mean, Estimate, TriadEstimates};
pub use in_stream::{InStreamEstimator, InStreamState};
pub use reservoir::{Arrival, GpsSampler, SampleView, SampledEdge, SamplerStats};
pub use snapshot::MotifCounter;
pub use weights::{EdgeWeight, FnWeight, TriadWeight, TriangleWeight, UniformWeight, WedgeWeight};
