//! Slot storage for sampled edges.
//!
//! The reservoir stores per-edge state (edge, weight, priority, and the
//! in-stream covariance accumulators `C̃_k(△)`, `C̃_k(Λ)` of paper
//! Algorithm 3) in a slab: a flat `Vec` with an internal free list, so slots
//! are reused across evictions, ids stay dense `u32`s, and per-arrival work
//! allocates nothing.

use gps_graph::types::Edge;
use gps_graph::EdgeHints;

/// Index of an edge's slot in the slab (also carried in the heap and the
/// adjacency map).
pub type SlotId = u32;

/// Per-edge reservoir record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRecord {
    /// The sampled edge.
    pub edge: Edge,
    /// Sampling weight `w(k) = W(k, K̂)` computed at arrival.
    pub weight: f64,
    /// Priority `r(k) = w(k)/u(k)` computed at arrival.
    pub priority: f64,
    /// In-stream triangle covariance accumulator `C̃_k(△)` (Alg 3).
    pub cov_tri: f64,
    /// In-stream wedge covariance accumulator `C̃_k(Λ)` (Alg 3).
    pub cov_wedge: f64,
    /// Adjacency endpoint hints captured at insertion; hand back to
    /// `remove_hinted` at eviction for hash-free node lookups.
    pub hints: EdgeHints,
}

impl EdgeRecord {
    /// A fresh record with zeroed covariance accumulators (paper Alg 3
    /// line 34).
    pub fn new(edge: Edge, weight: f64, priority: f64) -> Self {
        EdgeRecord {
            edge,
            weight,
            priority,
            cov_tri: 0.0,
            cov_wedge: 0.0,
            hints: EdgeHints::NONE,
        }
    }
}

enum Slot {
    Occupied(EdgeRecord),
    Free { next: Option<SlotId> },
}

/// Slab of [`EdgeRecord`]s with slot reuse.
#[derive(Default)]
pub struct Slab {
    slots: Vec<Slot>,
    free_head: Option<SlotId>,
    live: usize,
}

impl Default for Slot {
    fn default() -> Self {
        Slot::Free { next: None }
    }
}

impl Slab {
    /// Empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty slab with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free_head: None,
            live: 0,
        }
    }

    /// Number of live records.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no records are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores a record, returning its slot.
    pub fn insert(&mut self, record: EdgeRecord) -> SlotId {
        self.live += 1;
        match self.free_head {
            Some(id) => {
                let next = match self.slots[id as usize] {
                    Slot::Free { next } => next,
                    Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next;
                self.slots[id as usize] = Slot::Occupied(record);
                id
            }
            None => {
                let id = self.slots.len() as SlotId;
                self.slots.push(Slot::Occupied(record));
                id
            }
        }
    }

    /// Removes and returns the record in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is free (a logic error in the sampler).
    pub fn remove(&mut self, slot: SlotId) -> EdgeRecord {
        let cell = &mut self.slots[slot as usize];
        match std::mem::replace(
            cell,
            Slot::Free {
                next: self.free_head,
            },
        ) {
            Slot::Occupied(record) => {
                self.free_head = Some(slot);
                self.live -= 1;
                record
            }
            Slot::Free { .. } => panic!("remove() on free slot {slot}"),
        }
    }

    /// Shared access to a live record.
    ///
    /// # Panics
    /// Panics if the slot is free.
    #[inline]
    pub fn get(&self, slot: SlotId) -> &EdgeRecord {
        match &self.slots[slot as usize] {
            Slot::Occupied(r) => r,
            Slot::Free { .. } => panic!("get() on free slot {slot}"),
        }
    }

    /// Mutable access to a live record.
    ///
    /// # Panics
    /// Panics if the slot is free.
    #[inline]
    pub fn get_mut(&mut self, slot: SlotId) -> &mut EdgeRecord {
        match &mut self.slots[slot as usize] {
            Slot::Occupied(r) => r,
            Slot::Free { .. } => panic!("get_mut() on free slot {slot}"),
        }
    }

    /// Iterates `(slot, record)` over live records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &EdgeRecord)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(r) => Some((i as SlotId, r)),
            Slot::Free { .. } => None,
        })
    }

    /// Total slots ever allocated (live + free); the parallel estimator
    /// chunks over this range.
    #[inline]
    pub fn slot_upper_bound(&self) -> usize {
        self.slots.len()
    }

    /// Record in `slot` if live (non-panicking variant for chunked scans).
    #[inline]
    pub fn get_if_live(&self, slot: SlotId) -> Option<&EdgeRecord> {
        match self.slots.get(slot as usize) {
            Some(Slot::Occupied(r)) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(a: u32, b: u32, w: f64) -> EdgeRecord {
        EdgeRecord::new(Edge::new(a, b), w, w / 0.5)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let id = s.insert(rec(1, 2, 3.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id).edge, Edge::new(1, 2));
        assert_eq!(s.get(id).weight, 3.0);
        let r = s.remove(id);
        assert_eq!(r.edge, Edge::new(1, 2));
        assert!(s.is_empty());
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut s = Slab::new();
        let a = s.insert(rec(0, 1, 1.0));
        let b = s.insert(rec(0, 2, 1.0));
        s.remove(a);
        s.remove(b);
        // Free list is LIFO: b then a.
        assert_eq!(s.insert(rec(0, 3, 1.0)), b);
        assert_eq!(s.insert(rec(0, 4, 1.0)), a);
        assert_eq!(s.slot_upper_bound(), 2, "no growth when reusing");
    }

    #[test]
    fn iter_skips_free_slots() {
        let mut s = Slab::new();
        let _a = s.insert(rec(0, 1, 1.0));
        let b = s.insert(rec(0, 2, 2.0));
        let _c = s.insert(rec(0, 3, 3.0));
        s.remove(b);
        let live: Vec<Edge> = s.iter().map(|(_, r)| r.edge).collect();
        assert_eq!(live, vec![Edge::new(0, 1), Edge::new(0, 3)]);
        assert_eq!(s.get_if_live(b), None);
        assert!(s.get_if_live(0).is_some());
        assert_eq!(s.get_if_live(999), None);
    }

    #[test]
    fn mutation_via_get_mut_persists() {
        let mut s = Slab::new();
        let id = s.insert(rec(4, 5, 2.0));
        s.get_mut(id).cov_tri += 1.5;
        s.get_mut(id).cov_wedge += 0.5;
        assert_eq!(s.get(id).cov_tri, 1.5);
        assert_eq!(s.get(id).cov_wedge, 0.5);
    }

    #[test]
    #[should_panic(expected = "free slot")]
    fn get_on_free_slot_panics() {
        let mut s = Slab::new();
        let id = s.insert(rec(1, 2, 1.0));
        s.remove(id);
        let _ = s.get(id);
    }

    #[test]
    #[should_panic(expected = "free slot")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let id = s.insert(rec(1, 2, 1.0));
        s.remove(id);
        s.remove(id);
    }
}
