//! 4-ary min-heap over edge priorities.
//!
//! The paper stores the reservoir in a min-heap keyed by priority
//! `r(k) = w(k)/u(k)` so the lowest-priority edge — the eviction candidate —
//! is found in O(1) and insert/delete cost O(log m) (§3.2, "Implementation
//! and data structure"). This heap stores `(priority, slot)` pairs where
//! `slot` indexes the sampler's slab; it is generic enough to be reused and
//! benchmarked on its own.
//!
//! The heap is 4-ary rather than binary: `replace_min` — one sift-down per
//! eviction — is on the sampler's hot path, and a fan-out of 4 halves the
//! sift depth while each level's four 16-byte children share one cache
//! line, so the sift touches half as many lines for the same comparisons.

/// One heap entry: a priority and the slab slot of the edge carrying it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeapEntry {
    /// Priority `r = w/u`; the heap orders ascending by this.
    pub priority: f64,
    /// Slab slot of the edge.
    pub slot: u32,
}

/// Array-backed 4-ary min-heap (the paper uses "a binary heap implemented
/// by storing the edges in a standard array"; the wider fan-out is a pure
/// constant-factor improvement with identical observable behavior).
///
/// Priorities are `f64` and must not be NaN (enforced by `debug_assert`);
/// ties are broken arbitrarily, which is harmless because priorities are
/// almost surely distinct (continuous `u`).
#[derive(Clone, Debug, Default)]
pub struct MinHeap {
    entries: Vec<HeapEntry>,
}

/// Heap fan-out. Children of `i` live at `ARITY*i + 1 ..= ARITY*i + ARITY`.
const ARITY: usize = 4;

impl MinHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        MinHeap {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The minimum-priority entry, if any. O(1).
    #[inline]
    pub fn peek(&self) -> Option<HeapEntry> {
        self.entries.first().copied()
    }

    /// Inserts an entry. O(log n).
    pub fn push(&mut self, entry: HeapEntry) {
        debug_assert!(!entry.priority.is_nan(), "NaN priority");
        self.entries.push(entry);
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the minimum-priority entry. O(log n).
    pub fn pop(&mut self) -> Option<HeapEntry> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        self.entries.swap(0, n - 1);
        let min = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        min
    }

    /// Replaces the minimum entry with `entry` and returns the old minimum;
    /// equivalent to `pop` + `push` but with a single sift. This is the
    /// reservoir's hot path: the arriving edge displaces the lowest-priority
    /// edge (paper Alg 1, lines 11–14).
    pub fn replace_min(&mut self, entry: HeapEntry) -> Option<HeapEntry> {
        debug_assert!(!entry.priority.is_nan(), "NaN priority");
        if self.entries.is_empty() {
            self.push(entry);
            return None;
        }
        let old = self.entries[0];
        self.entries[0] = entry;
        self.sift_down(0);
        Some(old)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates entries in arbitrary (array) order.
    pub fn iter(&self) -> impl Iterator<Item = HeapEntry> + '_ {
        self.entries.iter().copied()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.entries[i].priority < self.entries[parent].priority {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let last = (first + ARITY).min(n);
            let mut smallest = i;
            for child in first..last {
                if self.entries[child].priority < self.entries[smallest].priority {
                    smallest = child;
                }
            }
            if smallest == i {
                break;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }

    /// Verifies the heap invariant (test / debug helper).
    #[doc(hidden)]
    pub fn check_invariant(&self) -> bool {
        (1..self.entries.len()).all(|i| {
            let parent = (i - 1) / ARITY;
            self.entries[parent].priority <= self.entries[i].priority
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(priority: f64, slot: u32) -> HeapEntry {
        HeapEntry { priority, slot }
    }

    #[test]
    fn pops_in_ascending_priority_order() {
        let mut h = MinHeap::new();
        for (i, p) in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0].iter().enumerate() {
            h.push(entry(*p, i as u32));
            assert!(h.check_invariant());
        }
        let mut out = vec![];
        while let Some(e) = h.pop() {
            out.push(e.priority);
            assert!(h.check_invariant());
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = MinHeap::new();
        h.push(entry(4.0, 0));
        h.push(entry(2.0, 1));
        assert_eq!(h.peek().unwrap().priority, 2.0);
        assert_eq!(h.pop().unwrap().slot, 1);
        assert_eq!(h.peek().unwrap().slot, 0);
    }

    #[test]
    fn replace_min_returns_old_minimum() {
        let mut h = MinHeap::new();
        for p in [10.0, 20.0, 30.0] {
            h.push(entry(p, p as u32));
        }
        let old = h.replace_min(entry(25.0, 99)).unwrap();
        assert_eq!(old.priority, 10.0);
        assert_eq!(h.len(), 3);
        assert!(h.check_invariant());
        assert_eq!(h.peek().unwrap().priority, 20.0);
    }

    #[test]
    fn replace_min_on_empty_heap_inserts() {
        let mut h = MinHeap::new();
        assert_eq!(h.replace_min(entry(1.0, 7)), None);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn handles_equal_priorities() {
        let mut h = MinHeap::new();
        for i in 0..10 {
            h.push(entry(1.0, i));
        }
        let mut slots: Vec<u32> = std::iter::from_fn(|| h.pop().map(|e| e.slot)).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handles_infinite_priorities() {
        // Priorities are w/u with u ∈ (0,1]; u can be extremely small, so
        // the heap must tolerate very large (even infinite) values.
        let mut h = MinHeap::new();
        h.push(entry(f64::INFINITY, 0));
        h.push(entry(1.0, 1));
        assert_eq!(h.pop().unwrap().slot, 1);
        assert_eq!(h.pop().unwrap().slot, 0);
    }

    #[test]
    fn clear_empties() {
        let mut h = MinHeap::new();
        h.push(entry(1.0, 0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }
}
