//! Local (per-node) triangle counting via in-stream snapshots.
//!
//! The paper's related work (§7) highlights local triangle counting (MASCOT,
//! Lim & Kang 2015) as a companion problem to the global counts GPS targets.
//! GPS's snapshot machinery extends to it directly: when edge `k₃ = (u, v)`
//! arrives and completes the triangle `(k₁, k₂, k₃)` with sampled common
//! neighbor `w`, the snapshot value `1/(q₁·q₂)` is — by exactly the
//! Theorem 4 argument used for the global count — an unbiased increment for
//! the local counts of *all three* corners `u`, `v`, `w`.
//!
//! [`LocalTriangleCounter`] maintains those per-node accumulators next to
//! the global count. Memory is `O(#nodes-with-nonzero-estimate)`, bounded by
//! the number of snapshot corners seen, not by the graph.

use crate::reservoir::{prob, Arrival, GpsSampler};
use crate::weights::EdgeWeight;
use gps_graph::types::{Edge, NodeId};
use gps_graph::FxHashMap;

/// In-stream estimator of per-node (local) triangle counts.
pub struct LocalTriangleCounter<W> {
    sampler: GpsSampler<W>,
    local: FxHashMap<NodeId, f64>,
    global: f64,
    scratch: Vec<(NodeId, f64)>,
}

impl<W: EdgeWeight> LocalTriangleCounter<W> {
    /// Creates a counter over a fresh `GPS(m)` sampler.
    pub fn new(capacity: usize, weight_fn: W, seed: u64) -> Self {
        LocalTriangleCounter {
            sampler: GpsSampler::new(capacity, weight_fn, seed),
            local: FxHashMap::default(),
            global: 0.0,
            scratch: Vec::new(),
        }
    }

    /// Processes one arrival: snapshot the triangles it completes, credit
    /// all three corners, then offer the edge to the sampler.
    pub fn process(&mut self, edge: Edge) -> Arrival {
        if !self.sampler.contains(edge) {
            let (u, v) = edge.endpoints();
            self.scratch.clear();
            {
                let view = self.sampler.view();
                let z = view.threshold();
                let scratch = &mut self.scratch;
                view.for_each_common_slot(u, v, |w, s1, s2| {
                    let q1 = prob(view.record(s1).weight, z);
                    let q2 = prob(view.record(s2).weight, z);
                    scratch.push((w, 1.0 / (q1 * q2)));
                });
            }
            for &(w, inv) in &self.scratch {
                self.global += inv;
                *self.local.entry(u).or_insert(0.0) += inv;
                *self.local.entry(v).or_insert(0.0) += inv;
                *self.local.entry(w).or_insert(0.0) += inv;
            }
        }
        self.sampler.process(edge)
    }

    /// Streams every edge through [`LocalTriangleCounter::process`].
    pub fn process_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.process(e);
        }
    }

    /// Unbiased estimate of the number of triangles containing `node`
    /// (0 for nodes never seen in a snapshot).
    pub fn local_count(&self, node: NodeId) -> f64 {
        self.local.get(&node).copied().unwrap_or(0.0)
    }

    /// Unbiased global triangle count (sums each triangle once, like
    /// [`crate::in_stream::InStreamEstimator`]).
    pub fn global_count(&self) -> f64 {
        self.global
    }

    /// The `k` nodes with the largest local-count estimates, descending
    /// (ties broken by node id for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut all: Vec<(NodeId, f64)> = self.local.iter().map(|(&n, &c)| (n, c)).collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Number of nodes with a nonzero local estimate.
    pub fn nodes_tracked(&self) -> usize {
        self.local.len()
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &GpsSampler<W> {
        &self.sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{TriangleWeight, UniformWeight};

    fn complete_graph(n: u32) -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn exact_under_full_retention() {
        // K5: every node is in C(4,2) = 6 triangles; global = 10.
        let mut c = LocalTriangleCounter::new(100, UniformWeight, 1);
        c.process_stream(complete_graph(5));
        assert!((c.global_count() - 10.0).abs() < 1e-12);
        for node in 0..5 {
            assert!((c.local_count(node) - 6.0).abs() < 1e-12, "node {node}");
        }
        assert_eq!(c.local_count(99), 0.0);
        assert_eq!(c.nodes_tracked(), 5);
    }

    #[test]
    fn locality_is_respected() {
        // Triangle on {0,1,2} plus disjoint path 3-4-5: only the triangle's
        // corners get local counts.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(3, 4),
            Edge::new(4, 5),
        ];
        let mut c = LocalTriangleCounter::new(100, UniformWeight, 2);
        c.process_stream(edges);
        assert_eq!(c.local_count(0), 1.0);
        assert_eq!(c.local_count(1), 1.0);
        assert_eq!(c.local_count(2), 1.0);
        assert_eq!(c.local_count(4), 0.0);
        assert_eq!(c.nodes_tracked(), 3);
    }

    #[test]
    fn top_k_orders_hubs_first() {
        // Wheel: hub 0 on a cycle of 8 → hub in 8 triangles, rim nodes in 2.
        let mut edges: Vec<Edge> = (1..=8).map(|i| Edge::new(0, i)).collect();
        for i in 1..=8u32 {
            let j = if i == 8 { 1 } else { i + 1 };
            edges.push(Edge::new(i, j));
        }
        let mut c = LocalTriangleCounter::new(100, UniformWeight, 3);
        c.process_stream(edges);
        let top = c.top_k(3);
        assert_eq!(top[0], (0, 8.0));
        assert_eq!(top[1].1, 2.0);
        assert!((c.global_count() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn local_estimates_are_unbiased_under_sampling() {
        // K7 (35 triangles, 15 per node), reservoir of 10 of 21 edges:
        // averaged over seeds, local counts converge to 15.
        let edges = complete_graph(7);
        let runs = 500;
        let mut sum_node0 = 0.0;
        let mut sum_global = 0.0;
        for seed in 0..runs {
            let mut c = LocalTriangleCounter::new(10, TriangleWeight::default(), seed);
            // Vary stream order with the seed to average over permutations.
            c.process_stream(gps_stream_shuffle(&edges, seed));
            sum_node0 += c.local_count(0);
            sum_global += c.global_count();
        }
        let mean0 = sum_node0 / runs as f64;
        let mean_g = sum_global / runs as f64;
        assert!(
            (mean0 - 15.0).abs() / 15.0 < 0.2,
            "local mean {mean0} should approach 15"
        );
        assert!(
            (mean_g - 35.0).abs() / 35.0 < 0.15,
            "global mean {mean_g} should approach 35"
        );
    }

    /// Minimal deterministic shuffle (avoids a dev-dependency cycle on
    /// gps-stream).
    fn gps_stream_shuffle(edges: &[Edge], seed: u64) -> Vec<Edge> {
        let mut out = edges.to_vec();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        for i in (1..out.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.swap(i, (state >> 33) as usize % (i + 1));
        }
        out
    }

    #[test]
    fn global_count_matches_in_stream_estimator() {
        let edges = complete_graph(8);
        let mut local = LocalTriangleCounter::new(14, TriangleWeight::default(), 9);
        local.process_stream(edges.iter().copied());
        let mut global = crate::in_stream::InStreamEstimator::new(14, TriangleWeight::default(), 9);
        global.process_stream(edges);
        assert!((local.global_count() - global.triangle_count()).abs() < 1e-9);
    }
}
