//! Estimate types shared by post-stream and in-stream estimation.
//!
//! An [`Estimate`] pairs a Horvitz–Thompson point estimate with its unbiased
//! variance estimate (paper Theorems 3/5). [`TriadEstimates`] bundles the
//! three statistics every experiment reports — triangle count, wedge count,
//! global clustering coefficient — plus the triangle–wedge covariance that
//! feeds the clustering coefficient's delta-method variance (paper Eq. 11).

/// A point estimate together with an estimate of its variance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Horvitz–Thompson point estimate.
    pub value: f64,
    /// Unbiased variance estimate (may be 0 when the sample retained
    /// everything; never negative by paper Theorem 3(ii)).
    pub variance: f64,
}

impl Estimate {
    /// An exact (zero-variance) estimate.
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            variance: 0.0,
        }
    }

    /// Standard deviation (`sqrt` of the variance estimate, 0 if the
    /// variance estimate is slightly negative due to float rounding).
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Two-sided normal confidence interval `value ± z·σ`. The lower bound
    /// is clamped at 0 since all estimated quantities here are counts or
    /// ratios of counts.
    pub fn ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_dev();
        ((self.value - half).max(0.0), self.value + half)
    }

    /// The paper's 95% bounds: `value ± 1.96·σ` (§6, item 4).
    pub fn ci95(&self) -> (f64, f64) {
        self.ci(1.96)
    }

    /// The estimate of `c·X` given this estimate of `X`: value scales by
    /// `c`, variance by `c²`. Used by `gps-engine` to undo the known
    /// subsampling factor a sharded partition applies to subgraph counts.
    pub fn scaled(&self, c: f64) -> Estimate {
        Estimate {
            value: self.value * c,
            variance: self.variance * c * c,
        }
    }

    /// The estimate of `X + Y` from *independent* estimates of `X` and `Y`:
    /// values and variances sum. This is the stratified-estimation identity
    /// behind cross-shard merging — Horvitz–Thompson estimates over
    /// disjoint, independently sampled strata add unbiasedly.
    pub fn add_independent(&self, other: &Estimate) -> Estimate {
        Estimate {
            value: self.value + other.value,
            variance: self.variance + other.variance,
        }
    }

    /// Absolute relative error against ground truth `actual`
    /// (`|X̂ - X| / X`, the paper's ARE; 0 when both are 0).
    pub fn are(&self, actual: f64) -> f64 {
        if actual == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - actual).abs() / actual
        }
    }
}

/// Triangle, wedge, and clustering estimates from one sample.
#[derive(Clone, Copy, Debug)]
pub struct TriadEstimates {
    /// Triangle count estimate `N̂(△)` with variance `V̂(△)`.
    pub triangles: Estimate,
    /// Wedge count estimate `N̂(Λ)` with variance `V̂(Λ)`.
    pub wedges: Estimate,
    /// Triangle–wedge covariance estimate `V̂(△,Λ)` (paper Eq. 12).
    pub tri_wedge_cov: f64,
    /// Global clustering coefficient `α̂ = 3·N̂(△)/N̂(Λ)` with delta-method
    /// variance (paper Eq. 11).
    pub clustering: Estimate,
}

impl TriadEstimates {
    /// Assembles the bundle, deriving the clustering estimate from the
    /// triangle/wedge estimates via the delta method.
    pub fn from_parts(triangles: Estimate, wedges: Estimate, tri_wedge_cov: f64) -> Self {
        let clustering = clustering_estimate(&triangles, &wedges, tri_wedge_cov);
        TriadEstimates {
            triangles,
            wedges,
            tri_wedge_cov,
            clustering,
        }
    }

    /// Merges estimates over disjoint, **independently sampled** strata
    /// (e.g. one per `gps-engine` shard): triangle and wedge values,
    /// variances, and within-stratum covariances all sum — cross-stratum
    /// covariances vanish by independence — and the clustering coefficient
    /// is re-derived from the merged counts.
    ///
    /// The merged triangle (wedge) estimate is unbiased for the total count
    /// of triangles (wedges) that lie *within* a stratum. When strata
    /// partition the edges of one graph, multi-edge subgraphs spanning
    /// strata are invisible to every stratum; undoing that known
    /// subsampling factor is the caller's job (see
    /// `gps_engine::ShardedGps::estimate`, which rescales via
    /// [`Estimate::scaled`]).
    pub fn merged_strata<I: IntoIterator<Item = TriadEstimates>>(parts: I) -> TriadEstimates {
        let zero = Estimate::exact(0.0);
        let (triangles, wedges, cov) =
            parts
                .into_iter()
                .fold((zero, zero, 0.0), |(tri, wedge, cov), part| {
                    (
                        tri.add_independent(&part.triangles),
                        wedge.add_independent(&part.wedges),
                        cov + part.tri_wedge_cov,
                    )
                });
        TriadEstimates::from_parts(triangles, wedges, cov)
    }
}

/// Delta-method estimate of the global clustering coefficient
/// `α̂ = 3·T̂/Ŵ` (paper Eq. 11):
///
/// ```text
/// Var(T̂/Ŵ) ≈ Var(T̂)/Ŵ² + T̂²·Var(Ŵ)/Ŵ⁴ − 2·T̂·Cov(T̂,Ŵ)/Ŵ³
/// ```
///
/// multiplied by 9 for the leading factor 3. Returns an exact zero estimate
/// when no wedges were observed (clustering undefined/zero).
pub fn clustering_estimate(triangles: &Estimate, wedges: &Estimate, cov: f64) -> Estimate {
    let t = triangles.value;
    let w = wedges.value;
    if w <= 0.0 {
        return Estimate::exact(0.0);
    }
    let ratio_var = triangles.variance / (w * w) + t * t * wedges.variance / w.powi(4)
        - 2.0 * t * cov / (w * w * w);
    Estimate {
        value: 3.0 * t / w,
        variance: (9.0 * ratio_var).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_is_symmetric_and_clamped() {
        let e = Estimate {
            value: 100.0,
            variance: 25.0,
        };
        let (lb, ub) = e.ci(2.0);
        assert_eq!((lb, ub), (90.0, 110.0));
        let tiny = Estimate {
            value: 1.0,
            variance: 100.0,
        };
        let (lb, _) = tiny.ci95();
        assert_eq!(lb, 0.0, "lower bound clamps at zero");
    }

    #[test]
    fn ci95_uses_paper_z() {
        let e = Estimate {
            value: 0.0,
            variance: 1.0,
        };
        let (_, ub) = e.ci95();
        assert!((ub - 1.96).abs() < 1e-12);
    }

    #[test]
    fn are_handles_zero_actual() {
        assert_eq!(Estimate::exact(0.0).are(0.0), 0.0);
        assert_eq!(Estimate::exact(5.0).are(0.0), f64::INFINITY);
        assert!((Estimate::exact(99.0).are(100.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn negative_float_noise_in_variance_is_tolerated() {
        let e = Estimate {
            value: 10.0,
            variance: -1e-12,
        };
        assert_eq!(e.std_dev(), 0.0);
    }

    #[test]
    fn clustering_exact_when_inputs_exact() {
        // 4 triangles, 12 wedges → α = 1 with zero variance.
        let c = clustering_estimate(&Estimate::exact(4.0), &Estimate::exact(12.0), 0.0);
        assert!((c.value - 1.0).abs() < 1e-12);
        assert_eq!(c.variance, 0.0);
    }

    #[test]
    fn clustering_zero_when_no_wedges() {
        let c = clustering_estimate(&Estimate::exact(0.0), &Estimate::exact(0.0), 0.0);
        assert_eq!(c.value, 0.0);
        assert_eq!(c.variance, 0.0);
    }

    #[test]
    fn clustering_variance_formula_matches_hand_computation() {
        let t = Estimate {
            value: 50.0,
            variance: 4.0,
        };
        let w = Estimate {
            value: 600.0,
            variance: 100.0,
        };
        let cov = 10.0;
        let c = clustering_estimate(&t, &w, cov);
        let expect = 9.0
            * (4.0 / (600.0f64 * 600.0) + 50.0 * 50.0 * 100.0 / 600.0f64.powi(4)
                - 2.0 * 50.0 * 10.0 / 600.0f64.powi(3));
        assert!((c.variance - expect).abs() < 1e-15);
        assert!((c.value - 0.25).abs() < 1e-12);
    }

    #[test]
    fn positive_covariance_tightens_clustering_variance() {
        let t = Estimate {
            value: 50.0,
            variance: 4.0,
        };
        let w = Estimate {
            value: 600.0,
            variance: 100.0,
        };
        let loose = clustering_estimate(&t, &w, 0.0);
        let tight = clustering_estimate(&t, &w, 20.0);
        assert!(tight.variance < loose.variance);
    }

    #[test]
    fn scaling_transforms_value_linearly_and_variance_quadratically() {
        let e = Estimate {
            value: 10.0,
            variance: 4.0,
        };
        let s = e.scaled(3.0);
        assert_eq!(s.value, 30.0);
        assert_eq!(s.variance, 36.0);
        assert_eq!(e.scaled(1.0), e);
    }

    #[test]
    fn independent_sums_add_values_and_variances() {
        let a = Estimate {
            value: 5.0,
            variance: 2.0,
        };
        let b = Estimate {
            value: 7.0,
            variance: 3.0,
        };
        let s = a.add_independent(&b);
        assert_eq!(s.value, 12.0);
        assert_eq!(s.variance, 5.0);
    }

    #[test]
    fn merged_strata_sums_parts_and_rederives_clustering() {
        let a = TriadEstimates::from_parts(
            Estimate {
                value: 4.0,
                variance: 1.0,
            },
            Estimate {
                value: 24.0,
                variance: 2.0,
            },
            0.5,
        );
        let b = TriadEstimates::from_parts(
            Estimate {
                value: 6.0,
                variance: 3.0,
            },
            Estimate {
                value: 36.0,
                variance: 4.0,
            },
            1.5,
        );
        let m = TriadEstimates::merged_strata([a, b]);
        assert_eq!(m.triangles.value, 10.0);
        assert_eq!(m.triangles.variance, 4.0);
        assert_eq!(m.wedges.value, 60.0);
        assert_eq!(m.wedges.variance, 6.0);
        assert_eq!(m.tri_wedge_cov, 2.0);
        assert!((m.clustering.value - 0.5).abs() < 1e-12);
        // Merging nothing is the empty estimate.
        let empty = TriadEstimates::merged_strata([]);
        assert_eq!(empty.triangles.value, 0.0);
        assert_eq!(empty.clustering.value, 0.0);
    }

    #[test]
    fn triad_bundle_derives_clustering() {
        let b = TriadEstimates::from_parts(Estimate::exact(10.0), Estimate::exact(60.0), 0.0);
        assert!((b.clustering.value - 0.5).abs() < 1e-12);
    }
}
