//! Estimate types shared by post-stream and in-stream estimation.
//!
//! An [`Estimate`] pairs a Horvitz–Thompson point estimate with its unbiased
//! variance estimate (paper Theorems 3/5). [`TriadEstimates`] bundles the
//! three statistics every experiment reports — triangle count, wedge count,
//! global clustering coefficient — plus the triangle–wedge covariance that
//! feeds the clustering coefficient's delta-method variance (paper Eq. 11).

/// A point estimate together with an estimate of its variance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Horvitz–Thompson point estimate.
    pub value: f64,
    /// Unbiased variance estimate (may be 0 when the sample retained
    /// everything; never negative by paper Theorem 3(ii)).
    pub variance: f64,
}

impl Estimate {
    /// An exact (zero-variance) estimate.
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            variance: 0.0,
        }
    }

    /// Standard deviation (`sqrt` of the variance estimate, 0 if the
    /// variance estimate is slightly negative due to float rounding).
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Two-sided normal confidence interval `value ± z·σ`. The lower bound
    /// is clamped at 0 since all estimated quantities here are counts or
    /// ratios of counts.
    pub fn ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_dev();
        ((self.value - half).max(0.0), self.value + half)
    }

    /// The paper's 95% bounds: `value ± 1.96·σ` (§6, item 4).
    pub fn ci95(&self) -> (f64, f64) {
        self.ci(1.96)
    }

    /// The estimate of `c·X` given this estimate of `X`: value scales by
    /// `c`, variance by `c²`. Used by `gps-engine` to undo the known
    /// subsampling factor a sharded partition applies to subgraph counts.
    pub fn scaled(&self, c: f64) -> Estimate {
        Estimate {
            value: self.value * c,
            variance: self.variance * c * c,
        }
    }

    /// The estimate of `X + Y` from *independent* estimates of `X` and `Y`:
    /// values and variances sum. This is the stratified-estimation identity
    /// behind cross-shard merging — Horvitz–Thompson estimates over
    /// disjoint, independently sampled strata add unbiasedly.
    pub fn add_independent(&self, other: &Estimate) -> Estimate {
        Estimate {
            value: self.value + other.value,
            variance: self.variance + other.variance,
        }
    }

    /// Absolute relative error against ground truth `actual`
    /// (`|X̂ - X| / X`, the paper's ARE; 0 when both are 0).
    pub fn are(&self, actual: f64) -> f64 {
        if actual == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - actual).abs() / actual
        }
    }
}

/// Triangle, wedge, and clustering estimates from one sample.
#[derive(Clone, Copy, Debug)]
pub struct TriadEstimates {
    /// Triangle count estimate `N̂(△)` with variance `V̂(△)`.
    pub triangles: Estimate,
    /// Wedge count estimate `N̂(Λ)` with variance `V̂(Λ)`.
    pub wedges: Estimate,
    /// Triangle–wedge covariance estimate `V̂(△,Λ)` (paper Eq. 12).
    pub tri_wedge_cov: f64,
    /// Global clustering coefficient `α̂ = 3·N̂(△)/N̂(Λ)` with delta-method
    /// variance (paper Eq. 11).
    pub clustering: Estimate,
}

impl TriadEstimates {
    /// Assembles the bundle, deriving the clustering estimate from the
    /// triangle/wedge estimates via the delta method.
    pub fn from_parts(triangles: Estimate, wedges: Estimate, tri_wedge_cov: f64) -> Self {
        let clustering = clustering_estimate(&triangles, &wedges, tri_wedge_cov);
        TriadEstimates {
            triangles,
            wedges,
            tri_wedge_cov,
            clustering,
        }
    }

    /// Merges estimates over disjoint, **independently sampled** strata
    /// (e.g. one per `gps-engine` shard): triangle and wedge values,
    /// variances, and within-stratum covariances all sum — cross-stratum
    /// covariances vanish by independence — and the clustering coefficient
    /// is re-derived from the merged counts.
    ///
    /// The merged triangle (wedge) estimate is unbiased for the total count
    /// of triangles (wedges) that lie *within* a stratum. When strata
    /// partition the edges of one graph, multi-edge subgraphs spanning
    /// strata are invisible to every stratum; undoing that known
    /// subsampling factor is the caller's job (see
    /// `gps_engine::ShardedGps::estimate`, which rescales via
    /// [`Estimate::scaled`]).
    pub fn merged_strata<I: IntoIterator<Item = TriadEstimates>>(parts: I) -> TriadEstimates {
        let zero = Estimate::exact(0.0);
        let (triangles, wedges, cov) =
            parts
                .into_iter()
                .fold((zero, zero, 0.0), |(tri, wedge, cov), part| {
                    (
                        tri.add_independent(&part.triangles),
                        wedge.add_independent(&part.wedges),
                        cov + part.tri_wedge_cov,
                    )
                });
        TriadEstimates::from_parts(triangles, wedges, cov)
    }

    /// Merges per-color estimates from an `S`-way random edge coloring (one
    /// entry per color, e.g. one per `gps-engine` shard) into *global*
    /// estimates with **honest `S > 1` variances**.
    ///
    /// Point estimates are the colorful-counting merge: the strata sum
    /// rescaled by the monochromacy factors `S²` (triangles, 3 edges), `S`
    /// (wedges, 2 edges) and `S³` (covariance).
    ///
    /// Variances decompose by the law of total variance over the coloring
    /// `C`: `Var(X̂) = E[Var(X̂|C)] + Var(E[X̂|C])`.
    ///
    /// - The **conditional** term is the strata-sum of per-shard HT variance
    ///   estimates, rescaled (`S⁴` triangles, `S²` wedges) — unbiased for
    ///   `E[Var(X̂|C)]`, and all a sharded run reported before this
    ///   decomposition existed.
    /// - The **between-shard (coloring)** term uses the observation that
    ///   each shard alone yields an unbiased global estimate `Ŷ_i = S³·t̂_i`
    ///   (resp. `S²·ŵ_i`) and the merged value is their mean `Ȳ`. The
    ///   empirical variance of that mean, `Σ(Ŷ_i − Ȳ)²/(S(S−1))`, estimates
    ///   the *total* variance — both terms at once (per-shard sampling is
    ///   independent given `C`; the weak negative correlation between
    ///   monochromatic counts only makes it conservative). The reported
    ///   variance is therefore `conditional + max(0, empirical − conditional)`
    ///   = `max(conditional, empirical)`: the coloring excess is added
    ///   without ever discarding the unbiased conditional term, and the
    ///   clamp keeps the (χ²_{S−1}-noisy, small-`S`) empirical estimate from
    ///   *shrinking* a CI below the conditional one.
    ///
    /// The triangle–wedge covariance keeps the conditional (strata-sum)
    /// term only: coloring-induced covariance is positive, and a positive
    /// covariance *tightens* the delta-method clustering variance, so
    /// omitting it errs conservative.
    ///
    /// With one part this degenerates bit-for-bit to [`merged_strata`]
    /// (factors of 1, no between term) — the `S = 1` engine stays
    /// bit-identical to a bare sampler.
    ///
    /// [`merged_strata`]: TriadEstimates::merged_strata
    pub fn merged_colored(parts: &[TriadEstimates]) -> TriadEstimates {
        assert!(!parts.is_empty(), "need at least one color");
        let s = parts.len() as f64;
        let merged = Self::merged_strata(parts.iter().copied());
        let triangles = merged.triangles.scaled(s * s);
        let wedges = merged.wedges.scaled(s);
        let cov = merged.tri_wedge_cov * s * s * s;
        if parts.len() == 1 {
            return Self::from_parts(triangles, wedges, cov);
        }
        let tri_between = variance_of_mean(parts.iter().map(|p| p.triangles.value * s * s * s));
        let wedge_between = variance_of_mean(parts.iter().map(|p| p.wedges.value * s * s));
        Self::from_parts(
            Estimate {
                value: triangles.value,
                variance: triangles.variance.max(tri_between),
            },
            Estimate {
                value: wedges.value,
                variance: wedges.variance.max(wedge_between),
            },
            cov,
        )
    }

    /// [`merged_colored`] when only `parts.len()` of the `total` colors
    /// reported (a degraded epoch: some shards are crashed, stalled, or not
    /// yet recovered).
    ///
    /// Each reporting color alone yields an unbiased *global* estimate
    /// (`S³·t̂_i` triangles, `S²·ŵ_i` wedges, with `S = total`); the merged
    /// value is the mean of the reporting colors' global estimates —
    /// still unbiased, since colors are exchangeable under the random edge
    /// coloring, at the cost of averaging over fewer strata (variances grow
    /// by roughly `S/k`). Variances keep the `max(conditional, empirical)`
    /// structure of [`merged_colored`] with the conditional term rescaled by
    /// `S⁶/k²` (triangles), `S⁴/k²` (wedges), and the covariance by `S⁵/k²`.
    ///
    /// With `parts.len() == total` this delegates to [`merged_colored`]
    /// bit-for-bit, so full epochs are unchanged by routing through here.
    ///
    /// [`merged_colored`]: TriadEstimates::merged_colored
    pub fn merged_colored_partial(parts: &[TriadEstimates], total: usize) -> TriadEstimates {
        assert!(!parts.is_empty(), "need at least one reporting color");
        assert!(
            parts.len() <= total,
            "more reporting colors than the coloring has"
        );
        if parts.len() == total {
            return Self::merged_colored(parts);
        }
        let k = parts.len() as f64;
        let s = total as f64;
        let s3 = s * s * s;
        let merged = Self::merged_strata(parts.iter().copied());
        let triangles = merged.triangles.scaled(s3 / k);
        let wedges = merged.wedges.scaled(s * s / k);
        let cov = merged.tri_wedge_cov * s3 * s * s / (k * k);
        let tri_between = variance_of_mean(parts.iter().map(|p| p.triangles.value * s3));
        let wedge_between = variance_of_mean(parts.iter().map(|p| p.wedges.value * s * s));
        Self::from_parts(
            Estimate {
                value: triangles.value,
                variance: triangles.variance.max(tri_between),
            },
            Estimate {
                value: wedges.value,
                variance: wedges.variance.max(wedge_between),
            },
            cov,
        )
    }

    /// Two-level merge of per-color estimates routed through `K`
    /// aggregator groups (the S ≫ cores deployment shape: each aggregator
    /// collects a contiguous range of leaf shards and forwards them to the
    /// root). `groups` holds each aggregator's leaves **in leaf order**,
    /// groups themselves ordered by their first leaf; the result is the
    /// flat [`merged_colored`] over the ordered concatenation —
    /// **bit-identical** to a single-level merge of the same leaves.
    ///
    /// The design constraint this encodes: f64 addition is not
    /// associative, so aggregators must *not* pre-merge their subtree into
    /// one `TriadEstimates` (the strata sums and the between-shard
    /// `variance_of_mean` would be re-associated, and the partial-color
    /// rescale factors would be wrong before the root knows `S`).
    /// Aggregators are a communication topology — they batch and forward
    /// per-leaf estimates — and only the root does arithmetic, in leaf
    /// order. The `gps-sim` scale-out testbed pins this identity at
    /// S ∈ {16, 64, 256}.
    ///
    /// [`merged_colored`]: TriadEstimates::merged_colored
    pub fn merged_colored_tree(groups: &[&[TriadEstimates]]) -> TriadEstimates {
        let leaves: Vec<TriadEstimates> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        Self::merged_colored(&leaves)
    }

    /// [`merged_colored_tree`] when only some leaves reported (degraded
    /// epochs in a tree deployment): the ordered concatenation of the
    /// reporting leaves is handed to [`merged_colored_partial`] with the
    /// full coloring size `total`. With every leaf reporting this is
    /// bit-identical to [`merged_colored_tree`], which is in turn
    /// bit-identical to the flat merge.
    ///
    /// [`merged_colored_tree`]: TriadEstimates::merged_colored_tree
    /// [`merged_colored_partial`]: TriadEstimates::merged_colored_partial
    pub fn merged_colored_tree_partial(
        groups: &[&[TriadEstimates]],
        total: usize,
    ) -> TriadEstimates {
        let leaves: Vec<TriadEstimates> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        Self::merged_colored_partial(&leaves, total)
    }

    /// Widens the confidence intervals to account for a known fraction of
    /// the stream that the sampler never observed (arrivals lost between a
    /// shard's last checkpoint and its crash).
    ///
    /// Each lost arrival could have contributed to the counts roughly in
    /// proportion to the observed stream, so the point estimates are left
    /// unbiased *given* exchangeability of the lost window and the
    /// uncertainty is surfaced instead: one extra standard deviation equal
    /// to `lost_fraction · value` is added in quadrature to the triangle and
    /// wedge variances (a deliberate heuristic — the loss is adversarially
    /// unbounded, so no estimator can be exact; the contract is *honest
    /// flagging*, never a silently narrowed interval). The clustering
    /// estimate is re-derived from the widened parts.
    pub fn widened_for_loss(&self, lost_fraction: f64) -> TriadEstimates {
        let f = lost_fraction.max(0.0);
        let widen = |e: &Estimate| Estimate {
            value: e.value,
            variance: e.variance + (f * e.value) * (f * e.value),
        };
        Self::from_parts(
            widen(&self.triangles),
            widen(&self.wedges),
            self.tri_wedge_cov,
        )
    }
}

/// Empirical variance of the **mean** of `xs`:
/// `Σ(x_i − x̄)² / (n(n−1))`, the standard honest variance estimator for an
/// average of identically-distributed estimates (0 when `n < 2`, where no
/// dispersion is observable). This is the between-shard term of
/// [`TriadEstimates::merged_colored`].
pub fn variance_of_mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let xs: Vec<f64> = xs.into_iter().collect();
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    ss / ((n - 1) as f64 * n as f64)
}

/// Delta-method estimate of the global clustering coefficient
/// `α̂ = 3·T̂/Ŵ` (paper Eq. 11):
///
/// ```text
/// Var(T̂/Ŵ) ≈ Var(T̂)/Ŵ² + T̂²·Var(Ŵ)/Ŵ⁴ − 2·T̂·Cov(T̂,Ŵ)/Ŵ³
/// ```
///
/// multiplied by 9 for the leading factor 3. Returns an exact zero estimate
/// when no wedges were observed (clustering undefined/zero).
pub fn clustering_estimate(triangles: &Estimate, wedges: &Estimate, cov: f64) -> Estimate {
    let t = triangles.value;
    let w = wedges.value;
    if w <= 0.0 {
        return Estimate::exact(0.0);
    }
    let ratio_var = triangles.variance / (w * w) + t * t * wedges.variance / w.powi(4)
        - 2.0 * t * cov / (w * w * w);
    Estimate {
        value: 3.0 * t / w,
        variance: (9.0 * ratio_var).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_is_symmetric_and_clamped() {
        let e = Estimate {
            value: 100.0,
            variance: 25.0,
        };
        let (lb, ub) = e.ci(2.0);
        assert_eq!((lb, ub), (90.0, 110.0));
        let tiny = Estimate {
            value: 1.0,
            variance: 100.0,
        };
        let (lb, _) = tiny.ci95();
        assert_eq!(lb, 0.0, "lower bound clamps at zero");
    }

    #[test]
    fn ci95_uses_paper_z() {
        let e = Estimate {
            value: 0.0,
            variance: 1.0,
        };
        let (_, ub) = e.ci95();
        assert!((ub - 1.96).abs() < 1e-12);
    }

    #[test]
    fn are_handles_zero_actual() {
        assert_eq!(Estimate::exact(0.0).are(0.0), 0.0);
        assert_eq!(Estimate::exact(5.0).are(0.0), f64::INFINITY);
        assert!((Estimate::exact(99.0).are(100.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn negative_float_noise_in_variance_is_tolerated() {
        let e = Estimate {
            value: 10.0,
            variance: -1e-12,
        };
        assert_eq!(e.std_dev(), 0.0);
    }

    #[test]
    fn clustering_exact_when_inputs_exact() {
        // 4 triangles, 12 wedges → α = 1 with zero variance.
        let c = clustering_estimate(&Estimate::exact(4.0), &Estimate::exact(12.0), 0.0);
        assert!((c.value - 1.0).abs() < 1e-12);
        assert_eq!(c.variance, 0.0);
    }

    #[test]
    fn clustering_zero_when_no_wedges() {
        let c = clustering_estimate(&Estimate::exact(0.0), &Estimate::exact(0.0), 0.0);
        assert_eq!(c.value, 0.0);
        assert_eq!(c.variance, 0.0);
    }

    #[test]
    fn clustering_variance_formula_matches_hand_computation() {
        let t = Estimate {
            value: 50.0,
            variance: 4.0,
        };
        let w = Estimate {
            value: 600.0,
            variance: 100.0,
        };
        let cov = 10.0;
        let c = clustering_estimate(&t, &w, cov);
        let expect = 9.0
            * (4.0 / (600.0f64 * 600.0) + 50.0 * 50.0 * 100.0 / 600.0f64.powi(4)
                - 2.0 * 50.0 * 10.0 / 600.0f64.powi(3));
        assert!((c.variance - expect).abs() < 1e-15);
        assert!((c.value - 0.25).abs() < 1e-12);
    }

    #[test]
    fn positive_covariance_tightens_clustering_variance() {
        let t = Estimate {
            value: 50.0,
            variance: 4.0,
        };
        let w = Estimate {
            value: 600.0,
            variance: 100.0,
        };
        let loose = clustering_estimate(&t, &w, 0.0);
        let tight = clustering_estimate(&t, &w, 20.0);
        assert!(tight.variance < loose.variance);
    }

    #[test]
    fn scaling_transforms_value_linearly_and_variance_quadratically() {
        let e = Estimate {
            value: 10.0,
            variance: 4.0,
        };
        let s = e.scaled(3.0);
        assert_eq!(s.value, 30.0);
        assert_eq!(s.variance, 36.0);
        assert_eq!(e.scaled(1.0), e);
    }

    #[test]
    fn independent_sums_add_values_and_variances() {
        let a = Estimate {
            value: 5.0,
            variance: 2.0,
        };
        let b = Estimate {
            value: 7.0,
            variance: 3.0,
        };
        let s = a.add_independent(&b);
        assert_eq!(s.value, 12.0);
        assert_eq!(s.variance, 5.0);
    }

    #[test]
    fn merged_strata_sums_parts_and_rederives_clustering() {
        let a = TriadEstimates::from_parts(
            Estimate {
                value: 4.0,
                variance: 1.0,
            },
            Estimate {
                value: 24.0,
                variance: 2.0,
            },
            0.5,
        );
        let b = TriadEstimates::from_parts(
            Estimate {
                value: 6.0,
                variance: 3.0,
            },
            Estimate {
                value: 36.0,
                variance: 4.0,
            },
            1.5,
        );
        let m = TriadEstimates::merged_strata([a, b]);
        assert_eq!(m.triangles.value, 10.0);
        assert_eq!(m.triangles.variance, 4.0);
        assert_eq!(m.wedges.value, 60.0);
        assert_eq!(m.wedges.variance, 6.0);
        assert_eq!(m.tri_wedge_cov, 2.0);
        assert!((m.clustering.value - 0.5).abs() < 1e-12);
        // Merging nothing is the empty estimate.
        let empty = TriadEstimates::merged_strata([]);
        assert_eq!(empty.triangles.value, 0.0);
        assert_eq!(empty.clustering.value, 0.0);
    }

    #[test]
    fn variance_of_mean_matches_hand_computation() {
        assert_eq!(variance_of_mean([]), 0.0);
        assert_eq!(variance_of_mean([5.0]), 0.0);
        // x = {1, 3}: mean 2, SS = 2, n(n-1) = 2 → 1.
        assert!((variance_of_mean([1.0, 3.0]) - 1.0).abs() < 1e-15);
        // x = {0, 2, 4}: mean 2, SS = 8, n(n-1) = 6 → 4/3.
        assert!((variance_of_mean([0.0, 2.0, 4.0]) - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn merged_colored_single_part_is_identity() {
        let a = TriadEstimates::from_parts(
            Estimate {
                value: 4.0,
                variance: 1.5,
            },
            Estimate {
                value: 24.0,
                variance: 2.5,
            },
            0.75,
        );
        let m = TriadEstimates::merged_colored(&[a]);
        assert_eq!(m.triangles.value.to_bits(), a.triangles.value.to_bits());
        assert_eq!(
            m.triangles.variance.to_bits(),
            a.triangles.variance.to_bits()
        );
        assert_eq!(m.wedges.value.to_bits(), a.wedges.value.to_bits());
        assert_eq!(m.tri_wedge_cov.to_bits(), a.tri_wedge_cov.to_bits());
    }

    #[test]
    fn merged_colored_points_match_plain_rescale_and_variance_never_shrinks() {
        let parts = [
            TriadEstimates::from_parts(
                Estimate {
                    value: 4.0,
                    variance: 1.0,
                },
                Estimate {
                    value: 24.0,
                    variance: 2.0,
                },
                0.5,
            ),
            TriadEstimates::from_parts(
                Estimate {
                    value: 6.0,
                    variance: 3.0,
                },
                Estimate {
                    value: 36.0,
                    variance: 4.0,
                },
                1.5,
            ),
        ];
        let m = TriadEstimates::merged_colored(&parts);
        // Point estimates: S²·Σt̂ and S·Σŵ, exactly as the engine's plain
        // rescale produced them.
        assert_eq!(m.triangles.value, 4.0 * 10.0);
        assert_eq!(m.wedges.value, 2.0 * 60.0);
        assert_eq!(m.tri_wedge_cov, 8.0 * 2.0);
        // Conditional terms: S⁴·ΣV̂ = 64, S²·ΣV̂ = 24.
        let tri_cond = 16.0 * 4.0;
        let wedge_cond = 4.0 * 6.0;
        assert!(m.triangles.variance >= tri_cond);
        assert!(m.wedges.variance >= wedge_cond);
        // Between terms: per-shard global estimates S³·t̂ = {32, 48} and
        // S²·ŵ = {96, 144} → variance-of-mean 64 and 576.
        assert_eq!(m.triangles.variance, tri_cond.max(64.0));
        assert_eq!(m.wedges.variance, wedge_cond.max(576.0));
    }

    #[test]
    fn merged_colored_keeps_conditional_variance_when_shards_agree() {
        // Identical per-shard estimates: zero observed dispersion, so the
        // clamp leaves the conditional (strata-sum) variance untouched.
        let part = TriadEstimates::from_parts(
            Estimate {
                value: 5.0,
                variance: 2.0,
            },
            Estimate {
                value: 30.0,
                variance: 3.0,
            },
            1.0,
        );
        let m = TriadEstimates::merged_colored(&[part, part]);
        assert_eq!(m.triangles.variance, 16.0 * 4.0);
        assert_eq!(m.wedges.variance, 4.0 * 6.0);
    }

    #[test]
    fn merged_colored_partial_full_set_is_bit_identical_to_merged_colored() {
        let parts = [
            TriadEstimates::from_parts(
                Estimate {
                    value: 4.0,
                    variance: 1.0,
                },
                Estimate {
                    value: 24.0,
                    variance: 2.0,
                },
                0.5,
            ),
            TriadEstimates::from_parts(
                Estimate {
                    value: 6.0,
                    variance: 3.0,
                },
                Estimate {
                    value: 36.0,
                    variance: 4.0,
                },
                1.5,
            ),
        ];
        let full = TriadEstimates::merged_colored(&parts);
        let partial = TriadEstimates::merged_colored_partial(&parts, 2);
        assert_eq!(
            full.triangles.value.to_bits(),
            partial.triangles.value.to_bits()
        );
        assert_eq!(
            full.triangles.variance.to_bits(),
            partial.triangles.variance.to_bits()
        );
        assert_eq!(full.wedges.value.to_bits(), partial.wedges.value.to_bits());
        assert_eq!(
            full.wedges.variance.to_bits(),
            partial.wedges.variance.to_bits()
        );
        assert_eq!(
            full.tri_wedge_cov.to_bits(),
            partial.tri_wedge_cov.to_bits()
        );
    }

    #[test]
    fn merged_colored_partial_extrapolates_one_of_four_colors() {
        // One reporting color out of S = 4: t̂ = 2 with v̂ = 0.5 →
        // value S³·t̂ = 128, conditional variance S⁶·v̂ = 2048 (no
        // between-term with k = 1).
        let part = TriadEstimates::from_parts(
            Estimate {
                value: 2.0,
                variance: 0.5,
            },
            Estimate {
                value: 12.0,
                variance: 1.0,
            },
            0.25,
        );
        let m = TriadEstimates::merged_colored_partial(&[part], 4);
        assert_eq!(m.triangles.value, 128.0);
        assert_eq!(m.triangles.variance, 2048.0);
        // Wedges: S²·ŵ = 192, S⁴·v̂ = 256. Covariance: S⁵·ĉ = 256.
        assert_eq!(m.wedges.value, 192.0);
        assert_eq!(m.wedges.variance, 256.0);
        assert_eq!(m.tri_wedge_cov, 256.0);
    }

    #[test]
    fn merged_colored_partial_two_of_four_averages_per_color_globals() {
        let parts = [
            TriadEstimates::from_parts(
                Estimate {
                    value: 2.0,
                    variance: 0.5,
                },
                Estimate {
                    value: 12.0,
                    variance: 1.0,
                },
                0.0,
            ),
            TriadEstimates::from_parts(
                Estimate {
                    value: 4.0,
                    variance: 0.5,
                },
                Estimate {
                    value: 20.0,
                    variance: 1.0,
                },
                0.0,
            ),
        ];
        let m = TriadEstimates::merged_colored_partial(&parts, 4);
        // Mean of per-color globals S³·t̂ ∈ {128, 256} → 192; conditional
        // S⁶/k²·Σv̂ = 4096/4·1 = 1024, between Σ(x−x̄)²/(k(k−1)) = 4096.
        assert_eq!(m.triangles.value, 192.0);
        assert_eq!(m.triangles.variance, 4096.0);
        // Wedges: mean of S²·ŵ ∈ {192, 320} → 256.
        assert_eq!(m.wedges.value, 256.0);
    }

    /// A bundle with distinct, order-sensitive float values per index.
    fn synthetic_parts(n: usize) -> Vec<TriadEstimates> {
        (0..n)
            .map(|i| {
                let x = 1.0 + (i as f64) * 0.377;
                TriadEstimates::from_parts(
                    Estimate {
                        value: x,
                        variance: 0.1 + x / 7.0,
                    },
                    Estimate {
                        value: 6.0 * x,
                        variance: 0.2 + x / 3.0,
                    },
                    x / 11.0,
                )
            })
            .collect()
    }

    fn assert_bits_eq(a: &TriadEstimates, b: &TriadEstimates) {
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(
            a.triangles.variance.to_bits(),
            b.triangles.variance.to_bits()
        );
        assert_eq!(a.wedges.value.to_bits(), b.wedges.value.to_bits());
        assert_eq!(a.wedges.variance.to_bits(), b.wedges.variance.to_bits());
        assert_eq!(a.tri_wedge_cov.to_bits(), b.tri_wedge_cov.to_bits());
    }

    #[test]
    fn tree_merge_is_bit_identical_to_flat_for_any_grouping() {
        let parts = synthetic_parts(16);
        let flat = TriadEstimates::merged_colored(&parts);
        // Uneven aggregator fan-ins, leaves kept in leaf order.
        for splits in [vec![8, 8], vec![4, 4, 4, 4], vec![1, 15], vec![5, 6, 5]] {
            let mut groups: Vec<&[TriadEstimates]> = Vec::new();
            let mut at = 0;
            for len in splits {
                groups.push(&parts[at..at + len]);
                at += len;
            }
            let tree = TriadEstimates::merged_colored_tree(&groups);
            assert_bits_eq(&tree, &flat);
        }
    }

    #[test]
    fn tree_merge_partial_full_set_matches_flat_and_extrapolates_otherwise() {
        let parts = synthetic_parts(8);
        let groups: Vec<&[TriadEstimates]> = vec![&parts[..3], &parts[3..]];
        let full = TriadEstimates::merged_colored_tree_partial(&groups, 8);
        assert_bits_eq(&full, &TriadEstimates::merged_colored(&parts));
        // Only the first aggregator's leaves reported out of S = 8.
        let partial = TriadEstimates::merged_colored_tree_partial(&[&parts[..3]], 8);
        assert_bits_eq(
            &partial,
            &TriadEstimates::merged_colored_partial(&parts[..3], 8),
        );
    }

    #[test]
    fn widened_for_loss_grows_variance_and_keeps_values() {
        let base = TriadEstimates::from_parts(
            Estimate {
                value: 100.0,
                variance: 25.0,
            },
            Estimate {
                value: 600.0,
                variance: 100.0,
            },
            10.0,
        );
        let w = base.widened_for_loss(0.1);
        assert_eq!(w.triangles.value, 100.0);
        assert_eq!(w.triangles.variance, 25.0 + 100.0);
        assert_eq!(w.wedges.value, 600.0);
        assert_eq!(w.wedges.variance, 100.0 + 3600.0);
        assert_eq!(w.tri_wedge_cov, 10.0);
        // Zero loss changes nothing.
        let same = base.widened_for_loss(0.0);
        assert_eq!(same.triangles.variance, base.triangles.variance);
        // Negative input (float noise) is clamped, never shrinks.
        let clamped = base.widened_for_loss(-0.5);
        assert_eq!(clamped.triangles.variance, base.triangles.variance);
    }

    #[test]
    fn triad_bundle_derives_clustering() {
        let b = TriadEstimates::from_parts(Estimate::exact(10.0), Estimate::exact(60.0), 0.0);
        assert!((b.clustering.value - 0.5).abs() < 1e-12);
    }
}
