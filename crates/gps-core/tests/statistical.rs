//! Statistical validation of the paper's theorems on real sampling runs.
//!
//! These tests exercise the estimators in the regime the theory speaks to:
//! reservoir far smaller than the stream, repeated over independent seeds.
//! They check unbiasedness (Theorems 2/4/6), the variance ordering the paper
//! demonstrates empirically (in-stream ≤ post-stream), and rough 95% CI
//! coverage. Tolerances are loose enough to keep flake probability
//! negligible while still catching sign/factor errors in the estimators.

use gps_core::weights::TriangleWeight;
use gps_core::{post_stream, GpsSampler, InStreamEstimator};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_stream::gen;
use gps_stream::permuted;

/// A triangle-rich test graph: Holme–Kim, ~3.3K edges.
fn test_graph() -> Vec<Edge> {
    gen::holme_kim(1_200, 3, 0.6, 2024)
}

struct Truth {
    triangles: f64,
    wedges: f64,
}

fn ground_truth(edges: &[Edge]) -> Truth {
    let g = CsrGraph::from_edges(edges);
    Truth {
        triangles: exact::triangle_count(&g) as f64,
        wedges: exact::wedge_count(&g) as f64,
    }
}

#[test]
fn post_stream_triangle_and_wedge_estimates_are_unbiased() {
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 6; // strong subsampling; evictions guaranteed
    let runs = 60;
    let (mut tri_sum, mut wedge_sum) = (0.0, 0.0);
    for seed in 0..runs {
        let stream = permuted(&edges, 1000 + seed);
        let mut s = GpsSampler::new(m, TriangleWeight::default(), seed);
        s.process_stream(stream);
        assert_eq!(s.len(), m);
        assert!(s.threshold() > 0.0);
        let est = post_stream::estimate(&s);
        tri_sum += est.triangles.value;
        wedge_sum += est.wedges.value;
    }
    let tri_mean = tri_sum / runs as f64;
    let wedge_mean = wedge_sum / runs as f64;
    assert!(
        (tri_mean - truth.triangles).abs() / truth.triangles < 0.10,
        "triangle mean {tri_mean} vs truth {}",
        truth.triangles
    );
    assert!(
        (wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
        "wedge mean {wedge_mean} vs truth {}",
        truth.wedges
    );
}

#[test]
fn in_stream_triangle_and_wedge_estimates_are_unbiased() {
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 6;
    let runs = 60;
    let (mut tri_sum, mut wedge_sum) = (0.0, 0.0);
    for seed in 0..runs {
        let stream = permuted(&edges, 2000 + seed);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        est.process_stream(stream);
        tri_sum += est.triangle_count();
        wedge_sum += est.wedge_count();
    }
    let tri_mean = tri_sum / runs as f64;
    let wedge_mean = wedge_sum / runs as f64;
    assert!(
        (tri_mean - truth.triangles).abs() / truth.triangles < 0.10,
        "triangle mean {tri_mean} vs truth {}",
        truth.triangles
    );
    assert!(
        (wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
        "wedge mean {wedge_mean} vs truth {}",
        truth.wedges
    );
}

#[test]
fn in_stream_error_is_no_worse_than_post_stream_on_average() {
    // The paper's headline empirical claim (Table 1, Table 3): in-stream
    // estimation, on the SAME sample, achieves lower error/variance than
    // post-stream. Compare mean squared relative error over seeds.
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 6;
    let runs = 40;
    let (mut post_sq, mut in_sq) = (0.0, 0.0);
    for seed in 0..runs {
        let stream = permuted(&edges, 3000 + seed);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        est.process_stream(stream);
        let in_err = (est.triangle_count() - truth.triangles) / truth.triangles;
        let post = post_stream::estimate(est.sampler());
        let post_err = (post.triangles.value - truth.triangles) / truth.triangles;
        in_sq += in_err * in_err;
        post_sq += post_err * post_err;
    }
    assert!(
        in_sq <= post_sq * 1.25,
        "in-stream MSE ({in_sq:.4}) should not exceed post-stream MSE ({post_sq:.4}) by >25%"
    );
}

#[test]
fn confidence_intervals_cover_the_truth_most_of_the_time() {
    // The paper computes X̂ ± 1.96·sqrt(V̂ar); nominal coverage is 95%.
    // With 40 runs we assert ≥ 80% to keep the test robust.
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 5;
    let runs = 40;
    let mut covered_tri = 0;
    let mut covered_wedge = 0;
    for seed in 0..runs {
        let stream = permuted(&edges, 4000 + seed);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        est.process_stream(stream);
        let e = est.estimates();
        let (lb, ub) = e.triangles.ci95();
        if lb <= truth.triangles && truth.triangles <= ub {
            covered_tri += 1;
        }
        let (lb, ub) = e.wedges.ci95();
        if lb <= truth.wedges && truth.wedges <= ub {
            covered_wedge += 1;
        }
    }
    assert!(
        covered_tri >= runs * 8 / 10,
        "triangle CI coverage too low: {covered_tri}/{runs}"
    );
    assert!(
        covered_wedge >= runs * 8 / 10,
        "wedge CI coverage too low: {covered_wedge}/{runs}"
    );
}

#[test]
fn clustering_coefficient_estimates_converge() {
    let edges = test_graph();
    let g = CsrGraph::from_edges(&edges);
    let alpha = exact::global_clustering(&g);
    let m = edges.len() / 4;
    let runs = 30;
    let mut sum = 0.0;
    for seed in 0..runs {
        let stream = permuted(&edges, 5000 + seed);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        est.process_stream(stream);
        sum += est.estimates().clustering.value;
    }
    let mean = sum / runs as f64;
    assert!(
        (mean - alpha).abs() / alpha < 0.10,
        "clustering mean {mean} vs truth {alpha}"
    );
}

#[test]
fn triangle_weighting_beats_uniform_weighting_for_post_stream_triangles() {
    // Property S3 / §3.5: the variance-optimized weights W = 9|△̂(k)|+1
    // preferentially retain triangle edges, which is what post-stream
    // estimation needs (whole triangles must survive in the final sample).
    // Measured here: a multi-x MSE improvement over uniform weights.
    // (In-stream estimation only needs the first two edges alive at the
    // moment the third arrives and is near-optimal under both weightings —
    // see the `ablation` bench for the full comparison.)
    use gps_core::weights::UniformWeight;
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 8;
    let runs = 40;
    let (mut uni_sq, mut tri_sq) = (0.0, 0.0);
    for seed in 0..runs {
        let stream = permuted(&edges, 6000 + seed);
        let mut a = GpsSampler::new(m, UniformWeight, seed);
        a.process_stream(stream.iter().copied());
        let ua = (post_stream::estimate(&a).triangles.value - truth.triangles) / truth.triangles;
        uni_sq += ua * ua;
        let mut b = GpsSampler::new(m, TriangleWeight::default(), seed);
        b.process_stream(stream);
        let ub = (post_stream::estimate(&b).triangles.value - truth.triangles) / truth.triangles;
        tri_sq += ub * ub;
    }
    assert!(
        tri_sq < uni_sq / 1.5,
        "triangle-weighted post-stream MSE ({tri_sq:.4}) should clearly beat uniform ({uni_sq:.4})"
    );
}

#[test]
fn mean_variance_estimate_tracks_empirical_variance() {
    // E[V̂ar] should approximate the actual sampling variance of the
    // estimator (Theorem 3(iii)/Theorem 7). Check within a factor of 3 —
    // enough to catch wrong normalizations (off by 2/3, missing covariance).
    let edges = test_graph();
    let truth = ground_truth(&edges);
    let m = edges.len() / 6;
    let runs = 80;
    let mut values = Vec::with_capacity(runs as usize);
    let mut var_sum = 0.0;
    for seed in 0..runs {
        let stream = permuted(&edges, 7000 + seed);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        est.process_stream(stream);
        let e = est.estimates();
        values.push(e.triangles.value);
        var_sum += e.triangles.variance;
    }
    let mean_est_var = var_sum / runs as f64;
    let mean: f64 = values.iter().sum::<f64>() / runs as f64;
    let empirical_var: f64 =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (runs as f64 - 1.0);
    assert!(
        mean_est_var > empirical_var / 3.0 && mean_est_var < empirical_var * 3.0,
        "estimated variance {mean_est_var:.3e} should track empirical {empirical_var:.3e} \
         (truth {})",
        truth.triangles
    );
}
