//! Direct validation of the paper's Martingale theorems on the implemented
//! estimators, using small fixed graphs and many independent samples.
//!
//! These tests go beyond "the counts look right": they check the exact
//! statistical identities the proofs assert — unbiasedness of edge products
//! (Theorem 2), unbiasedness and nonnegativity of the covariance estimator
//! (Theorem 3), and unbiasedness of stopped products (Theorems 4/6).

use gps_core::weights::UniformWeight;
use gps_core::{GpsSampler, InStreamEstimator};
use gps_graph::types::Edge;

/// A fixed 8-edge test graph: two triangles sharing edge (1,2), plus tails.
///
/// ```text
///   0 — 1 — 3        triangles: (0,1,2) and (1,2,3)
///    \ / \ /         J1 = {(0,1),(1,2),(0,2)}  J2 = {(1,2),(1,3),(2,3)}
///     2   4 — 5      J1 ∩ J2 = {(1,2)}
/// ```
fn graph() -> Vec<Edge> {
    vec![
        Edge::new(0, 1),
        Edge::new(1, 2),
        Edge::new(0, 2),
        Edge::new(1, 3),
        Edge::new(2, 3),
        Edge::new(1, 4),
        Edge::new(4, 5),
        Edge::new(2, 5),
    ]
}

fn tri1() -> [Edge; 3] {
    [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]
}

fn tri2() -> [Edge; 3] {
    [Edge::new(1, 2), Edge::new(1, 3), Edge::new(2, 3)]
}

/// Streams the fixed graph (fixed order — arrival order is deterministic in
/// the theory; only `u(k)` is random) into a capacity-5 sampler.
fn sample(seed: u64) -> GpsSampler<UniformWeight> {
    let mut s = GpsSampler::new(5, UniformWeight, seed);
    s.process_stream(graph());
    s
}

#[test]
fn theorem2_edge_products_are_unbiased() {
    // E[Ŝ_J] = 1 for every J fully arrived. We test single edges, a wedge
    // and both triangles. (Higher-order products like the 5-edge union are
    // also unbiased but have heavy-tailed — here infinite-variance —
    // distributions at m = 5, so their Monte-Carlo means converge far too
    // slowly to assert on; see the paper's variance discussion.)
    let runs = 20_000u64;
    let wedge = [Edge::new(0, 1), Edge::new(1, 3)];
    let single = [Edge::new(4, 5)];
    let (mut s1, mut s2, mut sw, mut se) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..runs {
        let s = sample(seed);
        s1 += s.subgraph_estimate(&tri1());
        s2 += s.subgraph_estimate(&tri2());
        sw += s.subgraph_estimate(&wedge);
        se += s.subgraph_estimate(&single);
    }
    let n = runs as f64;
    for (label, mean) in [
        ("S_J1", s1 / n),
        ("S_J2", s2 / n),
        ("S_wedge", sw / n),
        ("S_edge", se / n),
    ] {
        assert!(
            (mean - 1.0).abs() < 0.06,
            "{label} should have expectation 1, got {mean:.4}"
        );
    }
}

#[test]
fn theorem3_covariance_estimator_is_unbiased_and_nonnegative() {
    // Empirical Cov(Ŝ_J1, Ŝ_J2) over many samples must match the mean of
    // the estimator Ĉ = Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1), and both must be ≥ 0.
    let runs = 40_000u64;
    let (mut sum1, mut sum2, mut sum_prod, mut sum_c) = (0.0, 0.0, 0.0, 0.0);
    let union: Vec<Edge> = {
        let mut u = tri1().to_vec();
        u.extend(tri2());
        u
    };
    let shared = [Edge::new(1, 2)];
    for seed in 0..runs {
        let s = sample(seed);
        let a = s.subgraph_estimate(&tri1());
        let b = s.subgraph_estimate(&tri2());
        sum1 += a;
        sum2 += b;
        sum_prod += a * b;
        let c = s.subgraph_estimate(&union) * (s.subgraph_estimate(&shared) - 1.0);
        assert!(c >= -1e-12, "Theorem 3(ii): Ĉ must be nonnegative, got {c}");
        sum_c += c;
    }
    let n = runs as f64;
    let empirical_cov = sum_prod / n - (sum1 / n) * (sum2 / n);
    let mean_c = sum_c / n;
    assert!(
        empirical_cov >= -0.05,
        "covariance should be ≥ 0, got {empirical_cov:.4}"
    );
    // Same scale and sign; MC noise on 4th moments is substantial, so allow
    // a generous band while still catching factor-of-2 errors.
    assert!(
        (mean_c - empirical_cov).abs() < 0.20 * (1.0 + empirical_cov.abs().max(mean_c.abs())),
        "E[Ĉ] = {mean_c:.4} should approximate Cov = {empirical_cov:.4}"
    );
}

#[test]
fn theorem3_variance_estimator_matches_empirical_variance() {
    // V̂ar(Ŝ_J) = Ŝ_J(Ŝ_J − 1) is unbiased for Var(Ŝ_J).
    let runs = 40_000u64;
    let (mut sum, mut sum_sq, mut sum_v) = (0.0, 0.0, 0.0);
    for seed in 0..runs {
        let s = sample(seed);
        let a = s.subgraph_estimate(&tri1());
        sum += a;
        sum_sq += a * a;
        sum_v += a * (a - 1.0);
    }
    let n = runs as f64;
    let empirical_var = sum_sq / n - (sum / n) * (sum / n);
    let mean_v = sum_v / n;
    assert!(
        (mean_v - empirical_var).abs() < 0.15 * (1.0 + empirical_var),
        "E[V̂] = {mean_v:.4} should approximate Var = {empirical_var:.4}"
    );
}

#[test]
fn theorem6_in_stream_snapshot_count_is_unbiased() {
    // The fixed graph has exactly 2 triangles; the in-stream snapshot sum
    // must be unbiased for 2 under heavy subsampling (m = 4 of 8 edges).
    let runs = 30_000u64;
    let mut sum = 0.0;
    for seed in 0..runs {
        let mut est = InStreamEstimator::new(4, UniformWeight, seed);
        est.process_stream(graph());
        sum += est.triangle_count();
    }
    let mean = sum / runs as f64;
    assert!(
        (mean - 2.0).abs() < 0.08,
        "in-stream snapshot count should have expectation 2, got {mean:.4}"
    );
}

#[test]
fn product_form_identity_of_the_covariance_estimator() {
    // Eq. (7): Ŝ_J1·Ŝ_J2 − Ŝ_{J1\J2}·Ŝ_{J2\J1}·Ŝ_{J1∩J2}
    //        = Ŝ_{J1∪J2}·(Ŝ_{J1∩J2} − 1)
    // holds pathwise (not just in expectation) because Ŝ is a product over
    // edges. Verify on real samples.
    let j1_minus = [Edge::new(0, 1), Edge::new(0, 2)];
    let j2_minus = [Edge::new(1, 3), Edge::new(2, 3)];
    let shared = [Edge::new(1, 2)];
    let union: Vec<Edge> = {
        let mut u = tri1().to_vec();
        u.extend(tri2());
        u
    };
    for seed in 0..2_000u64 {
        let s = sample(seed);
        let lhs = s.subgraph_estimate(&tri1()) * s.subgraph_estimate(&tri2())
            - s.subgraph_estimate(&j1_minus)
                * s.subgraph_estimate(&j2_minus)
                * s.subgraph_estimate(&shared);
        let rhs = s.subgraph_estimate(&union) * (s.subgraph_estimate(&shared) - 1.0);
        assert!(
            (lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()),
            "Eq. (7) identity violated at seed {seed}: {lhs} vs {rhs}"
        );
    }
}

#[test]
fn fixed_size_is_exact_at_every_prefix() {
    // Property S1 holds along the whole stream, not just at the end.
    for seed in 0..50u64 {
        let mut s = GpsSampler::new(5, UniformWeight, seed);
        for (i, e) in graph().into_iter().enumerate() {
            s.process(e);
            assert_eq!(s.len(), (i + 1).min(5));
        }
    }
}
