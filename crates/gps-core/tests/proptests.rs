//! Property-based tests for the GPS core.

use gps_core::weights::{TriangleWeight, UniformWeight};
use gps_core::{heap, post_stream, GpsSampler, InStreamEstimator};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use proptest::prelude::*;

/// Random simple edge list over up to `max_n` nodes.
fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .filter(|e| seen.insert(e.key()))
            .collect()
    })
}

proptest! {
    #[test]
    fn heap_pops_sorted(priorities in prop::collection::vec(0.0f64..1e12, 0..200)) {
        let mut h = heap::MinHeap::new();
        for (i, &p) in priorities.iter().enumerate() {
            h.push(heap::HeapEntry { priority: p, slot: i as u32 });
            prop_assert!(h.check_invariant());
        }
        let mut out = vec![];
        while let Some(e) = h.pop() {
            out.push(e.priority);
        }
        let mut expect = priorities.clone();
        expect.sort_by(f64::total_cmp);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn reservoir_respects_capacity_and_threshold_monotonicity(
        edges in arb_edges(64, 300),
        capacity in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut s = GpsSampler::new(capacity, TriangleWeight::default(), seed);
        let mut last_z = 0.0;
        for (i, &e) in edges.iter().enumerate() {
            s.process(e);
            prop_assert!(s.len() <= capacity);
            prop_assert!(s.len() <= i + 1);
            prop_assert!(s.threshold() >= last_z, "threshold must be monotone");
            last_z = s.threshold();
        }
        // Fixed-size property S1: once enough distinct edges arrived, the
        // sample is exactly at capacity.
        if edges.len() >= capacity {
            prop_assert_eq!(s.len(), capacity);
        }
        // All inclusion probabilities in (0, 1].
        for se in s.edges() {
            prop_assert!(se.inclusion_prob > 0.0 && se.inclusion_prob <= 1.0);
        }
    }

    #[test]
    fn full_retention_post_stream_matches_exact_counts(edges in arb_edges(40, 120)) {
        // Capacity ≥ stream length: nothing discarded, z* = 0, so the
        // estimates must equal the exact subgraph counts of the streamed
        // graph — for ANY input graph.
        let mut s = GpsSampler::new(edges.len() + 1, TriangleWeight::default(), 7);
        s.process_stream(edges.iter().copied());
        let est = post_stream::estimate(&s);
        let g = CsrGraph::from_edges(&edges);
        let t = exact::triangle_count(&g) as f64;
        let w = exact::wedge_count(&g) as f64;
        prop_assert!((est.triangles.value - t).abs() < 1e-9 * (1.0 + t));
        prop_assert!((est.wedges.value - w).abs() < 1e-9 * (1.0 + w));
        prop_assert_eq!(est.triangles.variance, 0.0);
        prop_assert_eq!(est.wedges.variance, 0.0);
    }

    #[test]
    fn full_retention_in_stream_matches_exact_counts(
        edges in arb_edges(40, 120),
        seed in any::<u64>(),
    ) {
        let mut est = InStreamEstimator::new(edges.len() + 1, TriangleWeight::default(), seed);
        est.process_stream(edges.iter().copied());
        let g = CsrGraph::from_edges(&edges);
        let t = exact::triangle_count(&g) as f64;
        let w = exact::wedge_count(&g) as f64;
        prop_assert!((est.triangle_count() - t).abs() < 1e-9 * (1.0 + t));
        prop_assert!((est.wedge_count() - w).abs() < 1e-9 * (1.0 + w));
    }

    #[test]
    fn in_stream_sample_identical_to_bare_sampler(
        edges in arb_edges(48, 200),
        capacity in 2usize..24,
        seed in any::<u64>(),
    ) {
        let mut bare = GpsSampler::new(capacity, TriangleWeight::default(), seed);
        bare.process_stream(edges.iter().copied());
        let mut wrapped = InStreamEstimator::new(capacity, TriangleWeight::default(), seed);
        wrapped.process_stream(edges.iter().copied());
        let mut a: Vec<Edge> = bare.edges().map(|s| s.edge).collect();
        let mut b: Vec<Edge> = wrapped.sampler().edges().map(|s| s.edge).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(bare.threshold(), wrapped.sampler().threshold());
    }

    #[test]
    fn variance_estimates_are_nonnegative(
        edges in arb_edges(48, 250),
        capacity in 4usize..24,
        seed in any::<u64>(),
    ) {
        let mut wrapped = InStreamEstimator::new(capacity, TriangleWeight::default(), seed);
        wrapped.process_stream(edges.iter().copied());
        let e_in = wrapped.estimates();
        prop_assert!(e_in.triangles.variance >= 0.0);
        prop_assert!(e_in.wedges.variance >= 0.0);
        prop_assert!(e_in.tri_wedge_cov >= 0.0);
        let e_post = post_stream::estimate(wrapped.sampler());
        prop_assert!(e_post.triangles.variance >= 0.0);
        prop_assert!(e_post.wedges.variance >= 0.0);
        prop_assert!(e_post.tri_wedge_cov >= 0.0);
    }

    #[test]
    fn subgraph_estimate_is_product_of_inverse_probs(
        edges in arb_edges(32, 100),
        seed in any::<u64>(),
    ) {
        let mut s = GpsSampler::new(16, UniformWeight, seed);
        s.process_stream(edges.iter().copied());
        let sampled: Vec<Edge> = s.edges().map(|e| e.edge).collect();
        if sampled.len() >= 2 {
            let subgraph = [sampled[0], sampled[1]];
            let expect = 1.0 / s.inclusion_prob(sampled[0]).unwrap()
                / s.inclusion_prob(sampled[1]).unwrap();
            prop_assert!((s.subgraph_estimate(&subgraph) - expect).abs() < 1e-12);
        }
        // A subgraph containing an unsampled edge estimates 0.
        let absent = Edge::new(9999, 10000);
        prop_assert_eq!(s.subgraph_estimate(&[absent]), 0.0);
    }

    #[test]
    fn parallel_post_stream_agrees_with_serial(
        edges in arb_edges(64, 400),
        seed in any::<u64>(),
    ) {
        let mut s = GpsSampler::new(2048, TriangleWeight::default(), seed);
        s.process_stream(edges.iter().copied());
        let a = post_stream::estimate(&s);
        let b = post_stream::estimate_with_threads(&s, 3);
        prop_assert!((a.triangles.value - b.triangles.value).abs() < 1e-6 * (1.0 + a.triangles.value));
        prop_assert!((a.wedges.value - b.wedges.value).abs() < 1e-6 * (1.0 + a.wedges.value));
    }
}

proptest! {
    #[test]
    fn persist_round_trip_preserves_estimates(
        edges in arb_edges(48, 200),
        capacity in 4usize..32,
        seed in any::<u64>(),
    ) {
        use gps_core::persist;
        let mut sampler = GpsSampler::new(capacity, TriangleWeight::default(), seed);
        sampler.process_stream(edges.iter().copied());
        let before = post_stream::estimate(&sampler);

        let mut buf = Vec::new();
        persist::save(&sampler, &mut buf).unwrap();
        let restored = persist::load(buf.as_slice()).unwrap().into_sampler(UniformWeight, 0);
        prop_assert_eq!(restored.len(), sampler.len());
        prop_assert_eq!(restored.threshold(), sampler.threshold());
        // Adjacency hash maps may iterate neighbors in a different order
        // after the rebuild, permuting float summation: allow 1-ULP-scale
        // relative error.
        let after = post_stream::estimate(&restored);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        prop_assert!(close(before.triangles.value, after.triangles.value));
        prop_assert!(close(before.wedges.value, after.wedges.value));
        prop_assert!(close(before.triangles.variance, after.triangles.variance));
    }

    #[test]
    fn local_counts_sum_to_three_times_global(
        edges in arb_edges(32, 150),
        capacity in 4usize..32,
        seed in any::<u64>(),
    ) {
        use gps_core::local::LocalTriangleCounter;
        let mut counter = LocalTriangleCounter::new(capacity, TriangleWeight::default(), seed);
        counter.process_stream(edges.iter().copied());
        // Each snapshot credits exactly three corners, so Σ local = 3·global.
        let local_sum: f64 = counter.top_k(usize::MAX).iter().map(|(_, c)| c).sum();
        prop_assert!((local_sum - 3.0 * counter.global_count()).abs()
            < 1e-9 * (1.0 + local_sum));
    }
}
