//! Same-seed sample equivalence across adjacency backends.
//!
//! `GpsSampler` consumes exactly one uniform draw per non-duplicate arrival,
//! and weight functions observe the sample only through topology counts
//! (triangles / wedges closed, degrees). Both adjacency backends agree on
//! those counts, so with equal seeds the samplers must produce the
//! *bit-identical* reservoir — same edges, same weights, same priorities —
//! and the identical threshold trajectory. This is the contract that lets
//! `bench_baseline` compare backends as a pure performance experiment.

use gps_core::weights::{EdgeWeight, TriadWeight, TriangleWeight, UniformWeight, WedgeWeight};
use gps_core::GpsSampler;
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_stream::{gen, permuted};
use proptest::prelude::*;

/// Random edge stream (duplicates intentionally allowed: the duplicate-skip
/// path must also behave identically on both backends).
fn arb_stream(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect()
    })
}

/// Runs the same stream through both backends and asserts bit-identical
/// reservoirs and thresholds.
fn assert_same_sample<W: EdgeWeight + Clone>(
    stream: &[Edge],
    capacity: usize,
    weight_fn: W,
    seed: u64,
) {
    let mut compact =
        GpsSampler::with_backend(capacity, weight_fn.clone(), seed, BackendKind::Compact);
    let mut hashmap = GpsSampler::with_backend(capacity, weight_fn, seed, BackendKind::HashMap);
    assert_eq!(compact.backend(), BackendKind::Compact);
    assert_eq!(hashmap.backend(), BackendKind::HashMap);
    for (i, &e) in stream.iter().enumerate() {
        let a = compact.process(e);
        let b = hashmap.process(e);
        assert_eq!(a, b, "arrival {i} ({e}) diverged");
        assert_eq!(
            compact.threshold(),
            hashmap.threshold(),
            "threshold diverged at arrival {i}"
        );
    }
    assert_eq!(compact.len(), hashmap.len());
    assert_eq!(compact.arrivals(), hashmap.arrivals());
    assert_eq!(compact.duplicates(), hashmap.duplicates());
    let mut ea: Vec<_> = compact
        .edges()
        .map(|s| (s.edge, s.weight.to_bits(), s.priority.to_bits()))
        .collect();
    let mut eb: Vec<_> = hashmap
        .edges()
        .map(|s| (s.edge, s.weight.to_bits(), s.priority.to_bits()))
        .collect();
    ea.sort();
    eb.sort();
    assert_eq!(ea, eb, "reservoir contents diverged");
}

proptest! {
    #[test]
    fn triangle_weight_samples_identically(
        stream in arb_stream(24, 400),
        capacity in 1usize..64,
        seed in any::<u64>(),
    ) {
        assert_same_sample(&stream, capacity, TriangleWeight::default(), seed);
    }

    #[test]
    fn triad_weight_samples_identically(
        stream in arb_stream(16, 250),
        capacity in 1usize..32,
        seed in any::<u64>(),
    ) {
        assert_same_sample(&stream, capacity, TriadWeight::default(), seed);
    }

    #[test]
    fn uniform_and_wedge_weights_sample_identically(
        stream in arb_stream(32, 300),
        capacity in 1usize..48,
        seed in any::<u64>(),
    ) {
        assert_same_sample(&stream, capacity, UniformWeight, seed);
        assert_same_sample(&stream, capacity, WedgeWeight::default(), seed);
    }
}

#[test]
fn holme_kim_stream_samples_identically_at_scale() {
    // A realistic clustered stream large enough to force evictions, node
    // slot reuse, spill-block churn and the hash-probe intersection arm.
    let edges = permuted(&gen::holme_kim(3_000, 4, 0.6, 11), 5);
    assert!(edges.len() > 10_000);
    assert_same_sample(&edges, 1_500, TriangleWeight::default(), 42);
}

#[test]
fn rmat_stream_samples_identically_with_hubs() {
    // R-MAT's skewed degrees produce hubs whose sampled degree blows past
    // every inline/linear-probe threshold.
    let edges = permuted(&gen::rmat(12, 20_000, gen::RmatParams::social(), 3), 9);
    assert_same_sample(&edges, 2_000, TriangleWeight::default(), 7);
}
