//! Deterministic fault injection for the sharded engine.
//!
//! A [`FaultPlan`] scripts failures at exact per-shard arrival counts:
//! worker panics, stalls (bounded or permanent), slowdowns, and checkpoint
//! corruption. Because every trigger is keyed on a shard's own arrival
//! counter — not on wall-clock time or thread scheduling — a faulted run is
//! **bit-reproducible**: the same seed and plan crash the same shard at the
//! same arrival, lose the same checkpoint interval, and restore the same
//! state, every time. The chaos suites in `gps-chaos` lean on this to pin
//! recovery semantics (and estimator unbiasedness after recovery) with
//! exact assertions instead of sleeps and tolerances.
//!
//! Plans are built fluently and handed to
//! [`ShardedGps::with_config_and_faults`](crate::ShardedGps::with_config_and_faults)
//! or
//! [`ShardedGps::with_estimation_and_faults`](crate::ShardedGps::with_estimation_and_faults):
//!
//! ```
//! use gps_engine::{EngineConfig, FaultPlan, ShardedGps};
//! use gps_core::UniformWeight;
//! use gps_graph::Edge;
//!
//! let plan = FaultPlan::new().panic_at(0, 50);
//! let cfg = EngineConfig {
//!     checkpoint_every: 16,
//!     ..EngineConfig::new(16, 2, 7)
//! };
//! let mut engine = ShardedGps::with_config_and_faults(cfg, UniformWeight, plan);
//! for i in 0..200u32 {
//!     engine.push(Edge::new(i, i + 1));
//! }
//! engine.finish();
//! // Shard 0 panicked at its 50th arrival, restarted from the checkpoint
//! // at 48, and lost exactly the (48, 50] interval.
//! assert!(engine.health().degraded());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the worker thread (payload
    /// `"chaos: injected panic (shard …, arrival …)"`), exercising
    /// containment and checkpoint restart.
    Panic,
    /// Sleep the worker for `millis` milliseconds (`u64::MAX` parks it
    /// forever), exercising backpressure, push timeouts, and the
    /// finish-time straggler write-off.
    Stall {
        /// Stall duration in milliseconds; `u64::MAX` never wakes.
        millis: u64,
    },
    /// Sleep `micros` microseconds before each of the next `arrivals`
    /// arrivals (the trigger arrival inclusive) — a soft degradation that
    /// must *not* trip any failure path, only slow the shard down.
    Slowdown {
        /// Per-arrival delay in microseconds.
        micros: u64,
        /// How many consecutive arrivals are slowed.
        arrivals: u64,
    },
    /// Truncate every checkpoint the shard writes at or after the trigger
    /// arrival, so the next restart finds an unparseable checkpoint and
    /// must fall back to a from-scratch restart (with the whole lost
    /// prefix accounted).
    CorruptCheckpoint,
}

/// One scripted fault: `kind` fires on `shard` at its `at_arrival`-th
/// per-shard arrival (`0` fires at worker spawn, before any arrival).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target shard index.
    pub shard: usize,
    /// Per-shard arrival count that triggers the fault; `0` = at spawn.
    pub at_arrival: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic failure script for one engine run (see the module docs).
///
/// `Panic` and `Stall` events fire exactly once — a shard restarted after a
/// panic replays arrivals past the trigger point without re-tripping it.
/// `Slowdown` covers its arrival range wherever execution passes through
/// it, and `CorruptCheckpoint` poisons every checkpoint from its trigger
/// on (so a "next good checkpoint" can never mask the corruption).
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<(FaultEvent, AtomicBool)>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engine behaves exactly unfaulted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an explicit [`FaultEvent`].
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push((event, AtomicBool::new(false)));
        self
    }

    /// Panics `shard` at its `at_arrival`-th arrival.
    pub fn panic_at(self, shard: usize, at_arrival: u64) -> Self {
        self.with(FaultEvent {
            shard,
            at_arrival,
            kind: FaultKind::Panic,
        })
    }

    /// Stalls `shard` for `millis` ms at its `at_arrival`-th arrival.
    pub fn stall_at(self, shard: usize, at_arrival: u64, millis: u64) -> Self {
        self.with(FaultEvent {
            shard,
            at_arrival,
            kind: FaultKind::Stall { millis },
        })
    }

    /// Parks `shard` forever at its `at_arrival`-th arrival.
    pub fn stall_forever(self, shard: usize, at_arrival: u64) -> Self {
        self.with(FaultEvent {
            shard,
            at_arrival,
            kind: FaultKind::Stall { millis: u64::MAX },
        })
    }

    /// Slows `shard` by `micros` µs per arrival for `arrivals` arrivals
    /// starting at its `at_arrival`-th.
    pub fn slowdown_at(self, shard: usize, at_arrival: u64, micros: u64, arrivals: u64) -> Self {
        self.with(FaultEvent {
            shard,
            at_arrival,
            kind: FaultKind::Slowdown { micros, arrivals },
        })
    }

    /// Corrupts (truncates) every checkpoint `shard` writes at or after
    /// its `at_arrival`-th arrival.
    pub fn corrupt_checkpoints_at(self, shard: usize, at_arrival: u64) -> Self {
        self.with(FaultEvent {
            shard,
            at_arrival,
            kind: FaultKind::CorruptCheckpoint,
        })
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Fires spawn-time (`at_arrival == 0`) faults for `shard`. Called by
    /// the worker prologue, inside panic containment.
    pub(crate) fn at_spawn(&self, shard: usize) {
        self.fire(shard, 0);
    }

    /// Fires faults scheduled for `shard`'s `arrival`-th arrival. Called
    /// by the worker immediately before processing that arrival, inside
    /// panic containment.
    pub(crate) fn before_arrival(&self, shard: usize, arrival: u64) {
        self.fire(shard, arrival);
    }

    /// True when a checkpoint written by `shard` at watermark `arrival`
    /// must be corrupted.
    pub(crate) fn corrupts_checkpoint(&self, shard: usize, arrival: u64) -> bool {
        self.events.iter().any(|(ev, _)| {
            ev.shard == shard && ev.kind == FaultKind::CorruptCheckpoint && arrival >= ev.at_arrival
        })
    }

    fn fire(&self, shard: usize, arrival: u64) {
        for (ev, fired) in &self.events {
            if ev.shard != shard {
                continue;
            }
            match ev.kind {
                FaultKind::Panic => {
                    // ordering: the flag is a fire-once latch read and
                    // written only from this shard's (single) live worker
                    // thread; Relaxed is enough, no data is published.
                    if arrival == ev.at_arrival && !fired.swap(true, Ordering::Relaxed) {
                        panic!("chaos: injected panic (shard {shard}, arrival {arrival})");
                    }
                }
                FaultKind::Stall { millis } => {
                    // ordering: same single-writer fire-once latch as Panic.
                    if arrival == ev.at_arrival && !fired.swap(true, Ordering::Relaxed) {
                        if millis == u64::MAX {
                            loop {
                                std::thread::sleep(Duration::from_secs(3600));
                            }
                        }
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                }
                FaultKind::Slowdown { micros, arrivals } => {
                    if arrival >= ev.at_arrival && arrival < ev.at_arrival.saturating_add(arrivals)
                    {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                }
                FaultKind::CorruptCheckpoint => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fires_exactly_once() {
        let plan = FaultPlan::new().panic_at(0, 5);
        let hit =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_arrival(0, 5)));
        assert!(hit.is_err(), "first pass must panic");
        // A restarted worker replaying arrival 5 must sail through.
        plan.before_arrival(0, 5);
    }

    #[test]
    fn faults_are_shard_scoped() {
        let plan = FaultPlan::new().panic_at(1, 5);
        plan.before_arrival(0, 5); // other shard: no fire
        plan.at_spawn(0);
        assert!(!plan.corrupts_checkpoint(0, 100));
    }

    #[test]
    fn corrupt_checkpoint_covers_every_later_watermark() {
        let plan = FaultPlan::new().corrupt_checkpoints_at(2, 64);
        assert!(!plan.corrupts_checkpoint(2, 63));
        assert!(plan.corrupts_checkpoint(2, 64));
        assert!(plan.corrupts_checkpoint(2, 6400));
        assert!(!plan.corrupts_checkpoint(1, 6400));
    }

    #[test]
    fn slowdown_covers_its_range_without_failing() {
        let plan = FaultPlan::new().slowdown_at(0, 3, 1, 2);
        for a in 0..10 {
            plan.before_arrival(0, a); // arrivals 3 and 4 sleep 1µs; none panic
        }
        assert!(plan.len() == 1 && !plan.is_empty());
    }
}
