//! The per-shard runner: what one shard executes per edge, with no
//! threading attached.
//!
//! [`ShardRunner`] is the exact logic a [`ShardedGps`](crate::ShardedGps)
//! worker thread drives — a bare [`GpsSampler`] (`GPSUpdate` only) or an
//! [`InStreamEstimator`] (paper Algorithm 3 per shard) plus the engine's
//! checkpoint and epoch-report plumbing — factored out of the worker loop
//! so a host that is *not* a thread can drive it too. The discrete-event
//! simulator in `gps-sim` builds S ≫ cores shard-nodes on this type: every
//! edge processed, checkpoint serialized, and restart seed derived in the
//! sim goes through the same code the production engine runs, which is
//! what makes the sim a test harness over production logic rather than a
//! model of it.
//!
//! The contract worth spelling out:
//!
//! - [`ShardRunner::checkpoint_bytes`] is the engine's recovery checkpoint
//!   format verbatim: a `gps_core::persist` `gps-sample v1` section for a
//!   plain shard, `v2` (sampler + in-stream accumulators, restoring
//!   *exactly*) for an estimating one.
//! - [`ShardRunner::from_checkpoint`] is the engine's restart path
//!   verbatim, including the corrupt-checkpoint fallback to a from-scratch
//!   shard and the deterministic restart RNG stream
//!   ([`restart_seed`]).

use crate::engine::{EpochHook, ShardReport};
use crate::partition::{shard_seed, splitmix64};
use gps_core::persist::{self, SavedSample};
use gps_core::weights::EdgeWeight;
use gps_core::{GpsSampler, InStreamEstimator, InStreamState, TriadEstimates};
use gps_graph::types::Edge;
use gps_graph::BackendKind;

/// The deterministic RNG seed a shard restarts with after its
/// `restarts`-th recovery: the restart ordinal folded into the shard's
/// base seed, so every restart draws a fresh — but reproducible — RNG
/// stream (`restarts == 0` is *not* the original stream; the original
/// shard seed is `shard_seed(engine_seed, shard)` unmixed).
pub fn restart_seed(engine_seed: u64, shard: usize, restarts: u32) -> u64 {
    splitmix64(shard_seed(engine_seed, shard) ^ u64::from(restarts))
}

/// What each shard runs per edge: a bare sampler (`GPSUpdate` only) or an
/// in-stream estimator (snapshot estimation inside the engine, paper Alg 3
/// per shard) with an optional report hook. See the [module docs](self).
pub struct ShardRunner<W> {
    inner: Inner<W>,
}

enum Inner<W> {
    Plain(GpsSampler<W>),
    Live {
        shard: usize,
        est: InStreamEstimator<W>,
        hook: Option<EpochHook>,
        every: u64,
        next: u64,
        /// Arrival watermark of the previous report, for per-report batch
        /// attribution in `ShardReport::batch_arrivals`.
        last_report: u64,
    },
}

impl<W: EdgeWeight> ShardRunner<W> {
    /// A plain (post-stream-estimation-only) runner over `sampler`.
    pub fn plain(sampler: GpsSampler<W>) -> Self {
        ShardRunner {
            inner: Inner::Plain(sampler),
        }
    }

    /// An in-stream estimating runner for `shard`: wraps `sampler` in an
    /// [`InStreamEstimator`] — resumed *exactly* from `state` when given,
    /// seeded from the sampler's post-stream estimate otherwise — and
    /// fires `hook` every `every` per-shard arrivals (report positions are
    /// anchored at the sampler's current arrival watermark, so a resumed
    /// shard keeps its cadence instead of restarting it).
    pub fn estimating(
        shard: usize,
        sampler: GpsSampler<W>,
        state: Option<InStreamState>,
        hook: Option<EpochHook>,
        every: u64,
    ) -> Self {
        let start = sampler.arrivals();
        let next = start + every;
        let est = match state {
            Some(state) => InStreamEstimator::resume(sampler, state),
            None => InStreamEstimator::from_sampler(sampler),
        };
        ShardRunner {
            inner: Inner::Live {
                shard,
                est,
                hook,
                every,
                next,
                last_report: start,
            },
        }
    }

    /// Rebuilds a runner for `shard` from recovery-checkpoint `bytes` (as
    /// written by [`ShardRunner::checkpoint_bytes`]). Returns the runner,
    /// the arrival watermark it restarts from, and whether the checkpoint
    /// was corrupt — in which case the shard restarts from scratch with
    /// budget `scratch_capacity` at watermark 0, exactly like the engine's
    /// supervisor. `estimating` selects the runner kind (a v2 section's
    /// in-stream state is dropped for a plain runner); `every` is the
    /// report cadence for estimating runners.
    #[allow(clippy::too_many_arguments)]
    pub fn from_checkpoint(
        shard: usize,
        bytes: &[u8],
        weight_fn: W,
        seed: u64,
        backend: BackendKind,
        scratch_capacity: usize,
        estimating: bool,
        hook: Option<EpochHook>,
        every: u64,
    ) -> (Self, u64, bool) {
        let build = |sampler: GpsSampler<W>, state: Option<InStreamState>| {
            if estimating {
                Self::estimating(shard, sampler, state, hook, every)
            } else {
                Self::plain(sampler)
            }
        };
        match persist::load(bytes) {
            Ok(SavedSample {
                capacity,
                arrivals,
                threshold,
                records,
                in_stream,
            }) => {
                let sampler = GpsSampler::restore_with_backend(
                    capacity, weight_fn, seed, threshold, arrivals, records, backend,
                );
                (build(sampler, in_stream), arrivals, false)
            }
            Err(_) => {
                let sampler = GpsSampler::with_backend(scratch_capacity, weight_fn, seed, backend);
                (build(sampler, None), 0, true)
            }
        }
    }

    /// Feeds one stream arrival through the shard (sampler `GPSUpdate`, or
    /// snapshot-estimation update then `GPSUpdate` in estimating mode).
    #[inline]
    pub fn process(&mut self, edge: Edge) {
        match &mut self.inner {
            Inner::Plain(sampler) => {
                sampler.process(edge);
            }
            Inner::Live { est, .. } => {
                est.process(edge);
            }
        }
    }

    /// Arrivals this shard has consumed (its substream position).
    pub fn arrivals(&self) -> u64 {
        self.sampler().arrivals()
    }

    /// The underlying sampler (read-only).
    pub fn sampler(&self) -> &GpsSampler<W> {
        match &self.inner {
            Inner::Plain(sampler) => sampler,
            Inner::Live { est, .. } => est.sampler(),
        }
    }

    /// Current in-stream (snapshot) estimates of this shard's own
    /// monochromatic subgraph counts; `None` for a plain runner.
    pub fn estimates(&self) -> Option<TriadEstimates> {
        match &self.inner {
            Inner::Plain(_) => None,
            Inner::Live { est, .. } => Some(est.estimates()),
        }
    }

    /// Serializes the runner's full recovery state: a `gps-sample v1`
    /// section for a plain shard, a `v2` section (sampler + in-stream
    /// accumulators, restoring exactly) for an estimating one.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        let res = match &self.inner {
            Inner::Plain(sampler) => persist::save(sampler, &mut bytes),
            Inner::Live { est, .. } => persist::save_estimator(est, &mut bytes),
        };
        // Writing into a Vec cannot fail; if it somehow does, the empty
        // slot restores through the corrupt-checkpoint path (restart from
        // scratch, loss accounted) instead of panicking the worker.
        if res.is_err() {
            bytes.clear();
        }
        bytes
    }

    /// Fires the hook unconditionally with the shard's current state —
    /// once at worker start, so the board sees every shard's position
    /// before any new stream is consumed (on the restore path this is the
    /// restored watermark, keeping resumed epochs from regressing).
    pub fn report_now(&self) {
        if let Inner::Live {
            shard,
            est,
            hook: Some(hook),
            ..
        } = &self.inner
        {
            hook(ShardReport {
                shard: *shard,
                arrivals: est.sampler().arrivals(),
                batch_arrivals: 0,
                estimates: est.estimates(),
            });
        }
    }

    /// Fires the hook if this shard crossed its next reporting position
    /// (called between batches, so reports align with batch boundaries).
    pub fn maybe_report(&mut self) {
        if let Inner::Live {
            shard,
            est,
            hook: Some(hook),
            every,
            next,
            last_report,
        } = &mut self.inner
        {
            let arrivals = est.sampler().arrivals();
            if arrivals >= *next {
                while *next <= arrivals {
                    *next += *every;
                }
                let batch_arrivals = arrivals - *last_report;
                *last_report = arrivals;
                hook(ShardReport {
                    shard: *shard,
                    arrivals,
                    batch_arrivals,
                    estimates: est.estimates(),
                });
            }
        }
    }

    /// Final report + teardown at drain end.
    pub fn into_parts(self) -> (GpsSampler<W>, Option<TriadEstimates>, Option<InStreamState>) {
        match self.inner {
            Inner::Plain(sampler) => (sampler, None, None),
            Inner::Live {
                shard,
                est,
                hook,
                last_report,
                ..
            } => {
                let finals = est.estimates();
                if let Some(hook) = hook {
                    let arrivals = est.sampler().arrivals();
                    hook(ShardReport {
                        shard,
                        arrivals,
                        batch_arrivals: arrivals - last_report,
                        estimates: finals,
                    });
                }
                let (sampler, state) = est.into_parts();
                (sampler, Some(finals), Some(state))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::TriangleWeight;

    fn stream(n: u32) -> impl Iterator<Item = Edge> {
        (0..n).flat_map(|b| {
            [
                Edge::new(b, b + 1),
                Edge::new(b, b + 2),
                Edge::new(b + 1, b + 2),
            ]
        })
    }

    #[test]
    fn checkpoint_round_trip_resumes_estimates_exactly() {
        let sampler = GpsSampler::new(32, TriangleWeight::default(), 7);
        let mut runner = ShardRunner::estimating(0, sampler, None, None, 1 << 30);
        for e in stream(60) {
            runner.process(e);
        }
        let bytes = runner.checkpoint_bytes();
        let before = runner.estimates().expect("estimating runner");
        let (restored, watermark, corrupt) = ShardRunner::from_checkpoint(
            0,
            &bytes,
            TriangleWeight::default(),
            restart_seed(7, 0, 1),
            BackendKind::Compact,
            32,
            true,
            None,
            1 << 30,
        );
        assert!(!corrupt);
        assert_eq!(watermark, runner.arrivals());
        let after = restored.estimates().expect("estimating runner");
        assert_eq!(
            before.triangles.value.to_bits(),
            after.triangles.value.to_bits()
        );
        assert_eq!(
            before.triangles.variance.to_bits(),
            after.triangles.variance.to_bits()
        );
        assert_eq!(before.wedges.value.to_bits(), after.wedges.value.to_bits());
        assert_eq!(
            before.tri_wedge_cov.to_bits(),
            after.tri_wedge_cov.to_bits()
        );
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_scratch() {
        let (runner, watermark, corrupt) = ShardRunner::from_checkpoint(
            3,
            b"not a checkpoint",
            TriangleWeight::default(),
            restart_seed(7, 3, 1),
            BackendKind::Compact,
            16,
            false,
            None,
            2048,
        );
        assert!(corrupt);
        assert_eq!(watermark, 0);
        assert_eq!(runner.arrivals(), 0);
        assert!(runner.estimates().is_none(), "plain runner: no estimates");
    }

    #[test]
    fn restart_seeds_differ_by_ordinal_and_shard() {
        let a = restart_seed(42, 0, 1);
        let b = restart_seed(42, 0, 2);
        let c = restart_seed(42, 1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
