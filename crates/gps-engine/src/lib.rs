//! # gps-engine — sharded multi-threaded GPS streaming
//!
//! A single [`gps_core::GpsSampler`] is fed by one thread, so ingest
//! throughput is capped by one core even though the estimation side "has
//! abundant parallelism" (paper §4; exploited by
//! `post_stream::estimate_with_threads`). This crate scales the *ingest*
//! side: [`ShardedGps`] hash-partitions arriving edges across `S` worker
//! threads, each owning an independent `GPS(m/S)` reservoir on the compact
//! adjacency backend, fed through bounded batch channels.
//!
//! ## Why the merge is unbiased
//!
//! The partition assigns every edge one of `S` "colors" by a seeded hash of
//! its canonical endpoint pair ([`partition::EdgePartitioner`]), so each
//! shard runs ordinary GPS over the substream of its color and its
//! Horvitz–Thompson estimates are unbiased *for subgraph counts within that
//! substream*. Two facts turn the per-shard estimates into unbiased global
//! estimates:
//!
//! 1. **Strata sum.** The substreams are disjoint and sampled
//!    independently, so values, variance estimates and within-shard
//!    covariances add ([`gps_core::TriadEstimates::merged_strata`]) —
//!    the stratification argument Tiered Sampling (De Stefani et al.)
//!    uses to split a budget across tiers.
//! 2. **Monochromacy correction.** A subgraph with `j` edges is visible to
//!    a shard only if all `j` edges share its color, which happens with
//!    probability `S^{-(j-1)}` under the seeded uniform coloring — the
//!    "colorful counting" argument of Pagh–Tsourakakis. The merged sums
//!    are therefore rescaled by `S²` for triangles (3 edges) and `S` for
//!    wedges (2 edges); [`ShardedGps::estimate`] applies exactly this.
//!
//! With `S = 1` the engine degenerates to a single reservoir on the engine
//! seed, and the output is **bit-identical** to a bare `GpsSampler` fed the
//! same stream (pinned by a property test).
//!
//! Reported variances are **honest for `S > 1`**: the strata-sum of
//! per-shard (within-coloring) variance estimates is combined with a
//! between-shard empirical term that accounts for the randomness of the
//! coloring itself (each shard alone is an unbiased global estimator after
//! rescaling; the dispersion of those per-shard estimates around their mean
//! measures what conditioning on the partition used to hide) — see
//! [`gps_core::TriadEstimates::merged_colored`] for the decomposition. The
//! statistical test suites (here and in `gps-serve`) verify unbiasedness
//! over both sources of randomness empirically, and that CI coverage holds
//! near nominal where the conditional-only intervals collapsed.
//!
//! ## In-stream estimation inside the engine
//!
//! [`ShardedGps::with_estimation`] puts the paper's Algorithm 3 *inside*
//! each worker: every shard runs an `InStreamEstimator` over its substream,
//! so the lower-variance snapshot estimates are available sharded
//! ([`ShardedGps::estimate_in_stream`]) — the merge argument is identical,
//! since a shard's in-stream estimate is unbiased for the same
//! monochromatic counts its post-stream estimate targets. Workers
//! optionally report progress through an [`EpochHook`] every
//! [`EngineConfig::epoch_every`] arrivals; the `gps-serve` crate turns
//! those reports into atomically published, immutable estimate epochs for
//! concurrent readers.
//!
//! ## Snapshots
//!
//! [`ShardedGps::save`] composes the existing `gps_core::persist` format
//! per shard — an engine header followed by one `gps-sample` section per
//! shard (`v2` with in-stream accumulators in estimating mode, `v1`
//! otherwise) — so sharded reference samples outlive the process like
//! single-reservoir ones do, and a restored serving engine resumes its
//! in-stream estimates **exactly** ([`snapshot`]).
//!
//! ## Fault tolerance
//!
//! Workers are supervised: a panic inside a worker is contained with
//! `catch_unwind` and surfaces as a typed [`EngineError`] — or, with
//! checkpointing enabled ([`EngineConfig::checkpoint_every`]), the shard
//! restarts from its last persisted checkpoint and only the arrivals since
//! it are lost. Loss is never silent: [`ShardedGps::health`] itemizes
//! every [`ShardIncident`], and estimates from a degraded run widen their
//! variances by the lost fraction so confidence intervals stay honest.
//! Bounded queues gain deadlines ([`EngineConfig::push_timeout`] →
//! [`PushError::Backpressure`]; [`EngineConfig::finish_timeout`] writes
//! stragglers off from their checkpoints). The whole failure surface is
//! testable deterministically through [`FaultPlan`] ([`fault`]): faults
//! trigger at exact per-shard arrival counts, so chaos runs are
//! bit-reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod partition;
pub mod shard;
pub mod snapshot;

pub use engine::{
    EngineConfig, EngineError, EngineHealth, EpochHook, PushError, ShardIncident, ShardReport,
    ShardedGps, DEFAULT_EPOCH_EVERY,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use partition::{shard_seed, EdgePartitioner};
pub use shard::ShardRunner;
pub use snapshot::{load_engine, load_engine_file, SavedEngine};
