//! # gps-engine — sharded multi-threaded GPS streaming
//!
//! A single [`gps_core::GpsSampler`] is fed by one thread, so ingest
//! throughput is capped by one core even though the estimation side "has
//! abundant parallelism" (paper §4; exploited by
//! `post_stream::estimate_with_threads`). This crate scales the *ingest*
//! side: [`ShardedGps`] hash-partitions arriving edges across `S` worker
//! threads, each owning an independent `GPS(m/S)` reservoir on the compact
//! adjacency backend, fed through bounded batch channels.
//!
//! ## Why the merge is unbiased
//!
//! The partition assigns every edge one of `S` "colors" by a seeded hash of
//! its canonical endpoint pair ([`partition::EdgePartitioner`]), so each
//! shard runs ordinary GPS over the substream of its color and its
//! Horvitz–Thompson estimates are unbiased *for subgraph counts within that
//! substream*. Two facts turn the per-shard estimates into unbiased global
//! estimates:
//!
//! 1. **Strata sum.** The substreams are disjoint and sampled
//!    independently, so values, variance estimates and within-shard
//!    covariances add ([`gps_core::TriadEstimates::merged_strata`]) —
//!    the stratification argument Tiered Sampling (De Stefani et al.)
//!    uses to split a budget across tiers.
//! 2. **Monochromacy correction.** A subgraph with `j` edges is visible to
//!    a shard only if all `j` edges share its color, which happens with
//!    probability `S^{-(j-1)}` under the seeded uniform coloring — the
//!    "colorful counting" argument of Pagh–Tsourakakis. The merged sums
//!    are therefore rescaled by `S²` for triangles (3 edges) and `S` for
//!    wedges (2 edges); [`ShardedGps::estimate`] applies exactly this.
//!
//! With `S = 1` the engine degenerates to a single reservoir on the engine
//! seed, and the output is **bit-identical** to a bare `GpsSampler` fed the
//! same stream (pinned by a property test).
//!
//! Reported variances are the summed per-shard (within-coloring) variance
//! estimates, rescaled; the additional variance contributed by the random
//! coloring itself is *not* estimated, so confidence intervals from a
//! sharded run are conditional on the partition and anti-conservative for
//! `S > 1`. The statistical test suite verifies unbiasedness over both
//! sources of randomness empirically.
//!
//! ## Snapshots
//!
//! [`ShardedGps::save`] composes the existing `gps_core::persist` format
//! per shard — an engine header followed by one `gps-sample v1` section per
//! shard — so sharded reference samples outlive the process like
//! single-reservoir ones do ([`snapshot`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod partition;
pub mod snapshot;

pub use engine::{EngineConfig, ShardedGps};
pub use partition::EdgePartitioner;
pub use snapshot::{load_engine, load_engine_file, SavedEngine};
