//! The sharded streaming engine: [`ShardedGps`].
//!
//! Threading model: each shard is one worker thread owning an independent
//! `GpsSampler` (per-shard budget `m/S` of the engine's total budget `m`).
//! The ingest thread routes every arrival to its shard's pending batch
//! buffer and ships full batches over a bounded `sync_channel` — the same
//! chunking idea as `post_stream::estimate_with_threads`, turned around to
//! parallelize `GPSUpdate` itself. Bounded queues give natural
//! backpressure: a producer outrunning the workers waits (or, with
//! [`EngineConfig::push_timeout`] set, gets a typed
//! [`PushError::Backpressure`]) instead of buffering the stream.
//!
//! Edges are routed by the seeded [`EdgePartitioner`], so a duplicate
//! arrival always lands on the shard that holds (or rejected) its first
//! occurrence — the per-shard duplicate skip is exactly the global one.
//!
//! ## Supervision and recovery
//!
//! Workers run every batch under `catch_unwind`: a panic inside `GPSUpdate`
//! (or injected by a [`FaultPlan`]) is contained, reported to the
//! supervisor as a typed event carrying the panic payload, and — when
//! checkpointing is on ([`EngineConfig::checkpoint_every`] > 0) — the shard
//! is restarted from its last checkpoint. Checkpoints reuse the
//! `gps_core::persist` format (a `gps-sample v2` section in estimating
//! mode, so the in-stream accumulators restore *exactly*); a restarted
//! shard resumes with a deterministically re-derived RNG stream and keeps
//! consuming its feed channel, including every batch that was queued when
//! it crashed. The arrivals between the checkpoint and the crash are lost —
//! deterministically so: the loss is exactly the per-shard arrival interval
//! `(checkpoint, crash]`, which makes whole chaos runs bit-reproducible.
//!
//! Loss is never silent: [`ShardedGps::health`] itemizes every incident,
//! and estimates from a degraded engine widen their variance by the lost
//! arrival fraction ([`gps_core::TriadEstimates::widened_for_loss`]) so
//! confidence intervals stay honest about what the engine did not see.
//! Without checkpointing, a worker panic is terminal and surfaces as
//! [`EngineError::ShardPanicked`] (from `try_*` methods) or a panic
//! carrying the same message (from the panicking wrappers).

use crate::fault::FaultPlan;
use crate::partition::{shard_seed, EdgePartitioner};
use gps_core::weights::EdgeWeight;
use gps_core::{post_stream, GpsSampler, InStreamState, TriadEstimates};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_telemetry::{
    Counter, Event, EventKind, Gauge, Histogram, Registry, Stability, TelemetrySnapshot,
};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Total reservoir budget `m`, split across shards (shard `i` gets
    /// `m/S`, the first `m mod S` shards one more).
    pub capacity: usize,
    /// Number of shards / worker threads `S`.
    pub shards: usize,
    /// Engine seed: drives every shard RNG and the edge partition.
    pub seed: u64,
    /// Edges per channel batch (amortizes one `send` over this many
    /// arrivals).
    pub batch: usize,
    /// Bounded channel depth, in batches per shard.
    pub queue: usize,
    /// Adjacency backend every shard's sampler runs on.
    pub backend: BackendKind,
    /// Per-shard arrivals between two [`ShardReport`]s on the epoch hook
    /// (in-stream estimating mode only; ignored without a hook).
    pub epoch_every: u64,
    /// Per-shard arrivals between two recovery checkpoints; `0` (the
    /// default) disables checkpointing, making any worker panic terminal.
    /// With checkpointing on, a crashed shard restarts from its last
    /// checkpoint and only the arrivals since it are lost (accounted in
    /// [`ShardedGps::health`]).
    pub checkpoint_every: u64,
    /// How long a `push` may wait on a full shard queue before reporting
    /// [`PushError::Backpressure`]; `None` (the default) waits
    /// indefinitely, matching the pre-supervision blocking behavior.
    pub push_timeout: Option<Duration>,
    /// How long [`ShardedGps::finish`] waits for workers to drain before
    /// writing stragglers off from their checkpoints; `None` (the default)
    /// waits indefinitely.
    pub finish_timeout: Option<Duration>,
    /// Restart budget per shard; a shard that panics more often than this
    /// becomes a terminal [`EngineError::ShardPanicked`].
    pub max_restarts: u32,
}

/// Default [`EngineConfig::epoch_every`]: one shard report per 2048
/// per-shard arrivals.
pub const DEFAULT_EPOCH_EVERY: u64 = 2048;

/// Sleep between two queue-full retries of a pending batch.
const SHIP_BACKOFF: Duration = Duration::from_micros(50);

impl EngineConfig {
    /// A config with the tuned defaults: 1024-edge batches, 4-batch queues,
    /// compact backend, a shard report every [`DEFAULT_EPOCH_EVERY`]
    /// per-shard arrivals, no checkpointing, no timeouts.
    pub fn new(capacity: usize, shards: usize, seed: u64) -> Self {
        EngineConfig {
            capacity,
            shards,
            seed,
            batch: 1024,
            queue: 4,
            backend: BackendKind::Compact,
            epoch_every: DEFAULT_EPOCH_EVERY,
            checkpoint_every: 0,
            push_timeout: None,
            finish_timeout: None,
            max_restarts: 3,
        }
    }
}

/// A terminal shard failure: the engine could not (or was configured not
/// to) recover the shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A shard worker panicked and no recovery was possible (checkpointing
    /// off, the restart budget exhausted, or the thread died without even
    /// delivering a crash report). Carries the panic payload text.
    ShardPanicked {
        /// The failed shard.
        shard: usize,
        /// Panic payload (or a synthetic description for silent deaths).
        payload: String,
    },
    /// A shard worker failed to drain within [`EngineConfig::finish_timeout`]
    /// and there was no checkpoint substrate to write it off from
    /// ([`EngineConfig::checkpoint_every`] is `0`).
    ShardStalled {
        /// The stalled shard.
        shard: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShardPanicked { shard, payload } => {
                write!(f, "shard {shard} worker panicked: {payload}")
            }
            EngineError::ShardStalled { shard } => {
                write!(
                    f,
                    "shard {shard} worker stalled past the finish deadline (no checkpoint to recover from)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Why a `try_push` could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The shard's queue stayed full past [`EngineConfig::push_timeout`].
    /// The offered edge stays buffered in the shard's pending batch; a
    /// later push (or `finish`) retries shipping it, so nothing is lost.
    Backpressure {
        /// The congested shard.
        shard: usize,
    },
    /// A shard failed terminally (see [`EngineError`]).
    Shard(EngineError),
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Backpressure { shard } => {
                write!(f, "shard {shard} queue stayed full past the push deadline")
            }
            PushError::Shard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PushError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PushError::Shard(e) => Some(e),
            PushError::Backpressure { .. } => None,
        }
    }
}

/// One recovered (or written-off) shard failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardIncident {
    /// The shard that failed.
    pub shard: usize,
    /// Panic payload for crashes; `None` for stalls.
    pub payload: Option<String>,
    /// True when the shard was written off as a straggler at finish time
    /// rather than crashing.
    pub stalled: bool,
    /// Per-shard arrivals lost: consumed (or routed) past the checkpoint
    /// the shard was recovered from.
    pub lost_arrivals: u64,
    /// True when the recovery checkpoint failed to parse and the shard
    /// restarted from scratch (losing its whole prefix).
    pub checkpoint_corrupt: bool,
    /// The shard's restart count after handling this incident.
    pub restarts: u32,
}

/// Aggregated fault/recovery record of an engine run. Empty incidents ⇔
/// the engine behaved exactly like the pre-supervision one, bit for bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineHealth {
    /// Every recovered or written-off failure, in handling order.
    pub incidents: Vec<ShardIncident>,
    /// Total arrivals lost across all incidents.
    pub lost_arrivals: u64,
}

impl EngineHealth {
    /// True when any shard lost arrivals or was recovered: estimates are
    /// still reported, with variances widened by the lost fraction, but
    /// they no longer cover the full stream.
    pub fn degraded(&self) -> bool {
        !self.incidents.is_empty()
    }
}

/// One shard's progress report, delivered on the [`EpochHook`] from the
/// shard's worker thread: its current in-stream (snapshot) estimates at its
/// current substream position. Reports from one shard arrive in order;
/// reports from different shards are concurrent.
#[derive(Clone, Copy, Debug)]
pub struct ShardReport {
    /// Reporting shard index.
    pub shard: usize,
    /// Arrivals this shard has consumed (its substream position).
    pub arrivals: u64,
    /// Arrivals consumed since this shard's previous report — the size of
    /// the batch that triggered this one. Zero for the unconditional
    /// start-of-worker report. Provenance traces use it to attribute the
    /// arrival-batch stage of an epoch.
    pub batch_arrivals: u64,
    /// The shard's in-stream estimates of *its own* (monochromatic)
    /// subgraph counts — merge across shards with
    /// [`TriadEstimates::merged_colored`].
    pub estimates: TriadEstimates,
}

/// Callback invoked by estimating-mode workers every
/// [`EngineConfig::epoch_every`] per-shard arrivals, plus once at drain end
/// (so the final state of every shard is always reported). Runs on the
/// worker thread — keep it cheap; `gps-serve` publishes an epoch from it.
pub type EpochHook = Arc<dyn Fn(ShardReport) + Send + Sync>;

/// What each worker runs per edge — factored into [`crate::shard`] so
/// thread-free hosts (the `gps-sim` discrete-event nodes) drive the exact
/// same logic.
use crate::shard::ShardRunner as Runner;

/// Worker construction mode (see [`ShardedGps::with_estimation`]).
pub(crate) enum WorkerMode {
    /// Bare samplers; post-stream estimation only.
    Plain,
    /// Per-shard `InStreamEstimator`s, optionally reporting through a hook.
    Estimating(Option<EpochHook>),
}

/// What `snapshot` reads off a finished engine: config, per-shard
/// samplers, per-shard in-stream states, and the stream position.
pub(crate) type EngineParts<'a, W> = (
    &'a EngineConfig,
    &'a [GpsSampler<W>],
    &'a [Option<InStreamState>],
    u64,
);

/// The last recovery checkpoint a shard wrote: a serialized `gps-sample`
/// section (sampler plus, in estimating mode, accumulator state — the
/// arrival watermark travels inside it). Written by the worker, read by
/// the supervisor on restart.
type CheckpointSlot = Vec<u8>;

/// What a worker thread reports back to the supervisor. Every worker ends
/// with exactly one event: `Done` after a clean drain, `Panicked` when a
/// batch blew up. A panicking worker hands its feed receiver back, so the
/// channel — and every batch still queued on it — survives the crash and a
/// restarted worker continues exactly where routing left off.
enum WorkerEvent<W> {
    Done {
        shard: usize,
        /// Boxed: a sampler is hundreds of bytes and would dwarf the
        /// `Panicked` variant in every channel slot.
        collected: Box<Collected<W>>,
    },
    Panicked {
        shard: usize,
        payload: String,
        /// Per-shard arrivals consumed-or-attempted when the panic hit
        /// (the panicking arrival inclusive).
        at: u64,
        /// Unprocessed remainder of the in-flight batch.
        rest: Vec<Edge>,
        /// The feed receiver, handed back for the restarted worker.
        rx: Receiver<Vec<Edge>>,
    },
}

/// Telemetry handles shared with every worker thread. All counters here
/// are stable-class: batch boundaries, checkpoint sites, and crash sites
/// are arrival-keyed, so same-seed same-plan runs record identical
/// totals. The queue-depth gauge is the one timing-class member — it
/// measures scheduling.
#[derive(Clone)]
struct WorkerMetrics {
    /// Arrivals consumed in *completed* batches (includes arrivals later
    /// rolled back by a checkpoint restore; the rollback is itemized in
    /// `gps_engine_lost_arrivals_total`).
    arrivals: Counter,
    batches: Counter,
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    /// Per-shard arrivals between consecutive checkpoint writes.
    checkpoint_interval: Histogram,
    /// Batches shipped by the supervisor (internal, unregistered).
    shipped: Counter,
    /// Batches taken off a feed channel by a worker (internal,
    /// unregistered).
    drained: Counter,
    /// High-water mark of engine-wide in-flight batches (shipped minus
    /// drained, sampled by workers at batch pickup — approximate by
    /// construction, hence timing-class).
    depth_highwater: Gauge,
    registry: Arc<Registry>,
}

/// Supervisor-side telemetry: the worker bundle plus the incident
/// counters only `handle_panic` / `abandon_straggler` touch.
struct EngineMetrics {
    worker: WorkerMetrics,
    restarts: Counter,
    lost: Counter,
    sampler_inserts: Counter,
    sampler_evictions: Counter,
    sampler_rejections: Counter,
    sampler_duplicates: Counter,
    sampler_slab_spills: Counter,
}

impl EngineMetrics {
    /// Registers the engine's metric set on `registry`. Metric names and
    /// meanings are cataloged in `docs/observability.md` (enforced by
    /// `gps-analyze metric-name-registry`).
    fn register(registry: Arc<Registry>) -> Self {
        EngineMetrics {
            worker: WorkerMetrics {
                arrivals: registry.counter("gps_engine_arrivals_total", Stability::Stable),
                batches: registry.counter("gps_engine_batches_total", Stability::Stable),
                checkpoints: registry.counter("gps_engine_checkpoints_total", Stability::Stable),
                checkpoint_bytes: registry
                    .counter("gps_engine_checkpoint_bytes_total", Stability::Stable),
                checkpoint_interval: registry
                    .histogram("gps_engine_checkpoint_interval_arrivals", Stability::Stable),
                shipped: Counter::default(),
                drained: Counter::default(),
                depth_highwater: registry
                    .gauge("gps_engine_queue_depth_highwater", Stability::Timing),
                registry: Arc::clone(&registry),
            },
            restarts: registry.counter("gps_engine_restarts_total", Stability::Stable),
            lost: registry.counter("gps_engine_lost_arrivals_total", Stability::Stable),
            sampler_inserts: registry.counter("gps_sampler_inserts_total", Stability::Stable),
            sampler_evictions: registry.counter("gps_sampler_evictions_total", Stability::Stable),
            sampler_rejections: registry.counter("gps_sampler_rejections_total", Stability::Stable),
            sampler_duplicates: registry.counter("gps_sampler_duplicates_total", Stability::Stable),
            sampler_slab_spills: registry
                .counter("gps_sampler_slab_spills_total", Stability::Stable),
        }
    }
}

/// Everything a worker thread owns; `run` is the worker loop.
struct WorkerLoop<W> {
    shard: usize,
    runner: Runner<W>,
    rx: Receiver<Vec<Edge>>,
    /// Batch to process before reading the channel (restart remainder).
    first: Option<Vec<Edge>>,
    recycle_tx: Sender<Vec<Edge>>,
    event_tx: Sender<WorkerEvent<W>>,
    ckpt: Arc<Mutex<CheckpointSlot>>,
    checkpoint_every: u64,
    faults: Option<Arc<FaultPlan>>,
    initial_report: bool,
    metrics: WorkerMetrics,
}

impl<W: EdgeWeight + Send + 'static> WorkerLoop<W> {
    fn spawn(self) -> JoinHandle<()> {
        std::thread::spawn(move || self.run())
    }

    fn run(mut self) {
        {
            // The prologue (spawn-time faults, initial report) runs under
            // the same panic containment as the batch loop.
            let runner = &self.runner;
            let faults = self.faults.clone();
            let shard = self.shard;
            let initial_report = self.initial_report;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(move || {
                if let Some(plan) = &faults {
                    plan.at_spawn(shard);
                }
                if initial_report {
                    runner.report_now();
                }
            })) {
                let _ = self.event_tx.send(WorkerEvent::Panicked {
                    shard: self.shard,
                    payload: panic_text(payload),
                    at: self.runner.arrivals(),
                    rest: self.first.take().unwrap_or_default(),
                    rx: self.rx,
                });
                return;
            }
        }
        let mut next_ckpt = self.runner.arrivals() + self.checkpoint_every.max(1);
        let mut last_ckpt = self.runner.arrivals();
        loop {
            let batch = match self.first.take() {
                Some(batch) => batch,
                None => match self.rx.recv() {
                    Ok(batch) => {
                        self.metrics.drained.incr();
                        // In-flight depth at pickup: shipped minus drained
                        // plus the batch in hand. Cross-thread reads race
                        // benignly — the gauge is timing-class.
                        let shipped = self.metrics.shipped.get();
                        let drained = self.metrics.drained.get();
                        self.metrics
                            .depth_highwater
                            .record_max(shipped.saturating_sub(drained) + 1);
                        batch
                    }
                    Err(_) => break,
                },
            };
            let mut batch = batch;
            let before = self.runner.arrivals();
            let consumed = Cell::new(0usize);
            let outcome = {
                let runner = &mut self.runner;
                let faults = &self.faults;
                let shard = self.shard;
                let consumed = &consumed;
                let batch = &batch;
                catch_unwind(AssertUnwindSafe(move || {
                    for (i, &edge) in batch.iter().enumerate() {
                        consumed.set(i + 1);
                        if let Some(plan) = faults {
                            plan.before_arrival(shard, before + i as u64 + 1);
                        }
                        runner.process(edge);
                    }
                }))
            };
            match outcome {
                Ok(()) => {
                    batch.clear();
                    // Hand the drained buffer back for reuse; the
                    // producer may already be gone at drain time.
                    let _ = self.recycle_tx.send(batch);
                    self.metrics.arrivals.add(self.runner.arrivals() - before);
                    self.metrics.batches.incr();
                    self.runner.maybe_report();
                    if self.checkpoint_every > 0 && self.runner.arrivals() >= next_ckpt {
                        let arrivals = self.runner.arrivals();
                        while next_ckpt <= arrivals {
                            next_ckpt += self.checkpoint_every;
                        }
                        let mut bytes = self.runner.checkpoint_bytes();
                        if let Some(plan) = &self.faults {
                            if plan.corrupts_checkpoint(self.shard, arrivals) {
                                // Half a section never parses (truncated
                                // header or record-count mismatch), so the
                                // corruption is guaranteed detectable.
                                bytes.truncate(bytes.len() / 2);
                            }
                        }
                        self.metrics.checkpoints.incr();
                        self.metrics.checkpoint_bytes.add(bytes.len() as u64);
                        self.metrics
                            .checkpoint_interval
                            .record(arrivals - last_ckpt);
                        last_ckpt = arrivals;
                        self.metrics.registry.event(Event {
                            at: arrivals,
                            kind: EventKind::CheckpointWrite,
                            shard: Some(self.shard as u32),
                            epoch: None,
                            detail: bytes.len() as u64,
                        });
                        *locked(&self.ckpt) = bytes;
                    }
                }
                Err(payload) => {
                    // `consumed` counts the panicking arrival: it was
                    // offered and is not retried (it may be the poison).
                    // The *unconsumed* tail of the batch was never offered
                    // — it rides back as `rest` for the restarted worker,
                    // so only the (checkpoint, crash] window is lost and
                    // the loss ledger stays exact.
                    batch.drain(..consumed.get());
                    let _ = self.event_tx.send(WorkerEvent::Panicked {
                        shard: self.shard,
                        payload: panic_text(payload),
                        at: before + consumed.get() as u64,
                        rest: batch,
                        rx: self.rx,
                    });
                    return;
                }
            }
        }
        let (sampler, finals, state) = self.runner.into_parts();
        let _ = self.event_tx.send(WorkerEvent::Done {
            shard: self.shard,
            collected: Box::new(Collected {
                sampler,
                finals,
                state,
            }),
        });
    }
}

/// Renders a panic payload for [`EngineError::ShardPanicked`].
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Locks a mutex, riding through poison: checkpoint slots are whole-value
/// swaps, so a slot is coherent even if the writer panicked nearby.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One shard from the supervisor's side.
struct Worker {
    /// Feed sender; `None` once hung up (finish) or terminally failed.
    tx: Option<SyncSender<Vec<Edge>>>,
    /// The worker thread; `None` after joining or detaching a straggler.
    handle: Option<JoinHandle<()>>,
    /// Shared recovery checkpoint slot (worker writes, supervisor reads).
    ckpt: Arc<Mutex<CheckpointSlot>>,
    /// Per-shard arrivals shipped to (though not necessarily consumed by)
    /// this shard, counted from the same baseline as `sampler.arrivals()`.
    routed: u64,
    restarts: u32,
    /// Set when the shard failed terminally.
    dead: Option<EngineError>,
}

/// A shard's final state, collected from its `Done` event (or synthesized
/// from its checkpoint when the shard was written off as a straggler).
struct Collected<W> {
    sampler: GpsSampler<W>,
    finals: Option<TriadEstimates>,
    state: Option<InStreamState>,
}

/// Sharded `GPS(m)`: `S` independent reservoirs over a hash-partitioned
/// stream, with unbiased cross-shard estimate merging (see the crate docs
/// for the stratification + monochromacy-correction argument).
///
/// Lifecycle: [`ShardedGps::push`] while streaming, then
/// [`ShardedGps::finish`] (or any estimation call, which finishes
/// implicitly) to drain the channels and join the workers; after that the
/// per-shard samplers are owned by the engine and estimation/persistence
/// are available. `finish` is idempotent; pushing after it panics. The
/// `try_` variants ([`ShardedGps::try_push`], [`ShardedGps::try_finish`])
/// surface shard failures as typed errors instead of panicking.
///
/// ```
/// use gps_core::TriangleWeight;
/// use gps_engine::ShardedGps;
/// use gps_graph::Edge;
///
/// let mut engine = ShardedGps::new(64, TriangleWeight::default(), 42, 2);
/// engine.push_stream([Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
/// let est = engine.estimate();
/// // Capacity exceeds the stream: every shard retained everything, so the
/// // merged estimate counts each shard's monochromatic triangles exactly —
/// // unbiased (not exact) for the global count under the random coloring.
/// assert!(est.triangles.value >= 0.0);
/// assert_eq!(engine.pushed(), 3);
/// ```
pub struct ShardedGps<W> {
    cfg: EngineConfig,
    weight_fn: W,
    partitioner: EdgePartitioner,
    /// Per-shard pending batch buffers (ingest side).
    pending: Vec<Vec<Edge>>,
    /// Live workers; empty once finished.
    workers: Vec<Worker>,
    /// Drained batch `Vec`s returned by the workers for reuse (kills the
    /// per-batch allocation that dominated the engine's single-core
    /// overhead; capacity survives the round trip).
    recycled: Receiver<Vec<Edge>>,
    recycle_tx: Sender<Vec<Edge>>,
    /// Worker → supervisor event channel (crash reports, final states).
    events: Receiver<WorkerEvent<W>>,
    event_tx: Sender<WorkerEvent<W>>,
    /// Per-shard final states as they arrive during finish.
    collected: Vec<Option<Collected<W>>>,
    hook: Option<EpochHook>,
    estimating: bool,
    faults: Option<Arc<FaultPlan>>,
    health: EngineHealth,
    /// Terminal failure recorded by a completed `try_finish`.
    failed: Option<EngineError>,
    /// Collected samplers; filled by `finish`.
    samplers: Vec<GpsSampler<W>>,
    /// Per-shard final in-stream estimates (estimating mode, post-finish).
    in_finals: Vec<Option<TriadEstimates>>,
    /// Per-shard final in-stream accumulator state (estimating mode,
    /// post-finish) — what `save` writes as `gps-sample v2` sections.
    in_states: Vec<Option<InStreamState>>,
    pushed: u64,
    /// Runtime metric handles (the registry lives behind
    /// [`ShardedGps::telemetry_registry`]).
    metrics: EngineMetrics,
    /// True once the final sampler stats were folded into the registry
    /// (`try_finish` success path; guards the idempotent re-entry).
    harvested: bool,
}

impl<W: EdgeWeight + Clone + Send + 'static> ShardedGps<W> {
    /// Creates an engine with total budget `capacity` split across
    /// `shards` workers, on the default config (see [`EngineConfig::new`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `capacity < shards` (every shard needs a
    /// positive reservoir).
    pub fn new(capacity: usize, weight_fn: W, seed: u64, shards: usize) -> Self {
        Self::with_config(EngineConfig::new(capacity, shards, seed), weight_fn)
    }

    /// Creates an engine from an explicit [`EngineConfig`].
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::new`], plus `batch == 0` or
    /// `queue == 0`.
    pub fn with_config(cfg: EngineConfig, weight_fn: W) -> Self {
        Self::validate(&cfg);
        let samplers = Self::fresh_samplers(&cfg, &weight_fn);
        let states = (0..cfg.shards).map(|_| None).collect();
        Self::launch(
            cfg,
            weight_fn,
            samplers,
            states,
            WorkerMode::Plain,
            None,
            Arc::new(Registry::new()),
        )
    }

    /// [`ShardedGps::with_config`] plus a deterministic [`FaultPlan`]
    /// injected into the workers — the chaos-testing entry point.
    pub fn with_config_and_faults(cfg: EngineConfig, weight_fn: W, faults: FaultPlan) -> Self {
        Self::validate(&cfg);
        let samplers = Self::fresh_samplers(&cfg, &weight_fn);
        let states = (0..cfg.shards).map(|_| None).collect();
        Self::launch(
            cfg,
            weight_fn,
            samplers,
            states,
            WorkerMode::Plain,
            Some(Arc::new(faults)),
            Arc::new(Registry::new()),
        )
    }

    /// Creates an engine whose workers run the paper's **in-stream**
    /// estimator (Algorithm 3) over their substreams — the lower-variance
    /// snapshot estimates become available through
    /// [`ShardedGps::estimate_in_stream`], and, if `hook` is given, as
    /// periodic per-shard [`ShardReport`]s every
    /// [`EngineConfig::epoch_every`] per-shard arrivals (the publication
    /// hook `gps-serve` builds its live epochs on).
    ///
    /// Sampling is untouched: an estimating engine selects bit-identical
    /// reservoirs to a plain one on the same config, and post-stream
    /// estimation ([`ShardedGps::estimate`]) remains available.
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::with_config`].
    pub fn with_estimation(cfg: EngineConfig, weight_fn: W, hook: Option<EpochHook>) -> Self {
        Self::with_estimation_on_registry(cfg, weight_fn, hook, None, Arc::new(Registry::new()))
    }

    /// [`ShardedGps::with_estimation`] plus a deterministic [`FaultPlan`]
    /// injected into the workers.
    pub fn with_estimation_and_faults(
        cfg: EngineConfig,
        weight_fn: W,
        hook: Option<EpochHook>,
        faults: FaultPlan,
    ) -> Self {
        Self::with_estimation_on_registry(
            cfg,
            weight_fn,
            hook,
            Some(faults),
            Arc::new(Registry::new()),
        )
    }

    /// [`ShardedGps::with_estimation`] (optionally with a [`FaultPlan`]),
    /// registering the engine's metrics on a **caller-supplied** telemetry
    /// registry instead of a private one. Layers that stack their own
    /// metrics on top of the engine (`gps-serve`) pass a shared registry
    /// so a single [`TelemetrySnapshot`] covers the whole stack.
    /// Registration is idempotent by name, so a registry that has seen a
    /// previous engine generation hands back the *same* counters and the
    /// ledgers stay cumulative across restores.
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::with_config`].
    pub fn with_estimation_on_registry(
        cfg: EngineConfig,
        weight_fn: W,
        hook: Option<EpochHook>,
        faults: Option<FaultPlan>,
        registry: Arc<Registry>,
    ) -> Self {
        Self::validate(&cfg);
        let samplers = Self::fresh_samplers(&cfg, &weight_fn);
        let states = (0..cfg.shards).map(|_| None).collect();
        Self::launch(
            cfg,
            weight_fn,
            samplers,
            states,
            WorkerMode::Estimating(hook),
            faults.map(Arc::new),
            registry,
        )
    }

    fn validate(cfg: &EngineConfig) {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.capacity >= cfg.shards,
            "capacity {} cannot give {} shards a positive budget",
            cfg.capacity,
            cfg.shards
        );
    }

    fn fresh_samplers(cfg: &EngineConfig, weight_fn: &W) -> Vec<GpsSampler<W>> {
        (0..cfg.shards)
            .map(|i| {
                GpsSampler::with_backend(
                    Self::shard_capacity(cfg.capacity, cfg.shards, i),
                    weight_fn.clone(),
                    shard_seed(cfg.seed, i),
                    cfg.backend,
                )
            })
            .collect()
    }

    /// Budget of shard `i`: `m/S`, first `m mod S` shards get one more.
    /// Public (with [`shard_seed`]) so
    /// single-threaded mirrors of the engine can reproduce its exact
    /// per-shard samplers.
    pub fn shard_capacity(capacity: usize, shards: usize, i: usize) -> usize {
        capacity / shards + usize::from(i < capacity % shards)
    }

    /// Spawns one worker per sampler (also the restore path — see
    /// `snapshot::SavedEngine::into_engine`). `states` carry per-shard
    /// in-stream accumulators for exact resume (v2 snapshots).
    pub(crate) fn launch(
        cfg: EngineConfig,
        weight_fn: W,
        samplers: Vec<GpsSampler<W>>,
        states: Vec<Option<InStreamState>>,
        mode: WorkerMode,
        faults: Option<Arc<FaultPlan>>,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(cfg.batch > 0, "batch size must be positive");
        assert!(cfg.queue > 0, "queue depth must be positive");
        assert!(cfg.epoch_every > 0, "epoch cadence must be positive");
        assert_eq!(samplers.len(), cfg.shards, "one sampler per shard");
        assert_eq!(states.len(), cfg.shards, "one state slot per shard");
        let (recycle_tx, recycled) = channel::<Vec<Edge>>();
        let (event_tx, events) = channel::<WorkerEvent<W>>();
        let (hook, estimating) = match mode {
            WorkerMode::Plain => (None, false),
            WorkerMode::Estimating(hook) => (hook, true),
        };
        let metrics = EngineMetrics::register(registry);
        let mut engine = ShardedGps {
            partitioner: EdgePartitioner::new(cfg.seed, cfg.shards),
            pending: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch))
                .collect(),
            workers: Vec::with_capacity(cfg.shards),
            recycled,
            recycle_tx,
            events,
            event_tx,
            collected: (0..cfg.shards).map(|_| None).collect(),
            hook,
            estimating,
            faults,
            weight_fn,
            health: EngineHealth::default(),
            failed: None,
            samplers: Vec::with_capacity(cfg.shards),
            in_finals: Vec::with_capacity(cfg.shards),
            in_states: Vec::with_capacity(cfg.shards),
            pushed: 0,
            metrics,
            harvested: false,
            cfg,
        };
        for (shard, (sampler, state)) in samplers.into_iter().zip(states).enumerate() {
            let routed = sampler.arrivals();
            let hook = engine.hook.clone();
            let runner = engine.runner_for(shard, sampler, state, hook);
            let ckpt: Arc<Mutex<CheckpointSlot>> =
                Arc::new(Mutex::new(if engine.cfg.checkpoint_every > 0 {
                    runner.checkpoint_bytes()
                } else {
                    Vec::new()
                }));
            let (tx, rx) = sync_channel::<Vec<Edge>>(engine.cfg.queue);
            let handle = WorkerLoop {
                shard,
                runner,
                rx,
                first: None,
                recycle_tx: engine.recycle_tx.clone(),
                event_tx: engine.event_tx.clone(),
                ckpt: ckpt.clone(),
                checkpoint_every: engine.cfg.checkpoint_every,
                faults: engine.faults.clone(),
                initial_report: true,
                metrics: engine.metrics.worker.clone(),
            }
            .spawn();
            engine.workers.push(Worker {
                tx: Some(tx),
                handle: Some(handle),
                ckpt,
                routed,
                restarts: 0,
                dead: None,
            });
        }
        engine
    }

    /// Wraps a sampler in this engine's per-edge runner (estimating mode
    /// resumes the in-stream accumulators exactly when `state` is given).
    fn runner_for(
        &self,
        shard: usize,
        sampler: GpsSampler<W>,
        state: Option<InStreamState>,
        hook: Option<EpochHook>,
    ) -> Runner<W> {
        if self.estimating {
            Runner::estimating(shard, sampler, state, hook, self.cfg.epoch_every)
        } else {
            Runner::plain(sampler)
        }
    }

    /// Rebuilds a runner for `shard` from its checkpoint slot. Returns the
    /// runner, the arrival watermark it restarts from, and whether the
    /// checkpoint was corrupt (in which case the shard restarts from
    /// scratch at watermark 0). The restart RNG stream is re-derived
    /// deterministically from the engine seed and the restart ordinal.
    fn restored_runner(
        &self,
        shard: usize,
        restarts: u32,
        with_hook: bool,
    ) -> (Runner<W>, u64, bool) {
        let bytes = locked(&self.workers[shard].ckpt).clone();
        let seed = crate::shard::restart_seed(self.cfg.seed, shard, restarts);
        let hook = if with_hook { self.hook.clone() } else { None };
        Runner::from_checkpoint(
            shard,
            &bytes,
            self.weight_fn.clone(),
            seed,
            self.cfg.backend,
            Self::shard_capacity(self.cfg.capacity, self.cfg.shards, shard),
            self.estimating,
            hook,
            self.cfg.epoch_every,
        )
    }

    /// Offers one stream arrival to the engine (routes it to its shard;
    /// ships a batch when that shard's buffer fills).
    ///
    /// # Panics
    /// Panics if called after [`ShardedGps::finish`], if a shard failed
    /// terminally, or (with [`EngineConfig::push_timeout`] set) on
    /// backpressure past the deadline — use [`ShardedGps::try_push`] for
    /// the typed-error variant.
    pub fn push(&mut self, edge: Edge) {
        if let Err(e) = self.try_push(edge) {
            panic!("{e}");
        }
    }

    /// [`ShardedGps::push`] with typed errors instead of panics. On
    /// [`PushError::Backpressure`] the edge stays buffered (nothing is
    /// lost) and a later push or [`ShardedGps::finish`] retries shipping.
    ///
    /// # Panics
    /// Panics if called after [`ShardedGps::finish`].
    pub fn try_push(&mut self, edge: Edge) -> Result<(), PushError> {
        assert!(
            !self.workers.is_empty(),
            "push on a finished ShardedGps engine"
        );
        self.pushed += 1;
        let s = self.partitioner.shard_of(edge);
        self.pending[s].push(edge);
        if self.pending[s].len() >= self.cfg.batch {
            self.ship(s, self.cfg.push_timeout)?;
        }
        Ok(())
    }

    /// Feeds a pre-batched chunk (e.g. from `gps_stream::batched`); exactly
    /// equivalent to pushing each edge, but the whole chunk is routed to
    /// the per-shard buffers first and each shard ships at most once per
    /// call — one `len`-check pass per chunk instead of per edge (shipped
    /// batches may exceed [`EngineConfig::batch`]; per-shard edge order,
    /// and hence every result, is unaffected).
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::push`].
    pub fn push_batch(&mut self, batch: &[Edge]) {
        if let Err(e) = self.try_push_batch(batch) {
            panic!("{e}");
        }
    }

    /// [`ShardedGps::push_batch`] with typed errors instead of panics (see
    /// [`ShardedGps::try_push`] for the backpressure contract).
    ///
    /// # Panics
    /// Panics if called after [`ShardedGps::finish`].
    pub fn try_push_batch(&mut self, batch: &[Edge]) -> Result<(), PushError> {
        assert!(
            !self.workers.is_empty(),
            "push on a finished ShardedGps engine"
        );
        self.pushed += batch.len() as u64;
        for &e in batch {
            let s = self.partitioner.shard_of(e);
            self.pending[s].push(e);
        }
        for s in 0..self.cfg.shards {
            if self.pending[s].len() >= self.cfg.batch {
                self.ship(s, self.cfg.push_timeout)?;
            }
        }
        Ok(())
    }

    /// Feeds every edge of an iterator through [`ShardedGps::push`].
    pub fn push_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.push(e);
        }
    }

    /// Ships shard `s`'s pending buffer, retrying with backoff while its
    /// queue is full (up to `timeout`, indefinitely for `None`), draining
    /// supervisor events — and thereby restarting crashed shards — between
    /// attempts. On any error the batch is restored to the pending buffer.
    fn ship(&mut self, s: usize, timeout: Option<Duration>) -> Result<(), PushError> {
        let fresh = self
            .recycled
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.cfg.batch));
        let mut batch = std::mem::replace(&mut self.pending[s], fresh);
        let n = batch.len() as u64;
        let mut deadline: Option<Instant> = None;
        loop {
            if let Err(e) = self.drain_events() {
                self.unship(s, batch);
                return Err(PushError::Shard(e));
            }
            let Some(tx) = self.workers[s].tx.clone() else {
                let e = self.shard_error(s);
                self.unship(s, batch);
                return Err(PushError::Shard(e));
            };
            match tx.try_send(batch) {
                Ok(()) => {
                    self.workers[s].routed += n;
                    self.metrics.worker.shipped.incr();
                    return Ok(());
                }
                Err(TrySendError::Full(back)) => {
                    batch = back;
                    if let Some(t) = timeout {
                        let d = *deadline.get_or_insert_with(|| Instant::now() + t);
                        if Instant::now() >= d {
                            self.unship(s, batch);
                            return Err(PushError::Backpressure { shard: s });
                        }
                    }
                    std::thread::sleep(SHIP_BACKOFF);
                }
                Err(TrySendError::Disconnected(back)) => {
                    batch = back;
                    // The receiver is gone. If the worker panicked, its
                    // crash report (carrying the receiver) either already
                    // surfaced as a terminal error, or one more drain
                    // surfaces it now; a clean drain here means the thread
                    // died without reporting at all.
                    if let Err(e) = self.drain_events() {
                        self.unship(s, batch);
                        return Err(PushError::Shard(e));
                    }
                    let e = self.shard_error(s);
                    self.workers[s].dead.get_or_insert_with(|| e.clone());
                    self.workers[s].tx = None;
                    self.unship(s, batch);
                    return Err(PushError::Shard(e));
                }
            }
        }
    }

    /// Puts an unshippable batch back in front of the pending buffer.
    fn unship(&mut self, s: usize, mut batch: Vec<Edge>) {
        batch.append(&mut self.pending[s]);
        self.pending[s] = batch;
    }

    /// The terminal error of shard `s`, synthesizing one for silent deaths.
    fn shard_error(&self, s: usize) -> EngineError {
        self.workers[s]
            .dead
            .clone()
            .unwrap_or(EngineError::ShardPanicked {
                shard: s,
                payload: "worker terminated without a crash report".to_string(),
            })
    }

    /// Handles every queued worker event without blocking.
    fn drain_events(&mut self) -> Result<(), EngineError> {
        loop {
            match self.events.try_recv() {
                Ok(ev) => self.handle_event(ev)?,
                Err(_) => return Ok(()),
            }
        }
    }

    fn handle_event(&mut self, ev: WorkerEvent<W>) -> Result<(), EngineError> {
        match ev {
            WorkerEvent::Done { shard, collected } => {
                // A late Done from a shard already written off (straggler
                // restore) or failed is ignored: the books are closed.
                if self.collected[shard].is_none() && self.workers[shard].dead.is_none() {
                    self.collected[shard] = Some(*collected);
                }
                Ok(())
            }
            WorkerEvent::Panicked {
                shard,
                payload,
                at,
                rest,
                rx,
            } => self.handle_panic(shard, payload, at, rest, rx),
        }
    }

    /// Supervises one crash report: joins the dead thread, then either
    /// restarts the shard from its checkpoint (accounting the lost
    /// arrivals) or — without a checkpoint substrate or restart budget —
    /// records the failure as terminal.
    fn handle_panic(
        &mut self,
        shard: usize,
        payload: String,
        at: u64,
        rest: Vec<Edge>,
        rx: Receiver<Vec<Edge>>,
    ) -> Result<(), EngineError> {
        // Reap the dead thread eagerly; its JoinHandle result is `()`, the
        // real report arrived in the event we are holding.
        if let Some(handle) = self.workers[shard].handle.take() {
            let _ = handle.join();
        }
        let supervised = self.cfg.checkpoint_every > 0;
        if !supervised || self.workers[shard].restarts >= self.cfg.max_restarts {
            // Dropping the receiver here makes later sends Disconnected.
            drop(rx);
            drop(rest);
            let err = EngineError::ShardPanicked { shard, payload };
            self.workers[shard].dead = Some(err.clone());
            self.workers[shard].tx = None;
            return Err(err);
        }
        self.workers[shard].restarts += 1;
        let restarts = self.workers[shard].restarts;
        let (runner, ckpt_arrivals, checkpoint_corrupt) =
            self.restored_runner(shard, restarts, true);
        let lost = at.saturating_sub(ckpt_arrivals);
        self.health.incidents.push(ShardIncident {
            shard,
            payload: Some(payload),
            stalled: false,
            lost_arrivals: lost,
            checkpoint_corrupt,
            restarts,
        });
        self.health.lost_arrivals += lost;
        self.metrics.restarts.incr();
        self.metrics.lost.add(lost);
        self.metrics.worker.registry.event(Event {
            at,
            kind: EventKind::ShardRestart,
            shard: Some(shard as u32),
            epoch: None,
            detail: lost,
        });
        // Re-anchor the slot at the state actually restarted from (if the
        // checkpoint was corrupt, the shard restarts from scratch and the
        // slot must say so rather than fail the same way again).
        *locked(&self.workers[shard].ckpt) = runner.checkpoint_bytes();
        // `routed` stands: it counts shipped batches, and the restarted
        // worker still drains everything queued on the channel. No initial
        // report — the shard's published watermark must not regress.
        let handle = WorkerLoop {
            shard,
            runner,
            rx,
            first: Some(rest),
            recycle_tx: self.recycle_tx.clone(),
            event_tx: self.event_tx.clone(),
            ckpt: self.workers[shard].ckpt.clone(),
            checkpoint_every: self.cfg.checkpoint_every,
            faults: self.faults.clone(),
            initial_report: false,
            metrics: self.metrics.worker.clone(),
        }
        .spawn();
        self.workers[shard].handle = Some(handle);
        Ok(())
    }

    /// Writes a straggler off at finish time: restores its last checkpoint
    /// as the shard's final state, accounts everything routed past that
    /// watermark as lost, and detaches the stuck thread. Without a
    /// checkpoint substrate the shard is marked terminally stalled instead.
    fn abandon_straggler(&mut self, s: usize) {
        if self.cfg.checkpoint_every == 0 {
            self.workers[s].dead = Some(EngineError::ShardStalled { shard: s });
            self.workers[s].handle = None;
            return;
        }
        let restarts = self.workers[s].restarts;
        let (runner, ckpt_arrivals, checkpoint_corrupt) = self.restored_runner(s, restarts, false);
        let tail = self.pending[s].len() as u64;
        self.pending[s].clear();
        let routed = self.workers[s].routed + tail;
        let lost = routed.saturating_sub(ckpt_arrivals);
        self.health.incidents.push(ShardIncident {
            shard: s,
            payload: None,
            stalled: true,
            lost_arrivals: lost,
            checkpoint_corrupt,
            restarts,
        });
        self.health.lost_arrivals += lost;
        self.metrics.lost.add(lost);
        self.metrics.worker.registry.event(Event {
            at: routed,
            kind: EventKind::StragglerAbandoned,
            shard: Some(s as u32),
            epoch: None,
            detail: lost,
        });
        // Detach the stuck thread: it holds only channel clones and the
        // checkpoint Arc, and its late Done (if any) is ignored.
        self.workers[s].handle = None;
        let (sampler, finals, state) = runner.into_parts();
        self.collected[s] = Some(Collected {
            sampler,
            finals,
            state,
        });
    }

    /// Drains all pending batches, shuts the channels and collects the
    /// per-shard final states, taking ownership of the samplers.
    /// Idempotent.
    ///
    /// # Panics
    /// Panics on a terminal shard failure (see [`ShardedGps::try_finish`]
    /// for the typed-error variant).
    pub fn finish(&mut self) {
        if let Err(e) = self.try_finish() {
            panic!("{e}");
        }
    }

    /// [`ShardedGps::finish`] with typed errors instead of panics.
    ///
    /// With [`EngineConfig::finish_timeout`] set, shards that fail to
    /// drain in time are written off from their checkpoints (recorded as
    /// stalled incidents in [`ShardedGps::health`], their unconsumed
    /// arrivals counted lost) instead of blocking forever. A worker panic
    /// during the drain is restarted from its checkpoint like any other;
    /// it only becomes an error when recovery is impossible.
    pub fn try_finish(&mut self) -> Result<(), EngineError> {
        if self.workers.is_empty() {
            return match &self.failed {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            };
        }
        let deadline = self.cfg.finish_timeout.map(|t| Instant::now() + t);
        let mut first_err: Option<EngineError> = None;
        for s in 0..self.cfg.shards {
            if self.pending[s].is_empty() {
                continue;
            }
            match self.ship(s, self.cfg.finish_timeout) {
                Ok(()) => {}
                // The unshipped tail stays pending; straggler accounting
                // below counts it as lost.
                Err(PushError::Backpressure { .. }) => {}
                Err(PushError::Shard(e)) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        // Hang up every live feed: recv loops end, workers report Done.
        for w in &mut self.workers {
            w.tx = None;
        }
        loop {
            let unresolved: Vec<usize> = (0..self.cfg.shards)
                .filter(|&s| self.collected[s].is_none() && self.workers[s].dead.is_none())
                .collect();
            if unresolved.is_empty() {
                break;
            }
            let ev = match deadline {
                None => self.events.recv().ok(),
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) => self.events.recv_timeout(left).ok(),
                    None => None,
                },
            };
            match ev {
                Some(ev) => {
                    if let Err(e) = self.handle_event(ev) {
                        first_err.get_or_insert(e);
                    }
                }
                // Deadline passed (or every event sender vanished, which
                // cannot happen while we hold one): write stragglers off.
                None => {
                    for s in unresolved {
                        self.abandon_straggler(s);
                    }
                }
            }
        }
        for w in &self.workers {
            if let Some(e) = &w.dead {
                first_err.get_or_insert(e.clone());
            }
        }
        self.workers.clear();
        if let Some(e) = first_err {
            for slot in &mut self.collected {
                *slot = None;
            }
            self.failed = Some(e.clone());
            return Err(e);
        }
        for slot in &mut self.collected {
            if let Some(Collected {
                sampler,
                finals,
                state,
            }) = slot.take()
            {
                self.samplers.push(sampler);
                self.in_finals.push(finals);
                self.in_states.push(state);
            }
        }
        self.harvest_sampler_stats();
        Ok(())
    }

    /// Folds the finished samplers' always-on ingest counters
    /// ([`gps_core::SamplerStats`]) into the registry — once, at
    /// successful finish. Stable-class: the final sampler states are a
    /// pure function of seed + config + fault plan. A restarted shard's
    /// counters restart from its recovery checkpoint (the rolled-back
    /// interval is accounted in `gps_engine_lost_arrivals_total`).
    fn harvest_sampler_stats(&mut self) {
        if self.harvested {
            return;
        }
        self.harvested = true;
        let mut totals = gps_core::SamplerStats::default();
        for s in &self.samplers {
            let st = s.stats();
            totals.inserts += st.inserts;
            totals.evictions += st.evictions;
            totals.rejections += st.rejections;
            totals.duplicates += st.duplicates;
            totals.slab_spills += st.slab_spills;
        }
        self.metrics.sampler_inserts.add(totals.inserts);
        self.metrics.sampler_evictions.add(totals.evictions);
        self.metrics.sampler_rejections.add(totals.rejections);
        self.metrics.sampler_duplicates.add(totals.duplicates);
        self.metrics.sampler_slab_spills.add(totals.slab_spills);
    }

    /// Whether [`ShardedGps::finish`] has run (workers are constructed
    /// alive, so "no live workers" is exactly "finished").
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.workers.is_empty()
    }

    /// Merged triangle/wedge/clustering estimates over all shards
    /// (finishing the engine first if needed): per-shard post-stream
    /// estimates merged by [`TriadEstimates::merged_colored`] — strata sum,
    /// monochromacy rescale (`S²` triangles / `S` wedges / `S³`
    /// covariance), and for `S > 1` the between-shard empirical variance
    /// term, so reported CIs account for the coloring randomness instead
    /// of conditioning on the partition. See the crate docs.
    ///
    /// On a degraded engine (recovered crashes or written-off stragglers —
    /// see [`ShardedGps::health`]) the variances are additionally widened
    /// by the lost arrival fraction, so the CI honestly covers what the
    /// engine did not see; values are never silently rescaled.
    pub fn estimate(&mut self) -> TriadEstimates {
        self.finish();
        let parts: Vec<TriadEstimates> = self.samplers.iter().map(post_stream::estimate).collect();
        self.degrade(TriadEstimates::merged_colored(&parts))
    }

    /// Merged **in-stream** (snapshot, Algorithm 3) estimates over all
    /// shards, via the same [`TriadEstimates::merged_colored`] machinery —
    /// the lower-variance counterpart of [`ShardedGps::estimate`] on the
    /// identical samples. Finishes the engine first if needed; degraded
    /// runs widen variances exactly like [`ShardedGps::estimate`].
    ///
    /// # Panics
    /// Panics unless the engine was built with
    /// [`ShardedGps::with_estimation`].
    pub fn estimate_in_stream(&mut self) -> TriadEstimates {
        self.finish();
        let parts: Vec<TriadEstimates> = self
            .in_finals
            .iter()
            .map(|f| f.expect("engine was not built with in-stream estimation"))
            .collect();
        self.degrade(TriadEstimates::merged_colored(&parts))
    }

    /// Applies the honest-degradation widening when the run lost arrivals.
    /// A healthy run returns `est` untouched — bit for bit.
    fn degrade(&self, est: TriadEstimates) -> TriadEstimates {
        if !self.health.degraded() {
            return est;
        }
        let lost = self.health.lost_arrivals as f64;
        est.widened_for_loss(lost / self.pushed.max(1) as f64)
    }

    /// Per-shard final in-stream estimates (estimating mode, after
    /// finish); `None` for a plain engine or while workers are live.
    pub fn in_stream_parts(&self) -> Option<Vec<TriadEstimates>> {
        if self.in_finals.is_empty() {
            return None;
        }
        self.in_finals.iter().copied().collect()
    }

    /// Merged point estimates only — `(triangles, wedges)`, rescaled like
    /// [`ShardedGps::estimate`] but skipping variance bookkeeping (and
    /// hence also the degraded-run variance widening — check
    /// [`ShardedGps::health`] before trusting the points on a faulted run).
    pub fn estimate_counts(&mut self) -> (f64, f64) {
        self.finish();
        let (mut tri, mut wedge) = (0.0, 0.0);
        for sampler in &self.samplers {
            let (t, w) = post_stream::estimate_counts(sampler);
            tri += t;
            wedge += w;
        }
        let s = self.cfg.shards as f64;
        (tri * s * s, wedge * s)
    }

    /// The per-shard samplers (available once finished).
    ///
    /// # Panics
    /// Panics if the engine has not been finished.
    pub fn samplers(&self) -> &[GpsSampler<W>] {
        assert!(
            !self.samplers.is_empty(),
            "samplers are owned by the workers until finish()"
        );
        &self.samplers
    }

    /// Consumes the engine, returning the per-shard samplers (finishing
    /// first if needed).
    pub fn into_samplers(mut self) -> Vec<GpsSampler<W>> {
        self.finish();
        std::mem::take(&mut self.samplers)
    }
}

impl<W: EdgeWeight> ShardedGps<W> {
    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.cfg.shards
    }

    /// Total reservoir budget `m` (sum of per-shard budgets).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Engine seed (drives shard RNGs and the partition).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Arrivals pushed so far (stream position `t`).
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The fault/recovery record of this run: every contained crash and
    /// written-off straggler, with lost-arrival accounting. Empty on a
    /// healthy run.
    #[inline]
    pub fn health(&self) -> &EngineHealth {
        &self.health
    }

    /// The engine's telemetry registry. Shared (`Arc`) so higher layers —
    /// `gps-serve` publishes board metrics here — can register their own
    /// metrics into the same snapshot, and so the lost-arrivals counter
    /// can be read from other threads while the supervisor runs.
    #[inline]
    pub fn telemetry_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.worker.registry)
    }

    /// A consistent snapshot of every registered metric and the event
    /// ring. Sampler ingest counters land at finish; the rest are live.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.metrics.worker.registry.snapshot()
    }

    /// The engine's lost-arrivals counter handle (stable-class; tracks
    /// [`EngineHealth::lost_arrivals`]). `gps-serve` stamps its value on
    /// published epochs so degraded epochs are self-describing.
    #[inline]
    pub fn lost_arrivals_counter(&self) -> Counter {
        self.metrics.lost.clone()
    }

    /// The edge → shard assignment this engine routes with.
    #[inline]
    pub fn partitioner(&self) -> &EdgePartitioner {
        &self.partitioner
    }

    /// Sum of per-shard sample sizes `Σ|K̂_i|` (available once finished).
    pub fn len(&self) -> usize {
        self.samplers.iter().map(GpsSampler::len).sum()
    }

    /// True when no shard holds any edge (trivially true before finish).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Restore-path internals for `snapshot`: the config, collected
    /// samplers and in-stream states of a finished engine.
    pub(crate) fn parts(&self) -> EngineParts<'_, W> {
        (&self.cfg, &self.samplers, &self.in_states, self.pushed)
    }

    /// Sets the stream position on a restored engine (see `snapshot`).
    pub(crate) fn set_pushed(&mut self, pushed: u64) {
        self.pushed = pushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};

    fn clique_chunks(n: u32) -> Vec<Edge> {
        let mut edges = vec![];
        for base in (0..n).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        edges
    }

    #[test]
    fn shard_budgets_partition_the_total() {
        for (m, s) in [(10, 3), (16, 4), (7, 7), (100, 8), (5, 1)] {
            let budgets: Vec<usize> = (0..s)
                .map(|i| ShardedGps::<UniformWeight>::shard_capacity(m, s, i))
                .collect();
            assert_eq!(budgets.iter().sum::<usize>(), m, "m={m} S={s}");
            assert!(budgets.iter().all(|&b| b > 0));
            assert!(budgets.iter().max().unwrap() - budgets.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn finish_is_idempotent_and_estimation_finishes_implicitly() {
        let mut engine = ShardedGps::new(32, TriangleWeight::default(), 7, 4);
        engine.push_stream(clique_chunks(50));
        let est = engine.estimate(); // implicit finish
        assert!(engine.is_finished());
        engine.finish();
        engine.finish();
        let again = engine.estimate();
        assert_eq!(est.triangles.value, again.triangles.value);
        assert_eq!(
            engine.len(),
            engine.samplers().iter().map(|s| s.len()).sum()
        );
    }

    #[test]
    fn every_arrival_reaches_exactly_one_shard() {
        let edges = clique_chunks(100);
        let mut engine = ShardedGps::new(1000, UniformWeight, 3, 4);
        engine.push_stream(edges.iter().copied());
        engine.finish();
        let total: u64 = engine.samplers().iter().map(|s| s.arrivals()).sum();
        assert_eq!(total, edges.len() as u64);
        assert_eq!(engine.pushed(), edges.len() as u64);
        // Capacity exceeds the stream: nothing dropped, so the union of the
        // shard reservoirs is the whole (deduplicated) stream.
        assert_eq!(engine.len(), edges.len());
    }

    #[test]
    fn duplicates_are_skipped_exactly_once_globally() {
        let mut engine = ShardedGps::new(100, UniformWeight, 5, 4);
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        engine.push_stream(edges);
        engine.push_stream(edges); // all duplicates
        engine.finish();
        let dups: u64 = engine.samplers().iter().map(|s| s.duplicates()).sum();
        assert_eq!(dups, 3, "same edge must route to the same shard");
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn push_batch_matches_per_edge_push() {
        let edges = clique_chunks(60);
        let mut a = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        a.push_stream(edges.iter().copied());
        let ea = a.estimate();
        let mut b = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        for chunk in edges.chunks(17) {
            b.push_batch(chunk);
        }
        let eb = b.estimate();
        assert_eq!(ea.triangles.value.to_bits(), eb.triangles.value.to_bits());
        assert_eq!(ea.wedges.value.to_bits(), eb.wedges.value.to_bits());
    }

    #[test]
    fn small_batches_and_deep_queues_agree_with_defaults() {
        // Batch boundaries must not affect results, only throughput.
        let edges = clique_chunks(80);
        let mut defaults = ShardedGps::new(50, TriangleWeight::default(), 2, 2);
        defaults.push_stream(edges.iter().copied());
        let a = defaults.estimate();
        let mut tiny = ShardedGps::with_config(
            EngineConfig {
                batch: 3,
                queue: 1,
                ..EngineConfig::new(50, 2, 2)
            },
            TriangleWeight::default(),
        );
        tiny.push_stream(edges.iter().copied());
        let b = tiny.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(a.wedges.variance.to_bits(), b.wedges.variance.to_bits());
    }

    #[test]
    fn checkpointing_alone_changes_nothing() {
        // With no faults, a checkpointing engine must be bit-identical to
        // the default one: checkpoints are pure bookkeeping.
        let edges = clique_chunks(80);
        let mut plain = ShardedGps::new(50, TriangleWeight::default(), 2, 2);
        plain.push_stream(edges.iter().copied());
        let a = plain.estimate();
        let mut ckpt = ShardedGps::with_config(
            EngineConfig {
                checkpoint_every: 16,
                ..EngineConfig::new(50, 2, 2)
            },
            TriangleWeight::default(),
        );
        ckpt.push_stream(edges.iter().copied());
        let b = ckpt.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(
            a.triangles.variance.to_bits(),
            b.triangles.variance.to_bits()
        );
        assert!(!ckpt.health().degraded());
    }

    #[test]
    fn estimating_engine_matches_bare_in_stream_estimator_at_s1() {
        let edges = clique_chunks(60);
        let mut bare = gps_core::InStreamEstimator::new(30, TriangleWeight::default(), 13);
        bare.process_stream(edges.iter().copied());
        let mut engine = ShardedGps::with_estimation(
            EngineConfig::new(30, 1, 13),
            TriangleWeight::default(),
            None,
        );
        engine.push_stream(edges.iter().copied());
        let merged = engine.estimate_in_stream();
        let expect = bare.estimates();
        assert_eq!(
            merged.triangles.value.to_bits(),
            expect.triangles.value.to_bits()
        );
        assert_eq!(
            merged.triangles.variance.to_bits(),
            expect.triangles.variance.to_bits()
        );
        assert_eq!(merged.wedges.value.to_bits(), expect.wedges.value.to_bits());
        assert_eq!(
            merged.tri_wedge_cov.to_bits(),
            expect.tri_wedge_cov.to_bits()
        );
        // Sampling is untouched by the estimator wrapper.
        assert_eq!(engine.samplers()[0].threshold(), bare.sampler().threshold());
    }

    #[test]
    fn estimating_engine_sampling_is_identical_to_plain_engine() {
        let edges = clique_chunks(80);
        let mut plain = ShardedGps::new(40, TriangleWeight::default(), 5, 3);
        plain.push_stream(edges.iter().copied());
        let a = plain.estimate();
        let mut live = ShardedGps::with_estimation(
            EngineConfig::new(40, 3, 5),
            TriangleWeight::default(),
            None,
        );
        live.push_stream(edges.iter().copied());
        let b = live.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(
            a.triangles.variance.to_bits(),
            b.triangles.variance.to_bits()
        );
        assert_eq!(a.wedges.value.to_bits(), b.wedges.value.to_bits());
        // And the in-stream merge is available on top.
        let instream = live.estimate_in_stream();
        assert!(instream.triangles.value >= 0.0);
        assert!(live.in_stream_parts().unwrap().len() == 3);
        assert!(plain.in_stream_parts().is_none());
    }

    #[test]
    fn epoch_hook_reports_are_ordered_and_reach_the_final_state() {
        let reports: Arc<Mutex<Vec<ShardReport>>> = Arc::default();
        let sink = reports.clone();
        let hook: EpochHook = Arc::new(move |r| sink.lock().unwrap().push(r));
        let mut engine = ShardedGps::with_estimation(
            EngineConfig {
                batch: 16,
                epoch_every: 32,
                ..EngineConfig::new(50, 2, 3)
            },
            TriangleWeight::default(),
            Some(hook),
        );
        let edges = clique_chunks(100);
        engine.push_stream(edges.iter().copied());
        engine.finish();
        let reports = reports.lock().unwrap();
        assert!(!reports.is_empty());
        // Per-shard arrivals are non-decreasing across that shard's reports
        // and the last report per shard matches the finished sampler.
        for shard in 0..2 {
            let of_shard: Vec<&ShardReport> = reports.iter().filter(|r| r.shard == shard).collect();
            assert!(!of_shard.is_empty(), "shard {shard} never reported");
            assert!(of_shard.windows(2).all(|w| w[0].arrivals <= w[1].arrivals));
            assert_eq!(
                of_shard.last().unwrap().arrivals,
                engine.samplers()[shard].arrivals(),
                "final report must carry the shard's final position"
            );
        }
        let total: u64 = (0..2)
            .map(|s| {
                reports
                    .iter()
                    .filter(|r| r.shard == s)
                    .map(|r| r.arrivals)
                    .max()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, edges.len() as u64);
    }

    #[test]
    fn unsupervised_panic_surfaces_typed_engine_error() {
        let plan = FaultPlan::new().panic_at(1, 10);
        let cfg = EngineConfig {
            batch: 4,
            ..EngineConfig::new(32, 2, 9)
        };
        let mut engine = ShardedGps::with_config_and_faults(cfg, UniformWeight, plan);
        let mut seen = None;
        for e in clique_chunks(100) {
            if let Err(err) = engine.try_push(e) {
                seen = Some(err);
                break;
            }
        }
        let err = match seen {
            Some(PushError::Shard(e)) => e,
            Some(other) => panic!("unexpected push error {other:?}"),
            // Queue depth can absorb the whole stream; the crash report
            // then surfaces at finish.
            None => engine
                .try_finish()
                .expect_err("injected panic must surface"),
        };
        match err {
            EngineError::ShardPanicked { shard, payload } => {
                assert_eq!(shard, 1);
                assert!(payload.contains("chaos: injected panic"), "{payload}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A failed engine stays failed.
        assert!(matches!(
            engine.try_finish(),
            Err(EngineError::ShardPanicked { shard: 1, .. })
        ));
    }

    #[test]
    fn supervised_panic_restarts_from_checkpoint_and_accounts_loss() {
        let run = || {
            let plan = FaultPlan::new().panic_at(0, 120);
            let cfg = EngineConfig {
                batch: 16,
                checkpoint_every: 64,
                ..EngineConfig::new(48, 2, 21)
            };
            let mut engine =
                ShardedGps::with_config_and_faults(cfg, TriangleWeight::default(), plan);
            engine.push_stream(clique_chunks(200));
            engine.finish();
            let health = engine.health().clone();
            let est = engine.estimate();
            (
                health,
                est.triangles.value.to_bits(),
                est.triangles.variance.to_bits(),
            )
        };
        let (h1, tri1, var1) = run();
        assert!(h1.degraded());
        assert_eq!(h1.incidents.len(), 1);
        let inc = &h1.incidents[0];
        assert_eq!(inc.shard, 0);
        assert!(!inc.stalled);
        assert!(!inc.checkpoint_corrupt);
        assert!(
            inc.payload
                .as_deref()
                .unwrap()
                .contains("chaos: injected panic"),
            "{:?}",
            inc.payload
        );
        // Checkpoints land on exact multiples of the cadence (batch sizes
        // divide it here), so the loss is exactly (64, 120].
        assert_eq!(inc.lost_arrivals, 120 - 64);
        assert_eq!(h1.lost_arrivals, inc.lost_arrivals);
        // Same seed, same fault plan ⇒ bit-identical everything.
        let (h2, tri2, var2) = run();
        assert_eq!(h1, h2, "chaos runs must be reproducible");
        assert_eq!(tri1, tri2);
        assert_eq!(var1, var2);
    }

    #[test]
    fn degraded_estimates_widen_but_keep_values() {
        let baseline = {
            let mut engine = ShardedGps::with_config(
                EngineConfig {
                    batch: 16,
                    checkpoint_every: 64,
                    ..EngineConfig::new(48, 2, 21)
                },
                TriangleWeight::default(),
            );
            engine.push_stream(clique_chunks(200));
            engine.estimate()
        };
        let mut engine = ShardedGps::with_config_and_faults(
            EngineConfig {
                batch: 16,
                checkpoint_every: 64,
                ..EngineConfig::new(48, 2, 21)
            },
            TriangleWeight::default(),
            FaultPlan::new().panic_at(0, 120),
        );
        engine.push_stream(clique_chunks(200));
        let est = engine.estimate();
        // The degraded run saw fewer arrivals, so its value differs from
        // the healthy one's — but its variance must carry the extra
        // loss-widening term on top of whatever the merge reports.
        assert!(est.triangles.variance > 0.0);
        let (lo, hi) = est.triangles.ci95();
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        let _ = baseline;
    }

    #[test]
    fn try_push_backpressure_times_out_and_recovers() {
        let plan = FaultPlan::new().stall_at(0, 1, 300);
        let cfg = EngineConfig {
            batch: 1,
            queue: 1,
            push_timeout: Some(Duration::from_millis(30)),
            ..EngineConfig::new(8, 1, 3)
        };
        let mut engine = ShardedGps::with_config_and_faults(cfg, UniformWeight, plan);
        // S = 1: every edge hits the stalled shard. The first edge puts the
        // worker to sleep, the next fills the queue, then backpressure.
        let mut hit = false;
        for i in 0..10u32 {
            match engine.try_push(Edge::new(i, i + 1)) {
                Ok(()) => {}
                Err(PushError::Backpressure { shard }) => {
                    assert_eq!(shard, 0);
                    hit = true;
                    break;
                }
                Err(PushError::Shard(e)) => panic!("unexpected shard error {e}"),
            }
        }
        assert!(
            hit,
            "bounded queue behind a stalled worker must backpressure"
        );
        // Once the stall ends, finish drains everything that stayed
        // buffered: nothing is lost, the run is not degraded.
        engine.finish();
        assert!(!engine.health().degraded());
        assert_eq!(engine.samplers()[0].arrivals(), engine.pushed());
    }

    #[test]
    fn permanently_stalled_shard_is_written_off_from_its_checkpoint() {
        let plan = FaultPlan::new().stall_forever(0, 80);
        let cfg = EngineConfig {
            batch: 8,
            checkpoint_every: 32,
            push_timeout: Some(Duration::from_millis(50)),
            finish_timeout: Some(Duration::from_millis(250)),
            ..EngineConfig::new(48, 2, 17)
        };
        let mut engine = ShardedGps::with_config_and_faults(cfg, TriangleWeight::default(), plan);
        for e in clique_chunks(120) {
            // The stalled shard may backpressure; every unshipped edge is
            // accounted as lost at finish, so ignoring the error is safe.
            let _ = engine.try_push(e);
        }
        engine.finish();
        let health = engine.health();
        assert!(health.degraded());
        let inc = health
            .incidents
            .iter()
            .find(|i| i.shard == 0)
            .expect("stalled shard must be recorded");
        assert!(inc.stalled);
        assert!(inc.payload.is_none());
        assert!(inc.lost_arrivals > 0);
        assert!(health.lost_arrivals >= inc.lost_arrivals);
        let est = engine.estimate();
        assert!(est.triangles.value.is_finite());
        assert!(est.triangles.variance >= 0.0);
    }

    #[test]
    fn corrupt_checkpoint_restarts_from_scratch_and_says_so() {
        let plan = FaultPlan::new()
            .corrupt_checkpoints_at(0, 1)
            .panic_at(0, 100);
        let cfg = EngineConfig {
            batch: 8,
            checkpoint_every: 32,
            ..EngineConfig::new(48, 2, 23)
        };
        let mut engine = ShardedGps::with_config_and_faults(cfg, TriangleWeight::default(), plan);
        engine.push_stream(clique_chunks(150));
        engine.finish();
        let inc = engine
            .health()
            .incidents
            .iter()
            .find(|i| i.shard == 0)
            .cloned()
            .expect("crash incident must be recorded");
        assert!(inc.checkpoint_corrupt);
        assert_eq!(
            inc.lost_arrivals, 100,
            "a corrupt checkpoint loses the whole prefix"
        );
        assert!(engine.estimate().triangles.value.is_finite());
    }

    #[test]
    #[should_panic(expected = "not built with in-stream estimation")]
    fn plain_engine_rejects_in_stream_estimation() {
        let mut engine = ShardedGps::new(8, UniformWeight, 0, 2);
        engine.push(Edge::new(0, 1));
        let _ = engine.estimate_in_stream();
    }

    #[test]
    #[should_panic(expected = "push on a finished")]
    fn pushing_after_finish_panics() {
        let mut engine = ShardedGps::new(8, UniformWeight, 0, 2);
        engine.finish();
        engine.push(Edge::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn rejects_capacity_below_shard_count() {
        let _ = ShardedGps::new(3, UniformWeight, 0, 4);
    }
}
