//! The sharded streaming engine: [`ShardedGps`].
//!
//! Threading model: each shard is one worker thread owning an independent
//! `GpsSampler` (per-shard budget `m/S` of the engine's total budget `m`).
//! The ingest thread routes every arrival to its shard's pending batch
//! buffer and ships full batches over a bounded `sync_channel` — the same
//! chunking idea as `post_stream::estimate_with_threads`, turned around to
//! parallelize `GPSUpdate` itself. Bounded queues give natural
//! backpressure: a producer outrunning the workers blocks on `send`
//! instead of buffering the stream.
//!
//! Edges are routed by the seeded [`EdgePartitioner`], so a duplicate
//! arrival always lands on the shard that holds (or rejected) its first
//! occurrence — the per-shard duplicate skip is exactly the global one.

use crate::partition::{shard_seed, EdgePartitioner};
use gps_core::weights::EdgeWeight;
use gps_core::{post_stream, GpsSampler, InStreamEstimator, TriadEstimates};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Total reservoir budget `m`, split across shards (shard `i` gets
    /// `m/S`, the first `m mod S` shards one more).
    pub capacity: usize,
    /// Number of shards / worker threads `S`.
    pub shards: usize,
    /// Engine seed: drives every shard RNG and the edge partition.
    pub seed: u64,
    /// Edges per channel batch (amortizes one `send` over this many
    /// arrivals).
    pub batch: usize,
    /// Bounded channel depth, in batches per shard.
    pub queue: usize,
    /// Adjacency backend every shard's sampler runs on.
    pub backend: BackendKind,
    /// Per-shard arrivals between two [`ShardReport`]s on the epoch hook
    /// (in-stream estimating mode only; ignored without a hook).
    pub epoch_every: u64,
}

/// Default [`EngineConfig::epoch_every`]: one shard report per 2048
/// per-shard arrivals.
pub const DEFAULT_EPOCH_EVERY: u64 = 2048;

impl EngineConfig {
    /// A config with the tuned defaults: 1024-edge batches, 4-batch queues,
    /// compact backend, a shard report every [`DEFAULT_EPOCH_EVERY`]
    /// per-shard arrivals.
    pub fn new(capacity: usize, shards: usize, seed: u64) -> Self {
        EngineConfig {
            capacity,
            shards,
            seed,
            batch: 1024,
            queue: 4,
            backend: BackendKind::Compact,
            epoch_every: DEFAULT_EPOCH_EVERY,
        }
    }
}

/// One shard's progress report, delivered on the [`EpochHook`] from the
/// shard's worker thread: its current in-stream (snapshot) estimates at its
/// current substream position. Reports from one shard arrive in order;
/// reports from different shards are concurrent.
#[derive(Clone, Copy, Debug)]
pub struct ShardReport {
    /// Reporting shard index.
    pub shard: usize,
    /// Arrivals this shard has consumed (its substream position).
    pub arrivals: u64,
    /// The shard's in-stream estimates of *its own* (monochromatic)
    /// subgraph counts — merge across shards with
    /// [`TriadEstimates::merged_colored`].
    pub estimates: TriadEstimates,
}

/// Callback invoked by estimating-mode workers every
/// [`EngineConfig::epoch_every`] per-shard arrivals, plus once at drain end
/// (so the final state of every shard is always reported). Runs on the
/// worker thread — keep it cheap; `gps-serve` publishes an epoch from it.
pub type EpochHook = Arc<dyn Fn(ShardReport) + Send + Sync>;

/// What each worker runs per edge: a bare sampler (`GPSUpdate` only) or an
/// in-stream estimator (snapshot estimation inside the engine, paper Alg 3
/// per shard) with an optional report hook.
enum Runner<W> {
    Plain(GpsSampler<W>),
    Live {
        shard: usize,
        est: InStreamEstimator<W>,
        hook: Option<EpochHook>,
        every: u64,
        next: u64,
    },
}

impl<W: EdgeWeight> Runner<W> {
    #[inline]
    fn process(&mut self, edge: Edge) {
        match self {
            Runner::Plain(sampler) => {
                sampler.process(edge);
            }
            Runner::Live { est, .. } => {
                est.process(edge);
            }
        }
    }

    /// Fires the hook unconditionally with the shard's current state —
    /// once at worker start, so the board sees every shard's position
    /// before any new stream is consumed (on the restore path this is the
    /// restored watermark, keeping resumed epochs from regressing).
    fn report_now(&self) {
        if let Runner::Live {
            shard,
            est,
            hook: Some(hook),
            ..
        } = self
        {
            hook(ShardReport {
                shard: *shard,
                arrivals: est.sampler().arrivals(),
                estimates: est.estimates(),
            });
        }
    }

    /// Fires the hook if this shard crossed its next reporting position
    /// (called between batches, so reports align with batch boundaries).
    fn maybe_report(&mut self) {
        if let Runner::Live {
            shard,
            est,
            hook: Some(hook),
            every,
            next,
        } = self
        {
            let arrivals = est.sampler().arrivals();
            if arrivals >= *next {
                while *next <= arrivals {
                    *next += *every;
                }
                hook(ShardReport {
                    shard: *shard,
                    arrivals,
                    estimates: est.estimates(),
                });
            }
        }
    }

    /// Final report + teardown at drain end.
    fn into_parts(self) -> (GpsSampler<W>, Option<TriadEstimates>) {
        match self {
            Runner::Plain(sampler) => (sampler, None),
            Runner::Live {
                shard, est, hook, ..
            } => {
                let finals = est.estimates();
                if let Some(hook) = hook {
                    hook(ShardReport {
                        shard,
                        arrivals: est.sampler().arrivals(),
                        estimates: finals,
                    });
                }
                (est.into_sampler(), Some(finals))
            }
        }
    }
}

/// Worker construction mode (see [`ShardedGps::with_estimation`]).
pub(crate) enum WorkerMode {
    /// Bare samplers; post-stream estimation only.
    Plain,
    /// Per-shard `InStreamEstimator`s, optionally reporting through a hook.
    Estimating(Option<EpochHook>),
}

/// One shard: its feed channel and the thread that will hand the sampler
/// (plus, in estimating mode, its final in-stream estimates) back at
/// shutdown.
struct Worker<W> {
    tx: SyncSender<Vec<Edge>>,
    handle: JoinHandle<(GpsSampler<W>, Option<TriadEstimates>)>,
}

/// Sharded `GPS(m)`: `S` independent reservoirs over a hash-partitioned
/// stream, with unbiased cross-shard estimate merging (see the crate docs
/// for the stratification + monochromacy-correction argument).
///
/// Lifecycle: [`ShardedGps::push`] while streaming, then
/// [`ShardedGps::finish`] (or any estimation call, which finishes
/// implicitly) to drain the channels and join the workers; after that the
/// per-shard samplers are owned by the engine and estimation/persistence
/// are available. `finish` is idempotent; pushing after it panics.
///
/// ```
/// use gps_core::TriangleWeight;
/// use gps_engine::ShardedGps;
/// use gps_graph::Edge;
///
/// let mut engine = ShardedGps::new(64, TriangleWeight::default(), 42, 2);
/// engine.push_stream([Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
/// let est = engine.estimate();
/// // Capacity exceeds the stream: every shard retained everything, so the
/// // merged estimate counts each shard's monochromatic triangles exactly —
/// // unbiased (not exact) for the global count under the random coloring.
/// assert!(est.triangles.value >= 0.0);
/// assert_eq!(engine.pushed(), 3);
/// ```
pub struct ShardedGps<W> {
    cfg: EngineConfig,
    partitioner: EdgePartitioner,
    /// Per-shard pending batch buffers (ingest side).
    pending: Vec<Vec<Edge>>,
    /// Live workers; empty once finished.
    workers: Vec<Worker<W>>,
    /// Drained batch `Vec`s returned by the workers for reuse (kills the
    /// per-batch allocation that dominated the engine's single-core
    /// overhead; capacity survives the round trip).
    recycled: Receiver<Vec<Edge>>,
    /// Collected samplers; filled by `finish`.
    samplers: Vec<GpsSampler<W>>,
    /// Per-shard final in-stream estimates (estimating mode, post-finish).
    in_finals: Vec<Option<TriadEstimates>>,
    pushed: u64,
}

impl<W: EdgeWeight + Clone + Send + 'static> ShardedGps<W> {
    /// Creates an engine with total budget `capacity` split across
    /// `shards` workers, on the default config (see [`EngineConfig::new`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `capacity < shards` (every shard needs a
    /// positive reservoir).
    pub fn new(capacity: usize, weight_fn: W, seed: u64, shards: usize) -> Self {
        Self::with_config(EngineConfig::new(capacity, shards, seed), weight_fn)
    }

    /// Creates an engine from an explicit [`EngineConfig`].
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::new`], plus `batch == 0` or
    /// `queue == 0`.
    pub fn with_config(cfg: EngineConfig, weight_fn: W) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.capacity >= cfg.shards,
            "capacity {} cannot give {} shards a positive budget",
            cfg.capacity,
            cfg.shards
        );
        let samplers = Self::fresh_samplers(&cfg, &weight_fn);
        Self::launch(cfg, samplers, WorkerMode::Plain)
    }

    /// Creates an engine whose workers run the paper's **in-stream**
    /// estimator (Algorithm 3) over their substreams — the lower-variance
    /// snapshot estimates become available through
    /// [`ShardedGps::estimate_in_stream`], and, if `hook` is given, as
    /// periodic per-shard [`ShardReport`]s every
    /// [`EngineConfig::epoch_every`] per-shard arrivals (the publication
    /// hook `gps-serve` builds its live epochs on).
    ///
    /// Sampling is untouched: an estimating engine selects bit-identical
    /// reservoirs to a plain one on the same config, and post-stream
    /// estimation ([`ShardedGps::estimate`]) remains available.
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::with_config`].
    pub fn with_estimation(cfg: EngineConfig, weight_fn: W, hook: Option<EpochHook>) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.capacity >= cfg.shards,
            "capacity {} cannot give {} shards a positive budget",
            cfg.capacity,
            cfg.shards
        );
        let samplers = Self::fresh_samplers(&cfg, &weight_fn);
        Self::launch(cfg, samplers, WorkerMode::Estimating(hook))
    }

    fn fresh_samplers(cfg: &EngineConfig, weight_fn: &W) -> Vec<GpsSampler<W>> {
        (0..cfg.shards)
            .map(|i| {
                GpsSampler::with_backend(
                    Self::shard_capacity(cfg.capacity, cfg.shards, i),
                    weight_fn.clone(),
                    shard_seed(cfg.seed, i),
                    cfg.backend,
                )
            })
            .collect()
    }

    /// Budget of shard `i`: `m/S`, first `m mod S` shards get one more.
    /// Public (with [`shard_seed`]) so
    /// single-threaded mirrors of the engine can reproduce its exact
    /// per-shard samplers.
    pub fn shard_capacity(capacity: usize, shards: usize, i: usize) -> usize {
        capacity / shards + usize::from(i < capacity % shards)
    }

    /// Spawns one worker per sampler (also the restore path — see
    /// `snapshot::SavedEngine::into_engine`).
    pub(crate) fn launch(
        cfg: EngineConfig,
        samplers: Vec<GpsSampler<W>>,
        mode: WorkerMode,
    ) -> Self {
        assert!(cfg.batch > 0, "batch size must be positive");
        assert!(cfg.queue > 0, "queue depth must be positive");
        assert!(cfg.epoch_every > 0, "epoch cadence must be positive");
        let (recycle_tx, recycled) = channel::<Vec<Edge>>();
        let hook = match &mode {
            WorkerMode::Plain => None,
            WorkerMode::Estimating(hook) => hook.clone(),
        };
        let estimating = matches!(mode, WorkerMode::Estimating(_));
        let workers = samplers
            .into_iter()
            .enumerate()
            .map(|(shard, sampler)| {
                let mut runner = if estimating {
                    Runner::Live {
                        shard,
                        // `from_sampler` seeds the accumulators from the
                        // sample as handed over: zero for a fresh engine,
                        // the post-stream estimate on the restore path.
                        next: sampler.arrivals() + cfg.epoch_every,
                        est: InStreamEstimator::from_sampler(sampler),
                        hook: hook.clone(),
                        every: cfg.epoch_every,
                    }
                } else {
                    Runner::Plain(sampler)
                };
                let (tx, rx) = sync_channel::<Vec<Edge>>(cfg.queue);
                let recycle_tx: Sender<Vec<Edge>> = recycle_tx.clone();
                let handle = std::thread::spawn(move || {
                    runner.report_now();
                    while let Ok(mut batch) = rx.recv() {
                        for e in batch.drain(..) {
                            runner.process(e);
                        }
                        // Hand the drained buffer back for reuse; the
                        // producer may already be gone at drain time.
                        let _ = recycle_tx.send(batch);
                        runner.maybe_report();
                    }
                    runner.into_parts()
                });
                Worker { tx, handle }
            })
            .collect();
        ShardedGps {
            partitioner: EdgePartitioner::new(cfg.seed, cfg.shards),
            pending: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch))
                .collect(),
            workers,
            recycled,
            samplers: Vec::with_capacity(cfg.shards),
            in_finals: Vec::with_capacity(cfg.shards),
            pushed: 0,
            cfg,
        }
    }

    /// Offers one stream arrival to the engine (routes it to its shard;
    /// ships a batch when that shard's buffer fills).
    ///
    /// # Panics
    /// Panics if called after [`ShardedGps::finish`], or if a shard worker
    /// has panicked.
    pub fn push(&mut self, edge: Edge) {
        assert!(
            !self.workers.is_empty(),
            "push on a finished ShardedGps engine"
        );
        self.pushed += 1;
        let s = self.partitioner.shard_of(edge);
        self.pending[s].push(edge);
        if self.pending[s].len() == self.cfg.batch {
            self.ship(s);
        }
    }

    /// Feeds a pre-batched chunk (e.g. from `gps_stream::batched`); exactly
    /// equivalent to pushing each edge, but the whole chunk is routed to
    /// the per-shard buffers first and each shard ships at most once per
    /// call — one `len`-check pass per chunk instead of per edge (shipped
    /// batches may exceed [`EngineConfig::batch`]; per-shard edge order,
    /// and hence every result, is unaffected).
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::push`].
    pub fn push_batch(&mut self, batch: &[Edge]) {
        assert!(
            !self.workers.is_empty(),
            "push on a finished ShardedGps engine"
        );
        self.pushed += batch.len() as u64;
        for &e in batch {
            let s = self.partitioner.shard_of(e);
            self.pending[s].push(e);
        }
        for s in 0..self.cfg.shards {
            if self.pending[s].len() >= self.cfg.batch {
                self.ship(s);
            }
        }
    }

    /// Feeds every edge of an iterator through [`ShardedGps::push`].
    pub fn push_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.push(e);
        }
    }

    /// Sends shard `s`'s pending buffer (blocking if its queue is full),
    /// replacing it with a recycled worker buffer when one is available.
    fn ship(&mut self, s: usize) {
        let fresh = self
            .recycled
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.cfg.batch));
        let batch = std::mem::replace(&mut self.pending[s], fresh);
        self.workers[s]
            .tx
            .send(batch)
            .expect("shard worker hung up early (worker panicked?)");
    }

    /// Drains all pending batches, shuts the channels and joins the
    /// workers, taking ownership of the per-shard samplers. Idempotent.
    ///
    /// # Panics
    /// Panics if a shard worker panicked.
    pub fn finish(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        for s in 0..self.cfg.shards {
            if !self.pending[s].is_empty() {
                self.ship(s);
            }
        }
        for worker in self.workers.drain(..) {
            drop(worker.tx); // hang up: the worker's recv loop ends
            let (sampler, finals) = worker.handle.join().expect("shard worker panicked");
            self.samplers.push(sampler);
            self.in_finals.push(finals);
        }
    }

    /// Whether [`ShardedGps::finish`] has run (workers are constructed
    /// alive, so "no live workers" is exactly "finished").
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.workers.is_empty()
    }

    /// Merged triangle/wedge/clustering estimates over all shards
    /// (finishing the engine first if needed): per-shard post-stream
    /// estimates merged by [`TriadEstimates::merged_colored`] — strata sum,
    /// monochromacy rescale (`S²` triangles / `S` wedges / `S³`
    /// covariance), and for `S > 1` the between-shard empirical variance
    /// term, so reported CIs account for the coloring randomness instead
    /// of conditioning on the partition. See the crate docs.
    pub fn estimate(&mut self) -> TriadEstimates {
        self.finish();
        let parts: Vec<TriadEstimates> = self.samplers.iter().map(post_stream::estimate).collect();
        TriadEstimates::merged_colored(&parts)
    }

    /// Merged **in-stream** (snapshot, Algorithm 3) estimates over all
    /// shards, via the same [`TriadEstimates::merged_colored`] machinery —
    /// the lower-variance counterpart of [`ShardedGps::estimate`] on the
    /// identical samples. Finishes the engine first if needed.
    ///
    /// # Panics
    /// Panics unless the engine was built with
    /// [`ShardedGps::with_estimation`].
    pub fn estimate_in_stream(&mut self) -> TriadEstimates {
        self.finish();
        let parts: Vec<TriadEstimates> = self
            .in_finals
            .iter()
            .map(|f| f.expect("engine was not built with in-stream estimation"))
            .collect();
        TriadEstimates::merged_colored(&parts)
    }

    /// Per-shard final in-stream estimates (estimating mode, after
    /// finish); `None` for a plain engine or while workers are live.
    pub fn in_stream_parts(&self) -> Option<Vec<TriadEstimates>> {
        if self.in_finals.is_empty() {
            return None;
        }
        self.in_finals.iter().copied().collect()
    }

    /// Merged point estimates only — `(triangles, wedges)`, rescaled like
    /// [`ShardedGps::estimate`] but skipping variance bookkeeping.
    pub fn estimate_counts(&mut self) -> (f64, f64) {
        self.finish();
        let (mut tri, mut wedge) = (0.0, 0.0);
        for sampler in &self.samplers {
            let (t, w) = post_stream::estimate_counts(sampler);
            tri += t;
            wedge += w;
        }
        let s = self.cfg.shards as f64;
        (tri * s * s, wedge * s)
    }

    /// The per-shard samplers (available once finished).
    ///
    /// # Panics
    /// Panics if the engine has not been finished.
    pub fn samplers(&self) -> &[GpsSampler<W>] {
        assert!(
            !self.samplers.is_empty(),
            "samplers are owned by the workers until finish()"
        );
        &self.samplers
    }

    /// Consumes the engine, returning the per-shard samplers (finishing
    /// first if needed).
    pub fn into_samplers(mut self) -> Vec<GpsSampler<W>> {
        self.finish();
        std::mem::take(&mut self.samplers)
    }
}

impl<W: EdgeWeight> ShardedGps<W> {
    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.cfg.shards
    }

    /// Total reservoir budget `m` (sum of per-shard budgets).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Engine seed (drives shard RNGs and the partition).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Arrivals pushed so far (stream position `t`).
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The edge → shard assignment this engine routes with.
    #[inline]
    pub fn partitioner(&self) -> &EdgePartitioner {
        &self.partitioner
    }

    /// Sum of per-shard sample sizes `Σ|K̂_i|` (available once finished).
    pub fn len(&self) -> usize {
        self.samplers.iter().map(GpsSampler::len).sum()
    }

    /// True when no shard holds any edge (trivially true before finish).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Restore-path internals for `snapshot`: the config and collected
    /// samplers of a finished engine.
    pub(crate) fn parts(&self) -> (&EngineConfig, &[GpsSampler<W>], u64) {
        (&self.cfg, &self.samplers, self.pushed)
    }

    /// Sets the stream position on a restored engine (see `snapshot`).
    pub(crate) fn set_pushed(&mut self, pushed: u64) {
        self.pushed = pushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};

    fn clique_chunks(n: u32) -> Vec<Edge> {
        let mut edges = vec![];
        for base in (0..n).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        edges
    }

    #[test]
    fn shard_budgets_partition_the_total() {
        for (m, s) in [(10, 3), (16, 4), (7, 7), (100, 8), (5, 1)] {
            let budgets: Vec<usize> = (0..s)
                .map(|i| ShardedGps::<UniformWeight>::shard_capacity(m, s, i))
                .collect();
            assert_eq!(budgets.iter().sum::<usize>(), m, "m={m} S={s}");
            assert!(budgets.iter().all(|&b| b > 0));
            assert!(budgets.iter().max().unwrap() - budgets.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn finish_is_idempotent_and_estimation_finishes_implicitly() {
        let mut engine = ShardedGps::new(32, TriangleWeight::default(), 7, 4);
        engine.push_stream(clique_chunks(50));
        let est = engine.estimate(); // implicit finish
        assert!(engine.is_finished());
        engine.finish();
        engine.finish();
        let again = engine.estimate();
        assert_eq!(est.triangles.value, again.triangles.value);
        assert_eq!(
            engine.len(),
            engine.samplers().iter().map(|s| s.len()).sum()
        );
    }

    #[test]
    fn every_arrival_reaches_exactly_one_shard() {
        let edges = clique_chunks(100);
        let mut engine = ShardedGps::new(1000, UniformWeight, 3, 4);
        engine.push_stream(edges.iter().copied());
        engine.finish();
        let total: u64 = engine.samplers().iter().map(|s| s.arrivals()).sum();
        assert_eq!(total, edges.len() as u64);
        assert_eq!(engine.pushed(), edges.len() as u64);
        // Capacity exceeds the stream: nothing dropped, so the union of the
        // shard reservoirs is the whole (deduplicated) stream.
        assert_eq!(engine.len(), edges.len());
    }

    #[test]
    fn duplicates_are_skipped_exactly_once_globally() {
        let mut engine = ShardedGps::new(100, UniformWeight, 5, 4);
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        engine.push_stream(edges);
        engine.push_stream(edges); // all duplicates
        engine.finish();
        let dups: u64 = engine.samplers().iter().map(|s| s.duplicates()).sum();
        assert_eq!(dups, 3, "same edge must route to the same shard");
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn push_batch_matches_per_edge_push() {
        let edges = clique_chunks(60);
        let mut a = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        a.push_stream(edges.iter().copied());
        let ea = a.estimate();
        let mut b = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        for chunk in edges.chunks(17) {
            b.push_batch(chunk);
        }
        let eb = b.estimate();
        assert_eq!(ea.triangles.value.to_bits(), eb.triangles.value.to_bits());
        assert_eq!(ea.wedges.value.to_bits(), eb.wedges.value.to_bits());
    }

    #[test]
    fn small_batches_and_deep_queues_agree_with_defaults() {
        // Batch boundaries must not affect results, only throughput.
        let edges = clique_chunks(80);
        let mut defaults = ShardedGps::new(50, TriangleWeight::default(), 2, 2);
        defaults.push_stream(edges.iter().copied());
        let a = defaults.estimate();
        let mut tiny = ShardedGps::with_config(
            EngineConfig {
                batch: 3,
                queue: 1,
                ..EngineConfig::new(50, 2, 2)
            },
            TriangleWeight::default(),
        );
        tiny.push_stream(edges.iter().copied());
        let b = tiny.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(a.wedges.variance.to_bits(), b.wedges.variance.to_bits());
    }

    #[test]
    fn estimating_engine_matches_bare_in_stream_estimator_at_s1() {
        let edges = clique_chunks(60);
        let mut bare = gps_core::InStreamEstimator::new(30, TriangleWeight::default(), 13);
        bare.process_stream(edges.iter().copied());
        let mut engine = ShardedGps::with_estimation(
            EngineConfig::new(30, 1, 13),
            TriangleWeight::default(),
            None,
        );
        engine.push_stream(edges.iter().copied());
        let merged = engine.estimate_in_stream();
        let expect = bare.estimates();
        assert_eq!(
            merged.triangles.value.to_bits(),
            expect.triangles.value.to_bits()
        );
        assert_eq!(
            merged.triangles.variance.to_bits(),
            expect.triangles.variance.to_bits()
        );
        assert_eq!(merged.wedges.value.to_bits(), expect.wedges.value.to_bits());
        assert_eq!(
            merged.tri_wedge_cov.to_bits(),
            expect.tri_wedge_cov.to_bits()
        );
        // Sampling is untouched by the estimator wrapper.
        assert_eq!(engine.samplers()[0].threshold(), bare.sampler().threshold());
    }

    #[test]
    fn estimating_engine_sampling_is_identical_to_plain_engine() {
        let edges = clique_chunks(80);
        let mut plain = ShardedGps::new(40, TriangleWeight::default(), 5, 3);
        plain.push_stream(edges.iter().copied());
        let a = plain.estimate();
        let mut live = ShardedGps::with_estimation(
            EngineConfig::new(40, 3, 5),
            TriangleWeight::default(),
            None,
        );
        live.push_stream(edges.iter().copied());
        let b = live.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(
            a.triangles.variance.to_bits(),
            b.triangles.variance.to_bits()
        );
        assert_eq!(a.wedges.value.to_bits(), b.wedges.value.to_bits());
        // And the in-stream merge is available on top.
        let instream = live.estimate_in_stream();
        assert!(instream.triangles.value >= 0.0);
        assert!(live.in_stream_parts().unwrap().len() == 3);
        assert!(plain.in_stream_parts().is_none());
    }

    #[test]
    fn epoch_hook_reports_are_ordered_and_reach_the_final_state() {
        use std::sync::Mutex;
        let reports: Arc<Mutex<Vec<ShardReport>>> = Arc::default();
        let sink = reports.clone();
        let hook: EpochHook = Arc::new(move |r| sink.lock().unwrap().push(r));
        let mut engine = ShardedGps::with_estimation(
            EngineConfig {
                batch: 16,
                epoch_every: 32,
                ..EngineConfig::new(50, 2, 3)
            },
            TriangleWeight::default(),
            Some(hook),
        );
        let edges = clique_chunks(100);
        engine.push_stream(edges.iter().copied());
        engine.finish();
        let reports = reports.lock().unwrap();
        assert!(!reports.is_empty());
        // Per-shard arrivals are non-decreasing across that shard's reports
        // and the last report per shard matches the finished sampler.
        for shard in 0..2 {
            let of_shard: Vec<&ShardReport> = reports.iter().filter(|r| r.shard == shard).collect();
            assert!(!of_shard.is_empty(), "shard {shard} never reported");
            assert!(of_shard.windows(2).all(|w| w[0].arrivals <= w[1].arrivals));
            assert_eq!(
                of_shard.last().unwrap().arrivals,
                engine.samplers()[shard].arrivals(),
                "final report must carry the shard's final position"
            );
        }
        let total: u64 = (0..2)
            .map(|s| {
                reports
                    .iter()
                    .filter(|r| r.shard == s)
                    .map(|r| r.arrivals)
                    .max()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, edges.len() as u64);
    }

    #[test]
    #[should_panic(expected = "not built with in-stream estimation")]
    fn plain_engine_rejects_in_stream_estimation() {
        let mut engine = ShardedGps::new(8, UniformWeight, 0, 2);
        engine.push(Edge::new(0, 1));
        let _ = engine.estimate_in_stream();
    }

    #[test]
    #[should_panic(expected = "push on a finished")]
    fn pushing_after_finish_panics() {
        let mut engine = ShardedGps::new(8, UniformWeight, 0, 2);
        engine.finish();
        engine.push(Edge::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn rejects_capacity_below_shard_count() {
        let _ = ShardedGps::new(3, UniformWeight, 0, 4);
    }
}
