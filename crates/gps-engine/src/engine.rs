//! The sharded streaming engine: [`ShardedGps`].
//!
//! Threading model: each shard is one worker thread owning an independent
//! `GpsSampler` (per-shard budget `m/S` of the engine's total budget `m`).
//! The ingest thread routes every arrival to its shard's pending batch
//! buffer and ships full batches over a bounded `sync_channel` — the same
//! chunking idea as `post_stream::estimate_with_threads`, turned around to
//! parallelize `GPSUpdate` itself. Bounded queues give natural
//! backpressure: a producer outrunning the workers blocks on `send`
//! instead of buffering the stream.
//!
//! Edges are routed by the seeded [`EdgePartitioner`], so a duplicate
//! arrival always lands on the shard that holds (or rejected) its first
//! occurrence — the per-shard duplicate skip is exactly the global one.

use crate::partition::{shard_seed, EdgePartitioner};
use gps_core::weights::EdgeWeight;
use gps_core::{post_stream, GpsSampler, TriadEstimates};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Total reservoir budget `m`, split across shards (shard `i` gets
    /// `m/S`, the first `m mod S` shards one more).
    pub capacity: usize,
    /// Number of shards / worker threads `S`.
    pub shards: usize,
    /// Engine seed: drives every shard RNG and the edge partition.
    pub seed: u64,
    /// Edges per channel batch (amortizes one `send` over this many
    /// arrivals).
    pub batch: usize,
    /// Bounded channel depth, in batches per shard.
    pub queue: usize,
    /// Adjacency backend every shard's sampler runs on.
    pub backend: BackendKind,
}

impl EngineConfig {
    /// A config with the tuned defaults: 1024-edge batches, 4-batch queues,
    /// compact backend.
    pub fn new(capacity: usize, shards: usize, seed: u64) -> Self {
        EngineConfig {
            capacity,
            shards,
            seed,
            batch: 1024,
            queue: 4,
            backend: BackendKind::Compact,
        }
    }
}

/// One shard: its feed channel and the thread that will hand the sampler
/// back at shutdown.
struct Worker<W> {
    tx: SyncSender<Vec<Edge>>,
    handle: JoinHandle<GpsSampler<W>>,
}

/// Sharded `GPS(m)`: `S` independent reservoirs over a hash-partitioned
/// stream, with unbiased cross-shard estimate merging (see the crate docs
/// for the stratification + monochromacy-correction argument).
///
/// Lifecycle: [`ShardedGps::push`] while streaming, then
/// [`ShardedGps::finish`] (or any estimation call, which finishes
/// implicitly) to drain the channels and join the workers; after that the
/// per-shard samplers are owned by the engine and estimation/persistence
/// are available. `finish` is idempotent; pushing after it panics.
///
/// ```
/// use gps_core::TriangleWeight;
/// use gps_engine::ShardedGps;
/// use gps_graph::Edge;
///
/// let mut engine = ShardedGps::new(64, TriangleWeight::default(), 42, 2);
/// engine.push_stream([Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
/// let est = engine.estimate();
/// // Capacity exceeds the stream: every shard retained everything, so the
/// // merged estimate counts each shard's monochromatic triangles exactly —
/// // unbiased (not exact) for the global count under the random coloring.
/// assert!(est.triangles.value >= 0.0);
/// assert_eq!(engine.pushed(), 3);
/// ```
pub struct ShardedGps<W> {
    cfg: EngineConfig,
    partitioner: EdgePartitioner,
    /// Per-shard pending batch buffers (ingest side).
    pending: Vec<Vec<Edge>>,
    /// Live workers; empty once finished.
    workers: Vec<Worker<W>>,
    /// Collected samplers; filled by `finish`.
    samplers: Vec<GpsSampler<W>>,
    pushed: u64,
}

impl<W: EdgeWeight + Clone + Send + 'static> ShardedGps<W> {
    /// Creates an engine with total budget `capacity` split across
    /// `shards` workers, on the default config (see [`EngineConfig::new`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `capacity < shards` (every shard needs a
    /// positive reservoir).
    pub fn new(capacity: usize, weight_fn: W, seed: u64, shards: usize) -> Self {
        Self::with_config(EngineConfig::new(capacity, shards, seed), weight_fn)
    }

    /// Creates an engine from an explicit [`EngineConfig`].
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::new`], plus `batch == 0` or
    /// `queue == 0`.
    pub fn with_config(cfg: EngineConfig, weight_fn: W) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.capacity >= cfg.shards,
            "capacity {} cannot give {} shards a positive budget",
            cfg.capacity,
            cfg.shards
        );
        let samplers = (0..cfg.shards)
            .map(|i| {
                GpsSampler::with_backend(
                    Self::shard_capacity(cfg.capacity, cfg.shards, i),
                    weight_fn.clone(),
                    shard_seed(cfg.seed, i),
                    cfg.backend,
                )
            })
            .collect();
        Self::launch(cfg, samplers)
    }

    /// Budget of shard `i`: `m/S`, first `m mod S` shards get one more.
    pub(crate) fn shard_capacity(capacity: usize, shards: usize, i: usize) -> usize {
        capacity / shards + usize::from(i < capacity % shards)
    }

    /// Spawns one worker per sampler (also the restore path — see
    /// `snapshot::SavedEngine::into_engine`).
    pub(crate) fn launch(cfg: EngineConfig, samplers: Vec<GpsSampler<W>>) -> Self {
        assert!(cfg.batch > 0, "batch size must be positive");
        assert!(cfg.queue > 0, "queue depth must be positive");
        let workers = samplers
            .into_iter()
            .map(|mut sampler| {
                let (tx, rx) = sync_channel::<Vec<Edge>>(cfg.queue);
                let handle = std::thread::spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        for e in batch {
                            sampler.process(e);
                        }
                    }
                    sampler
                });
                Worker { tx, handle }
            })
            .collect();
        ShardedGps {
            partitioner: EdgePartitioner::new(cfg.seed, cfg.shards),
            pending: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch))
                .collect(),
            workers,
            samplers: Vec::with_capacity(cfg.shards),
            pushed: 0,
            cfg,
        }
    }

    /// Offers one stream arrival to the engine (routes it to its shard;
    /// ships a batch when that shard's buffer fills).
    ///
    /// # Panics
    /// Panics if called after [`ShardedGps::finish`], or if a shard worker
    /// has panicked.
    pub fn push(&mut self, edge: Edge) {
        assert!(
            !self.workers.is_empty(),
            "push on a finished ShardedGps engine"
        );
        self.pushed += 1;
        let s = self.partitioner.shard_of(edge);
        self.pending[s].push(edge);
        if self.pending[s].len() == self.cfg.batch {
            self.ship(s);
        }
    }

    /// Feeds a pre-batched chunk (e.g. from `gps_stream::batched`); exactly
    /// equivalent to pushing each edge.
    pub fn push_batch(&mut self, batch: &[Edge]) {
        for &e in batch {
            self.push(e);
        }
    }

    /// Feeds every edge of an iterator through [`ShardedGps::push`].
    pub fn push_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.push(e);
        }
    }

    /// Sends shard `s`'s pending buffer (blocking if its queue is full).
    fn ship(&mut self, s: usize) {
        let batch = std::mem::replace(&mut self.pending[s], Vec::with_capacity(self.cfg.batch));
        self.workers[s]
            .tx
            .send(batch)
            .expect("shard worker hung up early (worker panicked?)");
    }

    /// Drains all pending batches, shuts the channels and joins the
    /// workers, taking ownership of the per-shard samplers. Idempotent.
    ///
    /// # Panics
    /// Panics if a shard worker panicked.
    pub fn finish(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        for s in 0..self.cfg.shards {
            if !self.pending[s].is_empty() {
                self.ship(s);
            }
        }
        for worker in self.workers.drain(..) {
            drop(worker.tx); // hang up: the worker's recv loop ends
            self.samplers
                .push(worker.handle.join().expect("shard worker panicked"));
        }
    }

    /// Whether [`ShardedGps::finish`] has run (workers are constructed
    /// alive, so "no live workers" is exactly "finished").
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.workers.is_empty()
    }

    /// Merged triangle/wedge/clustering estimates over all shards
    /// (finishing the engine first if needed): per-shard post-stream
    /// estimates are summed as independent strata and rescaled by the
    /// monochromacy factors `S²` (triangles), `S` (wedges), `S³`
    /// (triangle–wedge covariance) — see the crate docs.
    pub fn estimate(&mut self) -> TriadEstimates {
        self.finish();
        let merged = TriadEstimates::merged_strata(self.samplers.iter().map(post_stream::estimate));
        let s = self.cfg.shards as f64;
        TriadEstimates::from_parts(
            merged.triangles.scaled(s * s),
            merged.wedges.scaled(s),
            merged.tri_wedge_cov * s * s * s,
        )
    }

    /// Merged point estimates only — `(triangles, wedges)`, rescaled like
    /// [`ShardedGps::estimate`] but skipping variance bookkeeping.
    pub fn estimate_counts(&mut self) -> (f64, f64) {
        self.finish();
        let (mut tri, mut wedge) = (0.0, 0.0);
        for sampler in &self.samplers {
            let (t, w) = post_stream::estimate_counts(sampler);
            tri += t;
            wedge += w;
        }
        let s = self.cfg.shards as f64;
        (tri * s * s, wedge * s)
    }

    /// The per-shard samplers (available once finished).
    ///
    /// # Panics
    /// Panics if the engine has not been finished.
    pub fn samplers(&self) -> &[GpsSampler<W>] {
        assert!(
            !self.samplers.is_empty(),
            "samplers are owned by the workers until finish()"
        );
        &self.samplers
    }

    /// Consumes the engine, returning the per-shard samplers (finishing
    /// first if needed).
    pub fn into_samplers(mut self) -> Vec<GpsSampler<W>> {
        self.finish();
        std::mem::take(&mut self.samplers)
    }
}

impl<W: EdgeWeight> ShardedGps<W> {
    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.cfg.shards
    }

    /// Total reservoir budget `m` (sum of per-shard budgets).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Engine seed (drives shard RNGs and the partition).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Arrivals pushed so far (stream position `t`).
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The edge → shard assignment this engine routes with.
    #[inline]
    pub fn partitioner(&self) -> &EdgePartitioner {
        &self.partitioner
    }

    /// Sum of per-shard sample sizes `Σ|K̂_i|` (available once finished).
    pub fn len(&self) -> usize {
        self.samplers.iter().map(GpsSampler::len).sum()
    }

    /// True when no shard holds any edge (trivially true before finish).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Restore-path internals for `snapshot`: the config and collected
    /// samplers of a finished engine.
    pub(crate) fn parts(&self) -> (&EngineConfig, &[GpsSampler<W>], u64) {
        (&self.cfg, &self.samplers, self.pushed)
    }

    /// Sets the stream position on a restored engine (see `snapshot`).
    pub(crate) fn set_pushed(&mut self, pushed: u64) {
        self.pushed = pushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};

    fn clique_chunks(n: u32) -> Vec<Edge> {
        let mut edges = vec![];
        for base in (0..n).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        edges
    }

    #[test]
    fn shard_budgets_partition_the_total() {
        for (m, s) in [(10, 3), (16, 4), (7, 7), (100, 8), (5, 1)] {
            let budgets: Vec<usize> = (0..s)
                .map(|i| ShardedGps::<UniformWeight>::shard_capacity(m, s, i))
                .collect();
            assert_eq!(budgets.iter().sum::<usize>(), m, "m={m} S={s}");
            assert!(budgets.iter().all(|&b| b > 0));
            assert!(budgets.iter().max().unwrap() - budgets.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn finish_is_idempotent_and_estimation_finishes_implicitly() {
        let mut engine = ShardedGps::new(32, TriangleWeight::default(), 7, 4);
        engine.push_stream(clique_chunks(50));
        let est = engine.estimate(); // implicit finish
        assert!(engine.is_finished());
        engine.finish();
        engine.finish();
        let again = engine.estimate();
        assert_eq!(est.triangles.value, again.triangles.value);
        assert_eq!(
            engine.len(),
            engine.samplers().iter().map(|s| s.len()).sum()
        );
    }

    #[test]
    fn every_arrival_reaches_exactly_one_shard() {
        let edges = clique_chunks(100);
        let mut engine = ShardedGps::new(1000, UniformWeight, 3, 4);
        engine.push_stream(edges.iter().copied());
        engine.finish();
        let total: u64 = engine.samplers().iter().map(|s| s.arrivals()).sum();
        assert_eq!(total, edges.len() as u64);
        assert_eq!(engine.pushed(), edges.len() as u64);
        // Capacity exceeds the stream: nothing dropped, so the union of the
        // shard reservoirs is the whole (deduplicated) stream.
        assert_eq!(engine.len(), edges.len());
    }

    #[test]
    fn duplicates_are_skipped_exactly_once_globally() {
        let mut engine = ShardedGps::new(100, UniformWeight, 5, 4);
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        engine.push_stream(edges);
        engine.push_stream(edges); // all duplicates
        engine.finish();
        let dups: u64 = engine.samplers().iter().map(|s| s.duplicates()).sum();
        assert_eq!(dups, 3, "same edge must route to the same shard");
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn push_batch_matches_per_edge_push() {
        let edges = clique_chunks(60);
        let mut a = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        a.push_stream(edges.iter().copied());
        let ea = a.estimate();
        let mut b = ShardedGps::new(40, TriangleWeight::default(), 11, 3);
        for chunk in edges.chunks(17) {
            b.push_batch(chunk);
        }
        let eb = b.estimate();
        assert_eq!(ea.triangles.value.to_bits(), eb.triangles.value.to_bits());
        assert_eq!(ea.wedges.value.to_bits(), eb.wedges.value.to_bits());
    }

    #[test]
    fn small_batches_and_deep_queues_agree_with_defaults() {
        // Batch boundaries must not affect results, only throughput.
        let edges = clique_chunks(80);
        let mut defaults = ShardedGps::new(50, TriangleWeight::default(), 2, 2);
        defaults.push_stream(edges.iter().copied());
        let a = defaults.estimate();
        let mut tiny = ShardedGps::with_config(
            EngineConfig {
                batch: 3,
                queue: 1,
                ..EngineConfig::new(50, 2, 2)
            },
            TriangleWeight::default(),
        );
        tiny.push_stream(edges.iter().copied());
        let b = tiny.estimate();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(a.wedges.variance.to_bits(), b.wedges.variance.to_bits());
    }

    #[test]
    #[should_panic(expected = "push on a finished")]
    fn pushing_after_finish_panics() {
        let mut engine = ShardedGps::new(8, UniformWeight, 0, 2);
        engine.finish();
        engine.push(Edge::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn rejects_capacity_below_shard_count() {
        let _ = ShardedGps::new(3, UniformWeight, 0, 4);
    }
}
