//! Seeded edge → shard assignment.
//!
//! The partition is the "coloring" of the unbiasedness argument (see the
//! crate docs): every edge must map to exactly one shard, the map must be
//! reproducible from the engine seed (so duplicate arrivals reach the same
//! shard and a restored engine keeps routing identically), and distinct
//! edges' colors must behave like independent uniform draws — that last
//! property is what makes the `S^{j-1}` monochromacy correction exact in
//! expectation. A `splitmix64` finalizer over the canonical endpoint-pair
//! key, XOR-seeded per engine, provides all three.

use gps_graph::types::Edge;

/// `splitmix64` finalizer: a full-avalanche 64-bit mix (the classic
/// Stafford/`SplitMix64` constants).
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// RNG seed of shard `shard` under engine seed `engine_seed`. Shard 0 runs
/// on the engine seed itself, which is what makes an `S = 1` engine
/// bit-identical to a bare `GpsSampler` on the same seed; the other shards
/// get mixed, effectively independent streams. Public so deterministic
/// single-threaded mirrors of the engine (e.g. the checkpointable adapter
/// in `gps-bench`) can reproduce the exact per-shard samplers.
#[inline]
pub fn shard_seed(engine_seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        engine_seed
    } else {
        splitmix64(engine_seed ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

/// Deterministic, seeded assignment of edges to `shards` buckets.
#[derive(Clone, Copy, Debug)]
pub struct EdgePartitioner {
    mix_seed: u64,
    shards: usize,
}

impl EdgePartitioner {
    /// A partitioner over `shards` buckets, keyed by the engine seed.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(engine_seed: u64, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        EdgePartitioner {
            // Decorrelate from the shard RNG seeds (which also derive from
            // the engine seed).
            mix_seed: splitmix64(engine_seed ^ 0xC010_4F5E_ED5E_ED01),
            shards,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `edge`. Uses a multiply-shift range reduction of
    /// the mixed canonical pair key — no modulo bias, and `shards = 1`
    /// short-circuits to 0 (the `S = 1` bit-compatibility path does not
    /// even hash).
    #[inline]
    pub fn shard_of(&self, edge: Edge) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let h = splitmix64(edge.key() ^ self.mix_seed);
        (((h as u128) * (self.shards as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_orientation_free() {
        let p = EdgePartitioner::new(42, 8);
        for i in 0..500u32 {
            let a = p.shard_of(Edge::new(i, i + 7));
            assert_eq!(a, p.shard_of(Edge::new(i + 7, i)), "orientation");
            assert_eq!(a, p.shard_of(Edge::new(i, i + 7)), "repeatability");
            assert!(a < 8);
        }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let p = EdgePartitioner::new(7, 1);
        for i in 0..100u32 {
            assert_eq!(p.shard_of(Edge::new(i, i + 1)), 0);
        }
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        let shards = 4;
        let p = EdgePartitioner::new(3, shards);
        let mut counts = vec![0usize; shards];
        let n = 40_000u32;
        for i in 0..n {
            counts[p.shard_of(Edge::new(i, i + 1 + (i % 13)))] += 1;
        }
        let expect = n as usize / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < 0.05 * expect as f64,
                "shard {s} holds {c} of ~{expect}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_colorings() {
        let a = EdgePartitioner::new(1, 4);
        let b = EdgePartitioner::new(2, 4);
        let differing = (0..1000u32)
            .filter(|&i| a.shard_of(Edge::new(i, i + 1)) != b.shard_of(Edge::new(i, i + 1)))
            .count();
        // Two independent 4-colorings disagree on ~3/4 of edges.
        assert!(differing > 600, "only {differing}/1000 edges recolored");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = EdgePartitioner::new(0, 0);
    }
}
