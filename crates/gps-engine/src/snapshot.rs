//! Saving and restoring sharded reference samples.
//!
//! A sharded engine's estimation state is its per-shard samples plus the
//! routing parameters needed to keep consuming the stream consistently
//! (the engine seed drives the edge partition, so a restored engine sends
//! every future arrival — including duplicates of already-sampled edges —
//! to the shard that owns it). The format composes the existing
//! single-reservoir machinery: an engine header followed by one
//! `gps-sample` section per shard, in shard order, parsed back with
//! `gps_core::persist::load_section`:
//!
//! ```text
//! gps-engine v1
//! seed 42
//! shards 4
//! capacity 16000
//! crc 1b7c3a9f00e2d415
//! <gps-sample section of shard 0>
//! ...
//! <gps-sample section of shard 3>
//! ```
//!
//! The `crc` header line (FNV-1a over the canonical header values and the
//! raw section bytes) makes *any* corruption — truncation anywhere, any
//! bit flip — a guaranteed [`PersistError`] instead of a silently
//! different restore; a corruption property test pins this. The line is
//! optional on load, so hand-written or pre-crc files still parse (their
//! protection is then only the structural validation).
//!
//! A plain engine writes `gps-sample v1` sections; an **estimating** engine
//! writes `v2` sections that additionally carry each shard's in-stream
//! accumulators and per-edge covariance contributions, so a restored
//! serving engine's in-stream estimates are **bit-identical** to the
//! original's at the save watermark — not merely re-seeded from the
//! post-stream estimate. (This is also the substrate the engine's crash
//! checkpoints are built on; see the `gps-engine` crate docs.)
//!
//! Like `GpsSampler::restore`, a restored engine estimates identically to
//! the original (up to float summation order from adjacency rebuild) and
//! may keep consuming the stream with fresh — statistically equivalent —
//! RNG draws.

use crate::engine::{EngineConfig, ShardedGps, WorkerMode};
use crate::partition::shard_seed;
use gps_core::persist::{self, PersistError, SavedSample};
use gps_core::weights::EdgeWeight;
use gps_core::GpsSampler;
use gps_graph::BackendKind;
use gps_telemetry::Registry;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

/// Magic first line of the engine container format.
const MAGIC: &str = "gps-engine v1";

/// FNV-1a over `bytes`, continuing from `h` (seed with [`FNV_OFFSET`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The container checksum: FNV-1a over the canonical header value lines
/// (`seed …`, `shards …`, `capacity …`) followed by the raw bytes of every
/// section. Hashing the *canonical re-rendering* of the parsed header
/// values (rather than the header bytes as written) keeps the check
/// order-independent of cosmetic whitespace while still catching any edit
/// that changes a parsed value.
fn container_crc(seed: u64, shards: usize, capacity: usize, sections: &[u8]) -> u64 {
    let header = format!("seed {seed}\nshards {shards}\ncapacity {capacity}\n");
    fnv1a(fnv1a(FNV_OFFSET, header.as_bytes()), sections)
}

/// A sharded sample loaded from disk, ready to become an engine again.
#[derive(Clone, Debug, PartialEq)]
pub struct SavedEngine {
    /// Engine seed (drives the edge partition and shard RNG seeds).
    pub seed: u64,
    /// Total reservoir budget `m`.
    pub capacity: usize,
    /// Per-shard samples, in shard order.
    pub shards: Vec<SavedSample>,
}

impl SavedEngine {
    /// Stream position when saved (sum of per-shard arrivals — every
    /// arrival reaches exactly one shard).
    pub fn pushed(&self) -> u64 {
        self.shards.iter().map(|s| s.arrivals).sum()
    }

    /// Rebuilds a running engine (workers spawned, ready for more stream)
    /// from the saved state, on the given adjacency backend. The weight
    /// function matters only if the engine keeps consuming the stream —
    /// stored weights are what estimation reads.
    ///
    /// # Panics
    /// Panics if the saved state is inconsistent (no shards, shard budgets
    /// not summing to `capacity`, or invalid per-shard records — see
    /// `GpsSampler::restore`).
    pub fn into_engine<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
    ) -> ShardedGps<W> {
        self.relaunch(weight_fn, backend, WorkerMode::Plain)
    }

    /// Rebuilds a running engine in **in-stream estimating** mode (see
    /// [`ShardedGps::with_estimation`]): each worker wraps its restored
    /// sampler in an `InStreamEstimator` — resumed *exactly* from the
    /// saved accumulators when the snapshot carries `gps-sample v2`
    /// sections, seeded from the sample's post-stream estimate otherwise —
    /// so live estimates continue from the saved
    /// state instead of restarting at zero, and `hook` resumes receiving
    /// [`ShardReport`]s (`gps-serve` uses this to keep a `QueryHandle`'s
    /// epochs flowing across a snapshot/restore cycle).
    ///
    /// [`ShardReport`]: crate::engine::ShardReport
    ///
    /// # Panics
    /// Same conditions as [`SavedEngine::into_engine`].
    pub fn into_serving_engine<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        hook: Option<crate::engine::EpochHook>,
        epoch_every: u64,
    ) -> ShardedGps<W> {
        self.into_serving_engine_on_registry(
            weight_fn,
            backend,
            hook,
            epoch_every,
            Arc::new(Registry::new()),
        )
    }

    /// [`SavedEngine::into_serving_engine`] with the restored engine's
    /// metrics registered on a **caller-supplied** telemetry registry (see
    /// [`ShardedGps::with_estimation_on_registry`]): `gps-serve` passes the
    /// board's registry so engine counters stay cumulative across the
    /// snapshot/restore cycle instead of restarting on a private registry.
    ///
    /// # Panics
    /// Same conditions as [`SavedEngine::into_engine`].
    pub fn into_serving_engine_on_registry<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        hook: Option<crate::engine::EpochHook>,
        epoch_every: u64,
        registry: Arc<Registry>,
    ) -> ShardedGps<W> {
        self.relaunch_with(
            weight_fn,
            backend,
            WorkerMode::Estimating(hook),
            epoch_every,
            registry,
        )
    }

    fn relaunch<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        mode: WorkerMode,
    ) -> ShardedGps<W> {
        self.relaunch_with(
            weight_fn,
            backend,
            mode,
            crate::engine::DEFAULT_EPOCH_EVERY,
            Arc::new(Registry::new()),
        )
    }

    fn relaunch_with<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        mode: WorkerMode,
        epoch_every: u64,
        registry: Arc<Registry>,
    ) -> ShardedGps<W> {
        assert!(!self.shards.is_empty(), "engine snapshot has no shards");
        let total: usize = self.shards.iter().map(|s| s.capacity).sum();
        assert_eq!(
            total, self.capacity,
            "shard budgets sum to {total}, header declares {}",
            self.capacity
        );
        let pushed = self.pushed();
        let mut cfg = EngineConfig::new(self.capacity, self.shards.len(), self.seed);
        cfg.backend = backend;
        cfg.epoch_every = epoch_every;
        let mut samplers = Vec::with_capacity(self.shards.len());
        let mut states = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.into_iter().enumerate() {
            samplers.push(GpsSampler::restore_with_backend(
                shard.capacity,
                weight_fn.clone(),
                shard_seed(cfg.seed, i),
                shard.threshold,
                shard.arrivals,
                shard.records,
                backend,
            ));
            states.push(shard.in_stream);
        }
        let mut engine = ShardedGps::launch(cfg, weight_fn, samplers, states, mode, None, registry);
        engine.set_pushed(pushed);
        engine
    }
}

impl<W: EdgeWeight + Clone + Send + 'static> ShardedGps<W> {
    /// Writes the engine's estimation state to `writer` (finishing the
    /// engine first if needed): the engine header, then one persisted
    /// sample section per shard — `gps-sample v2` (with the shard's
    /// in-stream accumulator state, for exact resume) when the engine ran
    /// in estimating mode, `v1` otherwise.
    pub fn save<Out: Write>(&mut self, writer: Out) -> Result<(), PersistError> {
        self.finish();
        let (cfg, samplers, states, _) = self.parts();
        // Sections are staged in memory so the checksum can cover their
        // exact bytes; engine snapshots are sample-sized, not stream-sized.
        let mut sections = Vec::new();
        for (sampler, state) in samplers.iter().zip(states) {
            match state {
                Some(state) => persist::save_with_state(sampler, state, &mut sections)?,
                None => persist::save(sampler, &mut sections)?,
            }
        }
        let crc = container_crc(cfg.seed, cfg.shards, cfg.capacity, &sections);
        let mut w = BufWriter::new(writer);
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "seed {}", cfg.seed)?;
        writeln!(w, "shards {}", cfg.shards)?;
        writeln!(w, "capacity {}", cfg.capacity)?;
        writeln!(w, "crc {crc:016x}")?;
        w.write_all(&sections)?;
        w.flush()?;
        Ok(())
    }

    /// Saves to a file path. See [`ShardedGps::save`].
    pub fn save_file<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<(), PersistError> {
        self.save(std::fs::File::create(path)?)
    }
}

/// Reads a saved engine from `reader`.
pub fn load_engine<R: Read>(reader: R) -> Result<SavedEngine, PersistError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let read_header =
        |r: &mut BufReader<R>, line: &mut String, key: &str| -> Result<String, PersistError> {
            line.clear();
            r.read_line(line)?;
            let trimmed = line.trim_end();
            match trimmed.strip_prefix(key).and_then(|v| v.strip_prefix(' ')) {
                Some(v) => Ok(v.to_string()),
                None => Err(PersistError::Parse {
                    line: 0,
                    content: trimmed.chars().take(80).collect(),
                }),
            }
        };

    line.clear();
    r.read_line(&mut line)?;
    if line.trim_end() != MAGIC {
        return Err(PersistError::BadHeader(line.trim_end().to_string()));
    }
    let parse_err = |line: &str| PersistError::Parse {
        line: 0,
        content: line.trim_end().chars().take(80).collect(),
    };
    let seed: u64 = read_header(&mut r, &mut line, "seed")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    let num_shards: usize = read_header(&mut r, &mut line, "shards")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    let capacity: usize = read_header(&mut r, &mut line, "capacity")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    // Sanity-bound before allocating: a corrupt header must surface as a
    // PersistError, not a capacity-overflow panic. Every shard costs at
    // least one OS thread on restore, so the bound loses nothing real.
    const MAX_SHARDS: usize = 1 << 16;
    if num_shards == 0 || num_shards > MAX_SHARDS {
        return Err(parse_err(&format!("shards {num_shards}")));
    }
    // Optional `crc` header line; everything after it is section bytes.
    line.clear();
    r.read_line(&mut line)?;
    let declared_crc = line
        .trim_end()
        .strip_prefix("crc ")
        .map(|h| u64::from_str_radix(h, 16).map_err(|_| parse_err(&line)))
        .transpose()?;
    let mut sections = Vec::new();
    if declared_crc.is_none() {
        // No checksum (pre-crc or hand-written file): the line we just
        // consumed is the first section's magic line.
        sections.extend_from_slice(line.as_bytes());
    }
    r.read_to_end(&mut sections)?;
    if let Some(declared) = declared_crc {
        let actual = container_crc(seed, num_shards, capacity, &sections);
        if actual != declared {
            return Err(parse_err(&format!(
                "crc {declared:016x} (sections hash to {actual:016x})"
            )));
        }
    }
    let mut body: &[u8] = &sections;
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(persist::load_section(&mut body)?);
    }
    // Validate the header/body consistency here, so corrupt files error at
    // load time instead of panicking later in `into_engine`.
    let total: usize = shards.iter().map(|s| s.capacity).sum();
    if total != capacity {
        return Err(parse_err(&format!(
            "capacity {capacity} (shard budgets sum to {total})"
        )));
    }
    Ok(SavedEngine {
        seed,
        capacity,
        shards,
    })
}

/// Loads from a file path. See [`load_engine`].
pub fn load_engine_file<P: AsRef<std::path::Path>>(path: P) -> Result<SavedEngine, PersistError> {
    load_engine(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};
    use gps_graph::types::Edge;

    fn loaded_engine() -> ShardedGps<TriangleWeight> {
        let mut engine = ShardedGps::new(24, TriangleWeight::default(), 9, 3);
        let mut edges = vec![];
        for base in 0..40u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        engine.push_stream(edges);
        engine.finish();
        engine
    }

    #[test]
    fn round_trip_preserves_every_shard() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let saved = load_engine(buf.as_slice()).unwrap();
        assert_eq!(saved.seed, engine.seed());
        assert_eq!(saved.capacity, engine.capacity());
        assert_eq!(saved.shards.len(), engine.num_shards());
        assert_eq!(saved.pushed(), engine.pushed());
        for (section, sampler) in saved.shards.iter().zip(engine.samplers()) {
            assert_eq!(section.records.len(), sampler.len());
            assert_eq!(section.threshold, sampler.threshold());
            assert_eq!(section.arrivals, sampler.arrivals());
        }
    }

    #[test]
    fn restored_engine_estimates_identically() {
        let mut engine = loaded_engine();
        let original = engine.estimate();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let mut restored = load_engine(buf.as_slice())
            .unwrap()
            .into_engine(UniformWeight, BackendKind::Compact);
        let again = restored.estimate();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        assert!(close(original.triangles.value, again.triangles.value));
        assert!(close(original.triangles.variance, again.triangles.variance));
        assert!(close(original.wedges.value, again.wedges.value));
        assert!(close(original.tri_wedge_cov, again.tri_wedge_cov));
    }

    #[test]
    fn restored_engine_keeps_routing_consistently() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let mut restored = load_engine(buf.as_slice())
            .unwrap()
            .into_engine(TriangleWeight::default(), BackendKind::Compact);
        assert_eq!(restored.pushed(), engine.pushed());
        // Re-push every edge the original engine sampled: all must be
        // recognized as duplicates, which requires the rebuilt partition
        // to route each edge back to the shard that holds it.
        let sampled: Vec<Edge> = engine
            .samplers()
            .iter()
            .flat_map(|s| s.edges().map(|se| se.edge).collect::<Vec<_>>())
            .collect();
        let expect = sampled.len() as u64;
        restored.push_stream(sampled);
        restored.finish();
        let dups: u64 = restored.samplers().iter().map(|s| s.duplicates()).sum();
        assert_eq!(dups, expect, "restored partition must match the original");
    }

    #[test]
    fn serving_round_trip_resumes_in_stream_estimates_exactly() {
        use crate::engine::EngineConfig;
        let mut engine = ShardedGps::with_estimation(
            EngineConfig::new(24, 3, 9),
            TriangleWeight::default(),
            None,
        );
        let mut edges = vec![];
        for base in 0..40u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        engine.push_stream(edges);
        engine.finish();
        let original = engine.estimate_in_stream();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let saved = load_engine(buf.as_slice()).unwrap();
        // Estimating engines write v2 sections: every shard carries its
        // in-stream accumulator state.
        assert!(saved.shards.iter().all(|s| s.in_stream.is_some()));
        let mut restored = saved.into_serving_engine(
            TriangleWeight::default(),
            BackendKind::Compact,
            None,
            crate::engine::DEFAULT_EPOCH_EVERY,
        );
        // Exact resume: at the save watermark the restored engine's
        // in-stream estimates are bit-identical to the original's — the
        // accumulators were restored, not re-seeded from the post-stream
        // estimate.
        let again = restored.estimate_in_stream();
        assert_eq!(
            original.triangles.value.to_bits(),
            again.triangles.value.to_bits()
        );
        assert_eq!(
            original.triangles.variance.to_bits(),
            again.triangles.variance.to_bits()
        );
        assert_eq!(
            original.wedges.value.to_bits(),
            again.wedges.value.to_bits()
        );
        assert_eq!(
            original.wedges.variance.to_bits(),
            again.wedges.variance.to_bits()
        );
        assert_eq!(
            original.tri_wedge_cov.to_bits(),
            again.tri_wedge_cov.to_bits()
        );
    }

    #[test]
    fn plain_engine_still_writes_v1_sections() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let saved = load_engine(buf.as_slice()).unwrap();
        assert!(saved.shards.iter().all(|s| s.in_stream.is_none()));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("gps-sample v1"));
        assert!(!text.contains("gps-sample v2"));
    }

    #[test]
    fn rejects_garbage_input() {
        assert!(matches!(
            load_engine("nonsense".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            load_engine("gps-engine v1\nseed x\n".as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // A corrupt shard count must error, not panic on pre-allocation.
        let huge = format!("gps-engine v1\nseed 1\nshards {}\ncapacity 1\n", u64::MAX);
        assert!(matches!(
            load_engine(huge.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // Declares 2 shards but contains 1 section.
        let mut engine = ShardedGps::new(4, UniformWeight, 1, 1);
        engine.push(Edge::new(0, 1));
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("shards 1", "shards 2");
        assert!(load_engine(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_capacity_inconsistent_with_shard_budgets() {
        let mut engine = loaded_engine(); // total capacity 24
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        // The engine header is the first "capacity" line; the per-shard
        // sections declare their own. Corrupt the header only — and drop
        // the checksum line (which would catch the edit first) so this
        // exercises the structural capacity-sum check crc-less files rely
        // on.
        let text: String = String::from_utf8(buf)
            .unwrap()
            .replacen("capacity 24", "capacity 99", 1)
            .lines()
            .filter(|l| !l.starts_with("crc "))
            .map(|l| format!("{l}\n"))
            .collect();
        match load_engine(text.as_bytes()) {
            Err(PersistError::Parse { content, .. }) => {
                assert!(content.contains("capacity 99"), "{content}");
            }
            other => panic!("expected capacity-mismatch Parse error, got {other:?}"),
        }
    }

    #[test]
    fn checksum_catches_header_and_section_edits() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\ncrc "), "save must write a checksum line");
        // A value edit that is structurally valid (both headers stay
        // consistent) is still rejected by the checksum.
        let seed_edit = text.replacen("seed 9", "seed 8", 1);
        assert!(load_engine(seed_edit.as_bytes()).is_err());
        // So is any section-byte edit, even one that would parse.
        let idx = text.find("gps-sample").unwrap();
        let mut bytes = text.clone().into_bytes();
        bytes[idx + 30] ^= 0x01;
        assert!(load_engine(bytes.as_slice()).is_err());
        // Dropping the crc line entirely keeps the file loadable
        // (pre-checksum compatibility).
        let no_crc: String = text
            .lines()
            .filter(|l| !l.starts_with("crc "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(load_engine(no_crc.as_bytes()).is_ok());
    }

    #[test]
    fn file_round_trip() {
        let mut engine = loaded_engine();
        let path = std::env::temp_dir().join("gps-engine-snapshot-test.sample");
        engine.save_file(&path).unwrap();
        let saved = load_engine_file(&path).unwrap();
        assert_eq!(saved.shards.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
