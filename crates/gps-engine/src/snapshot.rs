//! Saving and restoring sharded reference samples.
//!
//! A sharded engine's estimation state is its per-shard samples plus the
//! routing parameters needed to keep consuming the stream consistently
//! (the engine seed drives the edge partition, so a restored engine sends
//! every future arrival — including duplicates of already-sampled edges —
//! to the shard that owns it). The format composes the existing
//! single-reservoir machinery: an engine header followed by one
//! `gps-sample v1` section per shard, in shard order, parsed back with
//! `gps_core::persist::load_section`:
//!
//! ```text
//! gps-engine v1
//! seed 42
//! shards 4
//! capacity 16000
//! <gps-sample v1 section of shard 0>
//! ...
//! <gps-sample v1 section of shard 3>
//! ```
//!
//! Like `GpsSampler::restore`, a restored engine estimates identically to
//! the original (up to float summation order from adjacency rebuild) and
//! may keep consuming the stream with fresh — statistically equivalent —
//! RNG draws.

use crate::engine::{EngineConfig, ShardedGps, WorkerMode};
use crate::partition::shard_seed;
use gps_core::persist::{self, PersistError, SavedSample};
use gps_core::weights::EdgeWeight;
use gps_core::GpsSampler;
use gps_graph::BackendKind;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Magic first line of the engine container format.
const MAGIC: &str = "gps-engine v1";

/// A sharded sample loaded from disk, ready to become an engine again.
#[derive(Clone, Debug, PartialEq)]
pub struct SavedEngine {
    /// Engine seed (drives the edge partition and shard RNG seeds).
    pub seed: u64,
    /// Total reservoir budget `m`.
    pub capacity: usize,
    /// Per-shard samples, in shard order.
    pub shards: Vec<SavedSample>,
}

impl SavedEngine {
    /// Stream position when saved (sum of per-shard arrivals — every
    /// arrival reaches exactly one shard).
    pub fn pushed(&self) -> u64 {
        self.shards.iter().map(|s| s.arrivals).sum()
    }

    /// Rebuilds a running engine (workers spawned, ready for more stream)
    /// from the saved state, on the given adjacency backend. The weight
    /// function matters only if the engine keeps consuming the stream —
    /// stored weights are what estimation reads.
    ///
    /// # Panics
    /// Panics if the saved state is inconsistent (no shards, shard budgets
    /// not summing to `capacity`, or invalid per-shard records — see
    /// `GpsSampler::restore`).
    pub fn into_engine<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
    ) -> ShardedGps<W> {
        self.relaunch(weight_fn, backend, WorkerMode::Plain)
    }

    /// Rebuilds a running engine in **in-stream estimating** mode (see
    /// [`ShardedGps::with_estimation`]): each worker wraps its restored
    /// sampler in an `InStreamEstimator` seeded from the sample's
    /// post-stream estimate, so live estimates continue from the saved
    /// state instead of restarting at zero, and `hook` resumes receiving
    /// [`ShardReport`]s (`gps-serve` uses this to keep a `QueryHandle`'s
    /// epochs flowing across a snapshot/restore cycle).
    ///
    /// [`ShardReport`]: crate::engine::ShardReport
    ///
    /// # Panics
    /// Same conditions as [`SavedEngine::into_engine`].
    pub fn into_serving_engine<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        hook: Option<crate::engine::EpochHook>,
        epoch_every: u64,
    ) -> ShardedGps<W> {
        self.relaunch_with(
            weight_fn,
            backend,
            WorkerMode::Estimating(hook),
            epoch_every,
        )
    }

    fn relaunch<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        mode: WorkerMode,
    ) -> ShardedGps<W> {
        self.relaunch_with(weight_fn, backend, mode, crate::engine::DEFAULT_EPOCH_EVERY)
    }

    fn relaunch_with<W: EdgeWeight + Clone + Send + 'static>(
        self,
        weight_fn: W,
        backend: BackendKind,
        mode: WorkerMode,
        epoch_every: u64,
    ) -> ShardedGps<W> {
        assert!(!self.shards.is_empty(), "engine snapshot has no shards");
        let total: usize = self.shards.iter().map(|s| s.capacity).sum();
        assert_eq!(
            total, self.capacity,
            "shard budgets sum to {total}, header declares {}",
            self.capacity
        );
        let pushed = self.pushed();
        let mut cfg = EngineConfig::new(self.capacity, self.shards.len(), self.seed);
        cfg.backend = backend;
        cfg.epoch_every = epoch_every;
        let samplers = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                GpsSampler::restore_with_backend(
                    shard.capacity,
                    weight_fn.clone(),
                    shard_seed(cfg.seed, i),
                    shard.threshold,
                    shard.arrivals,
                    shard.records,
                    backend,
                )
            })
            .collect();
        let mut engine = ShardedGps::launch(cfg, samplers, mode);
        engine.set_pushed(pushed);
        engine
    }
}

impl<W: EdgeWeight + Clone + Send + 'static> ShardedGps<W> {
    /// Writes the engine's estimation state to `writer` (finishing the
    /// engine first if needed): the engine header, then one persisted
    /// sample section per shard.
    pub fn save<Out: Write>(&mut self, writer: Out) -> Result<(), PersistError> {
        self.finish();
        let (cfg, samplers, _) = self.parts();
        let mut w = BufWriter::new(writer);
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "seed {}", cfg.seed)?;
        writeln!(w, "shards {}", cfg.shards)?;
        writeln!(w, "capacity {}", cfg.capacity)?;
        for sampler in samplers {
            persist::save(sampler, &mut w)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Saves to a file path. See [`ShardedGps::save`].
    pub fn save_file<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<(), PersistError> {
        self.save(std::fs::File::create(path)?)
    }
}

/// Reads a saved engine from `reader`.
pub fn load_engine<R: Read>(reader: R) -> Result<SavedEngine, PersistError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let read_header =
        |r: &mut BufReader<R>, line: &mut String, key: &str| -> Result<String, PersistError> {
            line.clear();
            r.read_line(line)?;
            let trimmed = line.trim_end();
            match trimmed.strip_prefix(key).and_then(|v| v.strip_prefix(' ')) {
                Some(v) => Ok(v.to_string()),
                None => Err(PersistError::Parse {
                    line: 0,
                    content: trimmed.chars().take(80).collect(),
                }),
            }
        };

    line.clear();
    r.read_line(&mut line)?;
    if line.trim_end() != MAGIC {
        return Err(PersistError::BadHeader(line.trim_end().to_string()));
    }
    let parse_err = |line: &str| PersistError::Parse {
        line: 0,
        content: line.trim_end().chars().take(80).collect(),
    };
    let seed: u64 = read_header(&mut r, &mut line, "seed")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    let num_shards: usize = read_header(&mut r, &mut line, "shards")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    let capacity: usize = read_header(&mut r, &mut line, "capacity")?
        .parse()
        .map_err(|_| parse_err(&line))?;
    // Sanity-bound before allocating: a corrupt header must surface as a
    // PersistError, not a capacity-overflow panic. Every shard costs at
    // least one OS thread on restore, so the bound loses nothing real.
    const MAX_SHARDS: usize = 1 << 16;
    if num_shards == 0 || num_shards > MAX_SHARDS {
        return Err(parse_err(&format!("shards {num_shards}")));
    }
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(persist::load_section(&mut r)?);
    }
    // Validate the header/body consistency here, so corrupt files error at
    // load time instead of panicking later in `into_engine`.
    let total: usize = shards.iter().map(|s| s.capacity).sum();
    if total != capacity {
        return Err(parse_err(&format!(
            "capacity {capacity} (shard budgets sum to {total})"
        )));
    }
    Ok(SavedEngine {
        seed,
        capacity,
        shards,
    })
}

/// Loads from a file path. See [`load_engine`].
pub fn load_engine_file<P: AsRef<std::path::Path>>(path: P) -> Result<SavedEngine, PersistError> {
    load_engine(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};
    use gps_graph::types::Edge;

    fn loaded_engine() -> ShardedGps<TriangleWeight> {
        let mut engine = ShardedGps::new(24, TriangleWeight::default(), 9, 3);
        let mut edges = vec![];
        for base in 0..40u32 {
            edges.push(Edge::new(base, base + 1));
            edges.push(Edge::new(base, base + 2));
            edges.push(Edge::new(base + 1, base + 2));
        }
        engine.push_stream(edges);
        engine.finish();
        engine
    }

    #[test]
    fn round_trip_preserves_every_shard() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let saved = load_engine(buf.as_slice()).unwrap();
        assert_eq!(saved.seed, engine.seed());
        assert_eq!(saved.capacity, engine.capacity());
        assert_eq!(saved.shards.len(), engine.num_shards());
        assert_eq!(saved.pushed(), engine.pushed());
        for (section, sampler) in saved.shards.iter().zip(engine.samplers()) {
            assert_eq!(section.records.len(), sampler.len());
            assert_eq!(section.threshold, sampler.threshold());
            assert_eq!(section.arrivals, sampler.arrivals());
        }
    }

    #[test]
    fn restored_engine_estimates_identically() {
        let mut engine = loaded_engine();
        let original = engine.estimate();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let mut restored = load_engine(buf.as_slice())
            .unwrap()
            .into_engine(UniformWeight, BackendKind::Compact);
        let again = restored.estimate();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
        assert!(close(original.triangles.value, again.triangles.value));
        assert!(close(original.triangles.variance, again.triangles.variance));
        assert!(close(original.wedges.value, again.wedges.value));
        assert!(close(original.tri_wedge_cov, again.tri_wedge_cov));
    }

    #[test]
    fn restored_engine_keeps_routing_consistently() {
        let mut engine = loaded_engine();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let mut restored = load_engine(buf.as_slice())
            .unwrap()
            .into_engine(TriangleWeight::default(), BackendKind::Compact);
        assert_eq!(restored.pushed(), engine.pushed());
        // Re-push every edge the original engine sampled: all must be
        // recognized as duplicates, which requires the rebuilt partition
        // to route each edge back to the shard that holds it.
        let sampled: Vec<Edge> = engine
            .samplers()
            .iter()
            .flat_map(|s| s.edges().map(|se| se.edge).collect::<Vec<_>>())
            .collect();
        let expect = sampled.len() as u64;
        restored.push_stream(sampled);
        restored.finish();
        let dups: u64 = restored.samplers().iter().map(|s| s.duplicates()).sum();
        assert_eq!(dups, expect, "restored partition must match the original");
    }

    #[test]
    fn rejects_garbage_input() {
        assert!(matches!(
            load_engine("nonsense".as_bytes()),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            load_engine("gps-engine v1\nseed x\n".as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // A corrupt shard count must error, not panic on pre-allocation.
        let huge = format!("gps-engine v1\nseed 1\nshards {}\ncapacity 1\n", u64::MAX);
        assert!(matches!(
            load_engine(huge.as_bytes()),
            Err(PersistError::Parse { .. })
        ));
        // Declares 2 shards but contains 1 section.
        let mut engine = ShardedGps::new(4, UniformWeight, 1, 1);
        engine.push(Edge::new(0, 1));
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("shards 1", "shards 2");
        assert!(load_engine(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_capacity_inconsistent_with_shard_budgets() {
        let mut engine = loaded_engine(); // total capacity 24
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        // The engine header is the first "capacity" line; the per-shard
        // sections declare their own. Corrupt the header only.
        let text = String::from_utf8(buf)
            .unwrap()
            .replacen("capacity 24", "capacity 99", 1);
        match load_engine(text.as_bytes()) {
            Err(PersistError::Parse { content, .. }) => {
                assert!(content.contains("capacity 99"), "{content}");
            }
            other => panic!("expected capacity-mismatch Parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let mut engine = loaded_engine();
        let path = std::env::temp_dir().join("gps-engine-snapshot-test.sample");
        engine.save_file(&path).unwrap();
        let saved = load_engine_file(&path).unwrap();
        assert_eq!(saved.shards.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
