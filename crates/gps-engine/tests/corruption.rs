//! Property: a corrupted engine snapshot NEVER restores silently wrong —
//! and with the container checksum, never restores at all.
//!
//! `ShardedGps::save` writes a `crc` header (FNV-1a over the canonical
//! header values and the raw section bytes), so for any saved engine —
//! plain (`gps-sample v1` sections) or estimating (`v2` sections with
//! in-stream accumulators) — every strict-prefix truncation and every
//! single bit flip must surface as a `PersistError` from `load_engine`.
//! No panic, no `Ok` carrying different state.

use gps_core::weights::TriangleWeight;
use gps_engine::{load_engine, EngineConfig, ShardedGps};
use gps_graph::types::Edge;
use proptest::prelude::*;

fn arb_stream(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect()
    })
}

/// Saved bytes of an engine over `stream`; estimating mode writes the v2
/// sections (accumulators + per-edge covariances) that must be covered by
/// the same corruption guarantees as v1.
fn saved_bytes(stream: &[Edge], capacity: usize, shards: usize, seed: u64, live: bool) -> Vec<u8> {
    let cfg = EngineConfig::new(capacity, shards, seed);
    let mut engine = if live {
        ShardedGps::with_estimation(cfg, TriangleWeight::default(), None)
    } else {
        ShardedGps::with_config(cfg, TriangleWeight::default())
    };
    engine.push_stream(stream.iter().copied());
    let mut buf = Vec::new();
    engine.save(&mut buf).expect("saving to a Vec cannot fail");
    buf
}

proptest! {
    #[test]
    fn truncated_snapshots_always_error(
        stream in arb_stream(48, 120),
        capacity in 4usize..24,
        seed in 0u64..1000,
        live in any::<bool>(),
        cut in 0.0f64..1.0,
    ) {
        let shards = 1 + (seed % 3) as usize;
        let capacity = capacity.max(shards);
        let bytes = saved_bytes(&stream, capacity, shards, seed, live);
        // Any strict prefix — down to the empty file — must error.
        let len = (bytes.len() as f64 * cut) as usize; // < len since cut < 1
        prop_assert!(
            load_engine(&bytes[..len]).is_err(),
            "truncation to {len}/{} bytes must not load",
            bytes.len()
        );
    }

    #[test]
    fn bit_flipped_snapshots_always_error(
        stream in arb_stream(48, 120),
        capacity in 4usize..24,
        seed in 0u64..1000,
        live in any::<bool>(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let shards = 1 + (seed % 3) as usize;
        let capacity = capacity.max(shards);
        let mut bytes = saved_bytes(&stream, capacity, shards, seed, live);
        let idx = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            load_engine(bytes.as_slice()).is_err(),
            "flipping bit {bit} of byte {idx} must not load"
        );
    }

    #[test]
    fn intact_snapshots_always_load(
        stream in arb_stream(48, 120),
        capacity in 4usize..24,
        seed in 0u64..1000,
        live in any::<bool>(),
    ) {
        let shards = 1 + (seed % 3) as usize;
        let capacity = capacity.max(shards);
        let bytes = saved_bytes(&stream, capacity, shards, seed, live);
        let saved = load_engine(bytes.as_slice()).expect("uncorrupted snapshot");
        prop_assert_eq!(saved.shards.len(), shards);
        prop_assert!(saved.shards.iter().all(|s| s.in_stream.is_some() == live));
    }
}
