//! Structural equivalence properties of the sharded engine.
//!
//! The anchor property: an `S = 1` engine is a plumbing-only wrapper —
//! shard 0 runs on the engine seed with the full budget and receives the
//! stream in order, so its reservoir, threshold and estimates must be
//! **bit-identical** to a bare `GpsSampler` fed the same stream. Everything
//! the engine adds (batching, channels, worker threads, merge/rescale with
//! `S = 1` factors of 1) must be invisible.

use gps_core::weights::{EdgeWeight, TriangleWeight, UniformWeight};
use gps_core::{post_stream, GpsSampler};
use gps_engine::{EngineConfig, ShardedGps};
use gps_graph::types::Edge;
use proptest::prelude::*;

/// Random edge stream (duplicates intentionally allowed: the duplicate
/// routing invariant must hold through the partition).
fn arb_stream(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect()
    })
}

fn assert_single_shard_matches_bare<W: EdgeWeight + Clone + Send + 'static>(
    stream: &[Edge],
    capacity: usize,
    weight_fn: W,
    seed: u64,
    batch: usize,
) {
    let mut bare = GpsSampler::new(capacity, weight_fn.clone(), seed);
    bare.process_stream(stream.iter().copied());

    let mut engine = ShardedGps::with_config(
        EngineConfig {
            batch,
            ..EngineConfig::new(capacity, 1, seed)
        },
        weight_fn,
    );
    engine.push_stream(stream.iter().copied());
    let engine_est = engine.estimate();
    let shard = &engine.samplers()[0];

    assert_eq!(shard.threshold().to_bits(), bare.threshold().to_bits());
    assert_eq!(shard.arrivals(), bare.arrivals());
    assert_eq!(shard.duplicates(), bare.duplicates());
    let mut a: Vec<_> = bare
        .edges()
        .map(|s| (s.edge, s.weight.to_bits(), s.priority.to_bits()))
        .collect();
    let mut b: Vec<_> = shard
        .edges()
        .map(|s| (s.edge, s.weight.to_bits(), s.priority.to_bits()))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "S=1 reservoir must be bit-identical");

    // The merged estimate path (strata sum of one stratum, rescale by 1)
    // must also be bit-identical to plain post-stream estimation.
    let bare_est = post_stream::estimate(&bare);
    assert_eq!(
        engine_est.triangles.value.to_bits(),
        bare_est.triangles.value.to_bits()
    );
    assert_eq!(
        engine_est.triangles.variance.to_bits(),
        bare_est.triangles.variance.to_bits()
    );
    assert_eq!(
        engine_est.wedges.value.to_bits(),
        bare_est.wedges.value.to_bits()
    );
    assert_eq!(
        engine_est.wedges.variance.to_bits(),
        bare_est.wedges.variance.to_bits()
    );
    assert_eq!(
        engine_est.tri_wedge_cov.to_bits(),
        bare_est.tri_wedge_cov.to_bits()
    );
    assert_eq!(
        engine_est.clustering.value.to_bits(),
        bare_est.clustering.value.to_bits()
    );
}

proptest! {
    #[test]
    fn single_shard_engine_is_bit_identical_to_bare_sampler_triangle(
        stream in arb_stream(24, 300),
        capacity in 1usize..48,
        seed in any::<u64>(),
    ) {
        assert_single_shard_matches_bare(&stream, capacity, TriangleWeight::default(), seed, 64);
    }

    #[test]
    fn single_shard_engine_is_bit_identical_to_bare_sampler_uniform(
        stream in arb_stream(32, 300),
        capacity in 1usize..48,
        seed in any::<u64>(),
        batch in 1usize..128,
    ) {
        // Batch size must be invisible too.
        assert_single_shard_matches_bare(&stream, capacity, UniformWeight, seed, batch);
    }

    #[test]
    fn sharded_run_is_deterministic_in_the_engine_seed(
        stream in arb_stream(40, 400),
        seed in any::<u64>(),
        shards in 1usize..6,
    ) {
        let capacity = 16 * shards;
        let run = |batch: usize| {
            let mut engine = ShardedGps::with_config(
                EngineConfig { batch, ..EngineConfig::new(capacity, shards, seed) },
                TriangleWeight::default(),
            );
            engine.push_stream(stream.iter().copied());
            let est = engine.estimate();
            let mut edges: Vec<(usize, Edge)> = engine
                .samplers()
                .iter()
                .enumerate()
                .flat_map(|(i, s)| s.edges().map(move |se| (i, se.edge)).collect::<Vec<_>>())
                .collect();
            edges.sort();
            (est.triangles.value.to_bits(), est.wedges.value.to_bits(), edges)
        };
        // Same seed, different batching: identical samples and estimates.
        prop_assert_eq!(run(1024), run(7));
    }

    #[test]
    fn every_shard_respects_its_budget_and_owns_its_color(
        stream in arb_stream(64, 600),
        seed in any::<u64>(),
        shards in 2usize..5,
    ) {
        let capacity = 8 * shards;
        let mut engine = ShardedGps::new(capacity, UniformWeight, seed, shards);
        engine.push_stream(stream.iter().copied());
        engine.finish();
        let partitioner = *engine.partitioner();
        for (i, sampler) in engine.samplers().iter().enumerate() {
            prop_assert!(sampler.len() <= sampler.capacity());
            for se in sampler.edges() {
                prop_assert_eq!(
                    partitioner.shard_of(se.edge), i,
                    "edge {} sampled by shard {} but colored {}",
                    se.edge, i, partitioner.shard_of(se.edge)
                );
            }
        }
    }
}
