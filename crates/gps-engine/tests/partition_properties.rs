//! Partition properties at scale-out shard counts: load balance and
//! routing stability.
//!
//! The colorful-merge unbiasedness argument needs the edge → shard map to
//! behave like independent uniform draws (see `partition.rs`), and the
//! recovery story needs the map to be a pure function of the engine seed —
//! a restored engine must route every subsequent edge exactly as the
//! original would have, or duplicate suppression and the `S^{j-1}`
//! monochromacy correction both silently break. This suite pins the two
//! halves at `S ∈ {16, 64, 256}`:
//!
//! - **balance**: the max/min per-shard load ratio stays within calibrated
//!   bounds on a uniform key stream and on a Zipf(1.0)-skewed stream with
//!   repeats (repeats *must* collide — same edge, same shard — so skewed
//!   streams are bounded more loosely, not rebalanced).
//! - **stability**: an engine round-tripped through [`SavedEngine`] keeps
//!   the exact per-shard routing for fresh post-restore edges, verified
//!   end-to-end against per-shard arrival ledgers.

use gps_core::weights::UniformWeight;
use gps_engine::{load_engine, EdgePartitioner, EngineConfig, ShardedGps};
use gps_graph::types::Edge;
use gps_graph::BackendKind;

/// `splitmix64` (same constants as the partitioner's, but used here as a
/// plain seeded u64 stream for test-local draws).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform-key stream: distinct edges whose canonical keys spread evenly.
fn uniform_stream(n: usize, seed: u64) -> Vec<Edge> {
    (0..n)
        .map(|i| {
            let h = splitmix64(seed ^ i as u64);
            let a = (h >> 32) as u32 & 0xF_FFFF;
            let b = h as u32 & 0xF_FFFF;
            Edge::try_new(a, b).unwrap_or_else(|| Edge::new(a, a ^ 1))
        })
        .collect()
}

/// Zipf(α)-skewed stream over `nodes` endpoints, repeats allowed: inverse
/// CDF of `p(k) ∝ k^{-α}` over a seeded uniform stream. A few hot hubs
/// carry most of the degree mass — the partition-stress regime.
fn zipf_stream(nodes: usize, n: usize, alpha: f64, seed: u64) -> Vec<Edge> {
    let mut cdf = Vec::with_capacity(nodes);
    let mut total = 0.0f64;
    for k in 1..=nodes {
        total += (k as f64).powf(-alpha);
        cdf.push(total);
    }
    let draw = |x: u64| -> u32 {
        let u = (x >> 11) as f64 / (1u64 << 53) as f64 * total;
        cdf.partition_point(|&c| c < u) as u32
    };
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        let a = draw(splitmix64(seed ^ (2 * i)));
        let b = draw(splitmix64(seed ^ (2 * i + 1)));
        i += 1;
        if let Some(e) = Edge::try_new(a, b) {
            out.push(e);
        }
    }
    out
}

fn max_min_ratio(partitioner: &EdgePartitioner, stream: &[Edge]) -> f64 {
    let mut loads = vec![0u64; partitioner.shards()];
    for &e in stream {
        loads[partitioner.shard_of(e)] += 1;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let min = *loads.iter().min().expect("non-empty") as f64;
    assert!(min > 0.0, "some shard received no edges at all");
    max / min
}

/// Balance: the hash partition keeps per-shard loads within a calibrated
/// max/min ratio at every scale-out `S`, on uniform and skewed keys.
#[test]
fn shard_loads_stay_balanced_at_scale_out_counts() {
    let n = 120_000;
    // (shards, uniform bound, zipf bound), calibrated just above the
    // measured seeded ratios: binomial spread widens as the per-shard
    // expectation (n/S) shrinks — measured uniform max/min ≈ 1.06 / 1.12 /
    // 1.32 at S = 16 / 64 / 256 — and under Zipf the hottest repeated edge
    // (~1.4% of the stream) must land on one shard, so the skewed ratio
    // legitimately grows with S (≈ 1.6 / 2.6 / 7.4). Anything well past
    // these is a mixing regression, not noise: the streams are seeded.
    for &(shards, uniform_bound, zipf_bound) in
        &[(16usize, 1.10, 2.0), (64, 1.15, 3.5), (256, 1.40, 9.0)]
    {
        for seed in [1u64, 2, 3] {
            let p = EdgePartitioner::new(seed, shards);
            let u = max_min_ratio(&p, &uniform_stream(n, 900 + seed));
            let z = max_min_ratio(&p, &zipf_stream(4_000, n, 1.0, 900 + seed));
            assert!(
                u < uniform_bound,
                "S={shards} seed={seed}: uniform max/min {u:.3} ≥ {uniform_bound}"
            );
            assert!(
                z < zipf_bound,
                "S={shards} seed={seed}: zipf max/min {z:.3} ≥ {zipf_bound}"
            );
        }
    }
}

/// Stability: a [`SavedEngine`] round trip preserves routing exactly — the
/// restored engine sends every subsequent edge to the shard the original
/// partition dictates, verified against per-shard arrival ledgers.
#[test]
fn restored_engine_routes_subsequent_edges_identically() {
    for &shards in &[16usize, 64, 256] {
        let seed = 40 + shards as u64;
        let before = uniform_stream(6_000, seed ^ 0xAA);
        let after = zipf_stream(2_000, 6_000, 1.0, seed ^ 0xBB);

        let mut engine =
            ShardedGps::with_config(EngineConfig::new(4_096, shards, seed), UniformWeight);
        engine.push_stream(before.iter().copied());
        let mut saved_bytes = Vec::new();
        engine.save(&mut saved_bytes).expect("save");

        // The engine's own ledger matches the partition function...
        let p = EdgePartitioner::new(seed, shards);
        let mut expect: Vec<u64> = vec![0; shards];
        for &e in &before {
            expect[p.shard_of(e)] += 1;
        }
        let ledger: Vec<u64> = engine.samplers().iter().map(|s| s.arrivals()).collect();
        assert_eq!(ledger, expect, "S={shards}: pre-save routing ledger");

        // ...and the restored engine keeps routing fresh edges by it.
        let saved = load_engine(saved_bytes.as_slice()).expect("load");
        assert_eq!(saved.seed, seed);
        assert_eq!(saved.shards.len(), shards);
        let mut restored = saved.into_engine(UniformWeight, BackendKind::Compact);
        restored.push_stream(after.iter().copied());
        restored.finish();
        for &e in &after {
            expect[p.shard_of(e)] += 1;
        }
        let ledger: Vec<u64> = restored.samplers().iter().map(|s| s.arrivals()).collect();
        assert_eq!(ledger, expect, "S={shards}: post-restore routing ledger");
    }
}
