//! Statistical validation of cross-shard merging.
//!
//! The engine's estimate composes two layers of randomness: the seeded
//! edge coloring (which subgraphs are monochromatic) and per-shard GPS
//! sampling. Unbiasedness must hold over both jointly:
//! `E[S²·Σ_shards N̂_i(△)] = N(△)` and `E[S·Σ_shards N̂_i(Λ)] = N(Λ)`.
//! These tests drive the full engine — threads, batching, partition,
//! merge — over many independent seeds on streams with exact ground
//! truth, and compare the empirical mean to the truth. Tolerances follow
//! the existing `gps-core` statistical suites: loose enough to keep flake
//! probability negligible, tight enough to catch any wrong rescaling
//! factor (the smallest wrong factor, S = 2 on wedges, is a 2× error).

use gps_core::weights::TriangleWeight;
use gps_engine::ShardedGps;
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_stream::{gen, permuted};

struct Truth {
    triangles: f64,
    wedges: f64,
}

fn ground_truth(edges: &[Edge]) -> Truth {
    let g = CsrGraph::from_edges(edges);
    Truth {
        triangles: exact::triangle_count(&g) as f64,
        wedges: exact::wedge_count(&g) as f64,
    }
}

/// Mean sharded estimates over `runs` independent (coloring, sampling,
/// stream-order) draws.
fn mean_estimates(edges: &[Edge], capacity: usize, shards: usize, runs: u64) -> (f64, f64) {
    let (mut tri_sum, mut wedge_sum) = (0.0, 0.0);
    for run in 0..runs {
        let stream = permuted(edges, 7_000 + run);
        let mut engine = ShardedGps::new(capacity, TriangleWeight::default(), 100 + run, shards);
        engine.push_stream(stream);
        let est = engine.estimate();
        tri_sum += est.triangles.value;
        wedge_sum += est.wedges.value;
    }
    (tri_sum / runs as f64, wedge_sum / runs as f64)
}

#[test]
fn sharded_estimates_are_unbiased_on_cliques_stream() {
    // Overlapping-clique "collaboration" stream: triangle-rich, exact
    // truth cheap. Reservoirs at 1/4 of the stream force evictions, so
    // both HT normalization and the coloring correction are exercised.
    let edges = gen::collaboration(500, 420, (3, 6), 0.5, 11);
    let truth = ground_truth(&edges);
    assert!(truth.triangles > 500.0, "stream must be triangle-rich");
    let capacity = edges.len() / 4;
    for shards in [2usize, 4] {
        let runs = 48;
        let (tri_mean, wedge_mean) = mean_estimates(&edges, capacity, shards, runs);
        assert!(
            (tri_mean - truth.triangles).abs() / truth.triangles < 0.10,
            "S={shards}: triangle mean {tri_mean} vs truth {}",
            truth.triangles
        );
        assert!(
            (wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
            "S={shards}: wedge mean {wedge_mean} vs truth {}",
            truth.wedges
        );
    }
}

#[test]
fn sharded_estimates_are_unbiased_on_er_stream() {
    // Erdős–Rényi: low clustering, so triangles are scarce and dominated
    // by the coloring variance — the regime where a wrong S² factor is
    // most visible.
    let edges = gen::erdos_renyi(400, 3_200, 23);
    let truth = ground_truth(&edges);
    assert!(truth.triangles > 200.0);
    let capacity = edges.len() / 4;
    for shards in [2usize, 4] {
        let runs = 60;
        let (tri_mean, wedge_mean) = mean_estimates(&edges, capacity, shards, runs);
        assert!(
            (tri_mean - truth.triangles).abs() / truth.triangles < 0.15,
            "S={shards}: triangle mean {tri_mean} vs truth {}",
            truth.triangles
        );
        assert!(
            (wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
            "S={shards}: wedge mean {wedge_mean} vs truth {}",
            truth.wedges
        );
    }
}

#[test]
fn full_retention_matches_exact_monochromatic_counts() {
    // With capacity ≥ stream nothing is evicted: each shard's estimate is
    // *exactly* its monochromatic subgraph count, so the only randomness
    // left is the coloring. Check the merged estimate against the exact
    // per-color counts computed independently from the partition.
    let edges = gen::collaboration(200, 120, (3, 5), 0.4, 5);
    let shards = 3usize;
    // Every shard gets a budget covering the whole stream, so no shard can
    // evict even under hash imbalance.
    let mut engine = ShardedGps::new(shards * edges.len(), TriangleWeight::default(), 77, shards);
    engine.push_stream(edges.iter().copied());
    let est = engine.estimate();

    let partitioner = *engine.partitioner();
    let mut mono_tri = 0u64;
    let g = CsrGraph::from_edges(&edges);
    exact::for_each_triangle(&g, |a, b, c| {
        let s1 = partitioner.shard_of(Edge::new(a, b));
        let s2 = partitioner.shard_of(Edge::new(b, c));
        let s3 = partitioner.shard_of(Edge::new(a, c));
        if s1 == s2 && s2 == s3 {
            mono_tri += 1;
        }
    });
    let expect = (shards * shards) as f64 * mono_tri as f64;
    assert!(
        (est.triangles.value - expect).abs() < 1e-9 * (1.0 + expect),
        "merged {} vs S²·monochromatic {}",
        est.triangles.value,
        expect
    );
    // Full retention ⇒ per-shard (conditional) variance estimates are all
    // exactly zero, so the reported variance is *purely* the between-shard
    // coloring term: the empirical variance of the mean of the per-shard
    // global estimates S³·t̂_i. Reconstruct it independently from the
    // partition and check equality — this is the regime where the old
    // partition-conditional CIs collapsed to width zero.
    let s = shards as f64;
    let mut per_color_tri = vec![0u64; shards];
    exact::for_each_triangle(&g, |a, b, c| {
        let s1 = partitioner.shard_of(Edge::new(a, b));
        let s2 = partitioner.shard_of(Edge::new(b, c));
        let s3 = partitioner.shard_of(Edge::new(a, c));
        if s1 == s2 && s2 == s3 {
            per_color_tri[s1] += 1;
        }
    });
    let expect_var =
        gps_core::variance_of_mean(per_color_tri.iter().map(|&t| t as f64 * s * s * s));
    assert!(expect_var > 0.0, "colors cannot hold identical counts here");
    assert!(
        (est.triangles.variance - expect_var).abs() < 1e-9 * (1.0 + expect_var),
        "variance {} vs between-shard term {}",
        est.triangles.variance,
        expect_var
    );
    assert!(est.wedges.variance > 0.0);
}

#[test]
fn in_expectation_sharding_loses_no_mean_accuracy_vs_single_reservoir() {
    // Sanity: the sharded mean and the S=1 mean converge to the same
    // truth; a factor error in either path would separate them.
    let edges = gen::collaboration(300, 200, (3, 5), 0.5, 9);
    let truth = ground_truth(&edges);
    let capacity = edges.len() / 4;
    let runs = 40;
    let (solo_tri, _) = mean_estimates(&edges, capacity, 1, runs);
    let (sharded_tri, _) = mean_estimates(&edges, capacity, 4, runs);
    assert!((solo_tri - truth.triangles).abs() / truth.triangles < 0.10);
    assert!((sharded_tri - truth.triangles).abs() / truth.triangles < 0.12);
}
