//! Property: an `S = 1` serving engine is a plumbing-only wrapper — every
//! epoch it publishes carries estimates **bit-identical** to a bare
//! `InStreamEstimator` (same seed, same stream) evaluated at the epoch's
//! watermark. Channels, batching, the epoch board and the seqlock cell add
//! no estimator behavior of their own.

use gps_core::weights::TriangleWeight;
use gps_core::{InStreamEstimator, TriadEstimates};
use gps_engine::EngineConfig;
use gps_graph::types::Edge;
use gps_serve::{ClockMode, EstimateEpoch, ServeConfig, ServeEngine};
use proptest::prelude::*;

/// Random edge stream; duplicates allowed (the duplicate skip must agree).
fn arb_stream(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect()
    })
}

/// Bare-estimator estimates after each arrival count: `trace[t]` is the
/// state after `t` arrivals (including duplicates), `trace[0]` the empty
/// state.
fn bare_trace(stream: &[Edge], capacity: usize, seed: u64) -> Vec<TriadEstimates> {
    let mut est = InStreamEstimator::new(capacity, TriangleWeight::default(), seed);
    let mut trace = vec![est.estimates()];
    for &e in stream {
        est.process(e);
        trace.push(est.estimates());
    }
    trace
}

fn assert_bits_equal(epoch: &EstimateEpoch, expect: &TriadEstimates) {
    let got = &epoch.estimates;
    assert_eq!(
        got.triangles.value.to_bits(),
        expect.triangles.value.to_bits(),
        "triangle value at watermark {}",
        epoch.edges_seen
    );
    assert_eq!(
        got.triangles.variance.to_bits(),
        expect.triangles.variance.to_bits()
    );
    assert_eq!(got.wedges.value.to_bits(), expect.wedges.value.to_bits());
    assert_eq!(
        got.wedges.variance.to_bits(),
        expect.wedges.variance.to_bits()
    );
    assert_eq!(got.tri_wedge_cov.to_bits(), expect.tri_wedge_cov.to_bits());
    assert_eq!(
        got.clustering.value.to_bits(),
        expect.clustering.value.to_bits()
    );
}

proptest! {
    #[test]
    fn s1_epochs_are_bit_identical_to_a_bare_in_stream_estimator(
        stream in arb_stream(24, 250),
        capacity in 1usize..40,
        seed in any::<u64>(),
        batch in 1usize..48,
        epoch_every in 1u64..64,
    ) {
        let trace = bare_trace(&stream, capacity, seed);
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch,
                    epoch_every,
                    ..EngineConfig::new(capacity, 1, seed)
                },
                // Deep enough that no epoch of this stream is ever dropped.
                subscribe_depth: 4096,
                gate_timeout: None,
                clock: ClockMode::Wall,
            },
            TriangleWeight::default(),
        );
        let handle = serve.handle();
        let sub = handle.subscribe().expect("live engine");
        serve.push_stream(stream.iter().copied());
        serve.finish();
        let epochs: Vec<EstimateEpoch> = sub.collect();
        prop_assert!(!epochs.is_empty());
        let mut last_version = 0;
        for epoch in &epochs {
            prop_assert!(epoch.version > last_version);
            last_version = epoch.version;
            prop_assert_eq!(epoch.shards, 1);
            // Watermark indexes the bare trace: with one shard the epoch
            // must restate the bare estimator's state at that position.
            assert_bits_equal(epoch, &trace[epoch.edges_seen as usize]);
        }
        // The final epoch always reflects the whole stream.
        prop_assert_eq!(
            epochs.last().unwrap().edges_seen as usize,
            stream.len()
        );
    }
}
