//! Provenance tracing acceptance: the flight recorder's epoch timelines
//! are **bit-reproducible** under the manual clock, degraded epochs name
//! their cause and missing shards, and the scrape endpoint serves the
//! whole story over loopback HTTP.
//!
//! The determinism contract mirrors the chaos suite's: every span
//! timestamp comes from the board's clock hook, and in these tests the
//! driver owns that clock — so two same-seed runs must agree on every
//! trace to the byte, JSON rendering included. The committed seeds are
//! shifted by `GPS_SEED_OFFSET` when set, so CI re-runs the suite under
//! a small seed matrix.

use gps_core::weights::UniformWeight;
use gps_engine::{EngineConfig, FaultPlan};
use gps_serve::{ClockMode, EstimateEpoch, ServeConfig, ServeEngine};
use gps_stream::{gen, permuted};
use gps_telemetry::{EpochTrace, TraceCause};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Suite seed: the committed base shifted by the CI matrix offset.
fn seed(base: u64) -> u64 {
    let offset = std::env::var("GPS_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset
}

/// One fully driven single-shard run: push one epoch-sized batch, wait
/// for its epoch, advance the manual clock one fixed step — the same
/// discipline `bench_baseline --trace` uses — then return every trace
/// the flight recorder retained.
fn traced_run(seed: u64, step_ns: u64) -> Vec<EpochTrace> {
    let chunk = 32usize;
    let mut edges = gen::collaboration(80, 70, (2, 4), 0.5, 13);
    edges = permuted(&edges, seed);
    edges.truncate(chunk * 6);
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: chunk,
            epoch_every: chunk as u64,
            ..EngineConfig::new(64, 1, seed)
        },
        subscribe_depth: 1024,
        gate_timeout: None,
        clock: ClockMode::Manual,
    };
    let mut serve = ServeEngine::with_config(cfg, UniformWeight);
    let handle = serve.handle();
    let mut pushed = 0u64;
    for batch in edges.chunks(chunk) {
        serve.push_batch(batch);
        pushed += batch.len() as u64;
        handle.wait_for_edges(pushed).expect("epoch publishes");
        serve.advance_clock(Duration::from_nanos(step_ns));
    }
    serve.finish();
    // Observe the drain-end epoch so its timeline is complete too.
    handle.latest().expect("final epoch");
    handle.recent_traces(64)
}

#[test]
fn manual_clock_timelines_are_bit_identical_across_runs() {
    let step = 100u64;
    let a = traced_run(seed(41), step);
    let b = traced_run(seed(41), step);
    assert!(a.len() >= 7, "launch + 6 chunks + drain, got {}", a.len());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        // Everything in a manual-clock trace is a stable field: same
        // seed must reproduce the rendering byte-for-byte.
        assert_eq!(x.to_json(), y.to_json(), "epoch {} diverged", x.version);
        assert_eq!(x.fingerprint(), y.fingerprint());
    }
    // Pin one mid-run epoch's exact timeline. Epoch 3 is the second
    // chunk's: its batch spans exactly one clock step, and every
    // in-publication stage is zero-width because the clock only moves
    // between chunks.
    let t = a.iter().find(|t| t.version == 3).expect("epoch 3 retained");
    let stages: Vec<&str> = t.spans.iter().map(|s| s.stage).collect();
    assert_eq!(
        stages,
        vec![
            "arrival_batch",
            "shard_report",
            "gate_wait",
            "merge",
            "seqlock_publish",
            "first_observation",
        ]
    );
    assert_eq!(t.stage_ns("arrival_batch"), Some(step));
    assert_eq!(t.stage_ns("merge"), Some(0));
    assert_eq!(t.stage_ns("seqlock_publish"), Some(0));
    assert_eq!(t.cause, TraceCause::Full);
    assert_eq!(t.contributing, 0b1);
    assert!(!t.degraded());
    assert_eq!(t.first_observed_ns, Some(t.published_at_ns));
    // The drain-end epoch publishes on engine close, full merge.
    let last = a.last().expect("non-empty");
    assert_eq!(last.cause, TraceCause::Full);
}

#[test]
fn degraded_epoch_trace_names_the_cause_and_the_missing_shard() {
    // The stalled-shard scenario from the serve suite: shard 1 parks for
    // 400 ms of wall time while the 50 ms publication gate runs on
    // frozen virtual time, so every epoch shard 0 publishes during the
    // stall is degraded — and its trace must say why and who.
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: 8,
            epoch_every: 16,
            ..EngineConfig::new(60, 2, seed(5))
        },
        subscribe_depth: 4096,
        gate_timeout: Some(Duration::from_millis(50)),
        clock: ClockMode::Manual,
    };
    let faults = FaultPlan::new().stall_at(1, 1, 400);
    let mut serve = ServeEngine::with_config_and_faults(cfg, UniformWeight, faults);
    let handle = serve.handle();
    let sub = handle.subscribe().expect("live engine");
    handle.wait_for_edges(0).expect("launch epoch");
    assert!(serve.advance_clock(Duration::from_millis(51)));
    let edges = gen::collaboration(120, 100, (2, 4), 0.5, 13);
    serve.push_stream(edges.iter().copied());
    serve.finish();
    let epochs: Vec<EstimateEpoch> = sub.collect();
    let degraded = epochs
        .iter()
        .rev()
        .find(|e| e.degraded() && e.contributing == 0b01)
        .expect("the gate publishes shard-0-only epochs during the stall");
    let trace = handle
        .trace(degraded.version)
        .expect("recent degraded epoch is still in the recorder");
    assert_eq!(trace.cause, TraceCause::GateExpired);
    assert!(trace.degraded());
    assert_eq!(
        trace.missing_shards(),
        vec![1],
        "the trace names the non-reporting shard"
    );
    assert_eq!(trace.contributing, 0b01);
    let json = trace.to_json();
    assert!(json.contains("\"cause\":\"gate_expired\",\"degraded\":true"));
    // The recovered tail publishes full epochs with a full-cause trace.
    let last = epochs.last().expect("finish publishes a final epoch");
    assert!(!last.degraded());
    let tail = handle.trace(last.version).expect("final epoch traced");
    assert_eq!(tail.cause, TraceCause::Full);
    assert_eq!(tail.missing_shards(), Vec::<u32>::new());
}

/// Minimal HTTP GET over a `TcpStream`; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("scrape endpoint accepts");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("request written");
    let mut response = String::new();
    // `Connection: close` — read to EOF.
    stream.read_to_string(&mut response).expect("response read");
    let status = response.lines().next().unwrap_or("").to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn scrape_endpoint_serves_metrics_health_and_traces_over_loopback() {
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: 16,
            epoch_every: 16,
            ..EngineConfig::new(64, 2, seed(23))
        },
        subscribe_depth: 1024,
        gate_timeout: None,
        clock: ClockMode::Manual,
    };
    let mut serve = ServeEngine::with_config(cfg, UniformWeight);
    let addr = serve
        .start_scrape("127.0.0.1:0")
        .expect("loopback bind succeeds");
    assert_eq!(serve.scrape_addr(), Some(addr));
    let edges = gen::collaboration(100, 90, (2, 4), 0.5, 13);
    serve.push_stream(edges.iter().copied());
    serve.finish();
    let epoch = serve.handle().latest().expect("final epoch");

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("gps_serve_epochs_published_total"));
    assert!(body.contains("gps_engine_arrivals_total"));

    let (status, body) = http_get(addr, "/health");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.starts_with('{') && body.ends_with('}'));
    assert!(body.contains("\"closed\":true"));
    assert!(body.contains(&format!("\"version\":{}", epoch.version)));
    assert!(body.contains(&format!("\"edges_seen\":{}", epoch.edges_seen)));
    assert!(body.contains("\"degraded\":false"));
    assert!(body.contains("\"degraded_mask\":0"));

    let (status, body) = http_get(addr, &format!("/trace/{}", epoch.version));
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains(&format!("\"version\":{}", epoch.version)));
    assert!(body.contains("\"spans\":[{\"stage\":"));
    // The HTTP body is the same rendering the in-process query returns.
    let trace = serve
        .handle()
        .trace(epoch.version)
        .expect("final epoch traced");
    assert_eq!(body, trace.to_json());

    let (status, body) = http_get(addr, "/trace/999999");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("\"error\":\"trace not retained\""));

    let (status, body) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("\"error\":\"unknown path\""));

    // Lifecycle: dropping the engine stops the endpoint (thread joined,
    // listener closed) — new connections must be refused.
    drop(serve);
    assert!(
        TcpStream::connect(addr).is_err(),
        "scrape endpoint must stop with its engine"
    );
}
