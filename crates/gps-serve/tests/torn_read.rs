//! Torn-read stress over the public serving API: reader threads hammer a
//! `QueryHandle` while the engine ingests, asserting the invariants the
//! `EpochCell` seqlock and the board gate guarantee — no epoch is ever
//! internally inconsistent, versions and watermarks are monotone per
//! reader, and estimates are always finite.
//!
//! This is the CI sanitizer target: `cargo miri test -p gps-serve --test
//! torn_read` checks the same protocol the gps-analyze interleaving models
//! verify, but against the *real* atomics under Miri's weak-memory
//! machinery (and under ThreadSanitizer in the nightly job). Iteration
//! counts scale down under Miri, where each interleaving costs orders of
//! magnitude more than native.

use gps_core::weights::TriangleWeight;
use gps_graph::types::Edge;
use gps_serve::ServeEngine;

fn clique_edges(n: u32) -> Vec<Edge> {
    let mut edges = vec![];
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push(Edge::new(u, v));
        }
    }
    edges
}

/// Stream size and reader count shrink under Miri.
fn scale() -> (u32, usize) {
    if cfg!(miri) {
        (12, 2)
    } else {
        (60, 4)
    }
}

#[test]
fn concurrent_queries_never_observe_torn_epochs() {
    let (n, readers) = scale();
    let edges = clique_edges(n);
    let mut serve = ServeEngine::new(64, TriangleWeight::default(), 97, 2);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let threads: Vec<_> = (0..readers)
        .map(|_| {
            let handle = serve.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let (mut last_v, mut last_w, mut reads) = (0u64, 0u64, 0u64);
                // ordering: Relaxed — stop flag only ends the loop; epoch
                // data synchronizes through the board and its seqlock cell.
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let Some(e) = handle.latest() else {
                        std::thread::yield_now();
                        continue;
                    };
                    // A torn read would mix words from two epochs: version
                    // or watermark regressing, or a non-finite estimate
                    // decoded from mismatched halves.
                    assert!(e.version >= last_v, "version regressed");
                    assert!(e.edges_seen >= last_w, "watermark regressed");
                    assert!(
                        e.estimates.triangles.value.is_finite()
                            && e.estimates.triangles.variance.is_finite(),
                        "non-finite estimate decoded"
                    );
                    assert!(
                        e.edges_seen <= (n as u64) * (n as u64 - 1) / 2,
                        "watermark beyond the stream"
                    );
                    last_v = e.version;
                    last_w = e.edges_seen;
                    reads += 1;
                    std::thread::yield_now();
                }
                reads
            })
        })
        .collect();
    for chunk in edges.chunks(7) {
        serve.push_batch(chunk);
    }
    serve.finish();
    // ordering: Relaxed — shutdown signal; reader results come back
    // through join(), which synchronizes.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reads: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(reads > 0, "readers never saw an epoch");
    let last = serve.handle().latest().expect("final epoch");
    assert_eq!(last.edges_seen, edges.len() as u64);
}

#[test]
fn subscription_stream_is_gap_free_and_consistent() {
    let (n, _) = scale();
    let edges = clique_edges(n);
    let mut serve = ServeEngine::new(64, TriangleWeight::default(), 5, 2);
    let handle = serve.handle();
    let mut sub = handle.subscribe().expect("live engine");
    let collector = std::thread::spawn(move || {
        let mut last_v = 0u64;
        let mut count = 0u64;
        while let Some(e) = sub.recv() {
            assert!(e.version > last_v, "subscription replayed or regressed");
            assert!(e.estimates.triangles.value.is_finite());
            last_v = e.version;
            count += 1;
        }
        count
    });
    for chunk in edges.chunks(5) {
        serve.push_batch(chunk);
    }
    serve.finish();
    let delivered = collector.join().unwrap();
    assert!(delivered > 0, "no epochs delivered");
}
