//! Snapshot/restore of a serving engine **while a live `QueryHandle` is
//! attached**: epoch versions stay strictly monotone across the restore,
//! the watermark never regresses, and estimates continue from the restored
//! samples instead of restarting at zero.

use gps_core::weights::TriangleWeight;
use gps_engine::snapshot::load_engine;
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_serve::{EstimateEpoch, ServeEngine};

fn triangle_stream(lo: u32, hi: u32) -> Vec<Edge> {
    let mut edges = vec![];
    for base in lo..hi {
        edges.push(Edge::new(base, base + 1));
        edges.push(Edge::new(base, base + 2));
        edges.push(Edge::new(base + 1, base + 2));
    }
    edges
}

#[test]
fn epochs_stay_monotone_across_save_and_restore() {
    // Capacity comfortably above the stream: every shard retains its whole
    // substream, so the restored post-stream seeding and the post-restore
    // completions are deterministic (nonzero for any partition) and the
    // "estimates build on the saved state" assertion cannot flake.
    let mut serve = ServeEngine::new(600, TriangleWeight::default(), 17, 3);
    let handle = serve.handle();
    let sub = handle.subscribe().expect("live engine");
    let phase1 = triangle_stream(0, 60);
    serve.push_stream(phase1.iter().copied());

    // Save: finishes the engine, publishes the final epoch, ends the
    // subscription.
    let mut buf = Vec::new();
    serve.save(&mut buf).unwrap();
    let epochs1: Vec<EstimateEpoch> = sub.collect();
    assert!(!epochs1.is_empty());
    assert!(handle.is_closed());
    let at_save = handle.latest().unwrap();
    assert_eq!(at_save.edges_seen, phase1.len() as u64);
    let tri_at_save = at_save.estimates.triangles.value;
    assert!(tri_at_save > 0.0);

    // Restore onto the SAME handle's board: versions continue, the
    // watermark picks up where the snapshot left off (the workers' initial
    // reports carry the restored positions), and a fresh subscription
    // starts delivering again.
    let saved = load_engine(buf.as_slice()).unwrap();
    let mut resumed = ServeEngine::resume(
        saved,
        TriangleWeight::default(),
        BackendKind::Compact,
        gps_engine::DEFAULT_EPOCH_EVERY,
        &handle,
    );
    assert!(!handle.is_closed());
    let sub2 = handle.subscribe().expect("board reopened");
    let phase2 = triangle_stream(60, 120);
    resumed.push_stream(phase2.iter().copied());
    resumed.finish();
    let epochs2: Vec<EstimateEpoch> = sub2.collect();
    assert!(!epochs2.is_empty());

    // Version monotonicity over the concatenated epoch history: strictly
    // increasing within each subscription, and non-decreasing at the
    // save/resume boundary (the fresh subscription is primed with the
    // final pre-save epoch, which may restate its version once).
    for epochs in [&epochs1, &epochs2] {
        assert!(
            epochs.windows(2).all(|w| w[0].version < w[1].version),
            "epoch versions must be strictly increasing within a subscription"
        );
    }
    let all: Vec<&EstimateEpoch> = epochs1.iter().chain(&epochs2).collect();
    assert!(
        all.windows(2).all(|w| w[0].version <= w[1].version),
        "epoch versions must never regress across the restore"
    );
    // The watermark never regresses across the restore either: the first
    // resumed epoch already reflects the saved stream position.
    assert!(all.windows(2).all(|w| w[0].edges_seen <= w[1].edges_seen));
    let final_epoch = handle.latest().unwrap();
    assert_eq!(
        final_epoch.edges_seen,
        (phase1.len() + phase2.len()) as u64,
        "restored watermark must count the pre-save arrivals"
    );
    // Estimates continued from the restored samples (seeded accumulators),
    // not from zero: the final count reflects both phases.
    assert!(
        final_epoch.estimates.triangles.value > tri_at_save,
        "post-restore estimates must build on the saved state: {} vs {}",
        final_epoch.estimates.triangles.value,
        tri_at_save
    );
}

#[test]
fn resume_requires_a_finished_predecessor() {
    let serve = ServeEngine::new(16, TriangleWeight::default(), 1, 2);
    let handle = serve.handle();
    // Build an unrelated snapshot to feed resume.
    let mut donor = ServeEngine::new(16, TriangleWeight::default(), 1, 2);
    donor.push_stream(triangle_stream(0, 10));
    let mut buf = Vec::new();
    donor.save(&mut buf).unwrap();
    let saved = load_engine(buf.as_slice()).unwrap();
    let result = std::panic::catch_unwind(move || {
        ServeEngine::resume(
            saved,
            TriangleWeight::default(),
            BackendKind::Compact,
            gps_engine::DEFAULT_EPOCH_EVERY,
            &handle,
        )
    });
    assert!(result.is_err(), "resume onto a live board must panic");
}

#[test]
fn waiters_on_the_resumed_generation_see_the_combined_watermark() {
    // A reader blocks on a watermark only the *combined* pre-save +
    // post-restore stream reaches: the handle is one continuous query
    // surface across engine generations, so the wait completes once the
    // resumed engine pushes past the target.
    let mut serve = ServeEngine::new(30, TriangleWeight::default(), 3, 2);
    let handle = serve.handle();
    let phase1 = triangle_stream(0, 40);
    let phase2 = triangle_stream(40, 80);
    let target = (phase1.len() + phase2.len()) as u64;
    serve.push_stream(phase1.iter().copied());
    let mut buf = Vec::new();
    serve.save(&mut buf).unwrap();
    // A closed board answers satisfied watermarks from the final epoch and
    // declines unreachable ones instead of hanging.
    assert!(handle.wait_for_edges(1).is_some());
    assert!(handle.wait_for_edges(target).is_none());

    let saved = load_engine(buf.as_slice()).unwrap();
    let mut resumed = ServeEngine::resume(
        saved,
        TriangleWeight::default(),
        BackendKind::Compact,
        gps_engine::DEFAULT_EPOCH_EVERY,
        &handle,
    );
    let waiter = {
        let handle = handle.clone();
        std::thread::spawn(move || handle.wait_for_edges(target))
    };
    resumed.push_stream(phase2.iter().copied());
    resumed.finish();
    let epoch = waiter
        .join()
        .unwrap()
        .expect("restored stream reaches target");
    assert!(epoch.edges_seen >= target);
}
