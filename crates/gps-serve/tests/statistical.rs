//! Statistical validation of the live-epoch estimates (the acceptance
//! gate for the serving layer):
//!
//! 1. **Unbiasedness** — final live epochs from `S ∈ {2, 4}` serving
//!    engines are unbiased against exact truth on a triangle-rich
//!    overlapping-cliques stream and a low-clustering Erdős–Rényi stream,
//!    over both randomness sources jointly (coloring × sampling ×
//!    stream order).
//! 2. **Honest CIs** — the 95% intervals reported in the epochs achieve
//!    coverage near nominal. The sharpest regime is *full retention*:
//!    per-shard conditional variances are exactly zero there, so coverage
//!    comes **entirely** from the between-shard coloring term — the old
//!    partition-conditional intervals had width zero and coverage ~0%.
//!    Nominal-minus-slack thresholds account for the `χ²_{S−1}` noise of
//!    an `S`-point empirical variance (the t-distribution, not the normal,
//!    is the honest reference at S = 2).

use gps_core::weights::TriangleWeight;
use gps_core::TriadEstimates;
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_serve::ServeEngine;
use gps_stream::{gen, permuted};

struct Truth {
    triangles: f64,
    wedges: f64,
}

fn ground_truth(edges: &[Edge]) -> Truth {
    let g = CsrGraph::from_edges(edges);
    Truth {
        triangles: exact::triangle_count(&g) as f64,
        wedges: exact::wedge_count(&g) as f64,
    }
}

/// One full serving run: stream in, engine finished, **final live epoch**
/// estimates out (the same numbers a concurrent reader's `latest()` sees).
fn live_epoch_estimates(
    edges: &[Edge],
    capacity: usize,
    shards: usize,
    run: u64,
) -> TriadEstimates {
    let stream = permuted(edges, 9_000 + run);
    let mut serve = ServeEngine::new(capacity, TriangleWeight::default(), 400 + run, shards);
    let handle = serve.handle();
    serve.push_stream(stream);
    serve.finish();
    let epoch = handle.latest().expect("finish publishes a final epoch");
    assert_eq!(epoch.edges_seen, serve.pushed(), "final watermark is total");
    epoch.estimates
}

struct Coverage {
    tri_mean: f64,
    wedge_mean: f64,
    tri_hits: usize,
    wedge_hits: usize,
    runs: usize,
}

fn sweep(edges: &[Edge], capacity: usize, shards: usize, runs: usize, truth: &Truth) -> Coverage {
    let (mut tri_sum, mut wedge_sum) = (0.0, 0.0);
    let (mut tri_hits, mut wedge_hits) = (0, 0);
    for run in 0..runs {
        let est = live_epoch_estimates(edges, capacity, shards, run as u64);
        tri_sum += est.triangles.value;
        wedge_sum += est.wedges.value;
        let (lb, ub) = est.triangles.ci95();
        if (lb..=ub).contains(&truth.triangles) {
            tri_hits += 1;
        }
        let (lb, ub) = est.wedges.ci95();
        if (lb..=ub).contains(&truth.wedges) {
            wedge_hits += 1;
        }
    }
    Coverage {
        tri_mean: tri_sum / runs as f64,
        wedge_mean: wedge_sum / runs as f64,
        tri_hits,
        wedge_hits,
        runs,
    }
}

#[test]
fn live_epochs_are_unbiased_on_cliques_stream() {
    let edges = gen::collaboration(500, 420, (3, 6), 0.5, 11);
    let truth = ground_truth(&edges);
    assert!(truth.triangles > 500.0, "stream must be triangle-rich");
    let capacity = edges.len() / 4; // evictions: HT normalization active
    for shards in [2usize, 4] {
        let cov = sweep(&edges, capacity, shards, 48, &truth);
        assert!(
            (cov.tri_mean - truth.triangles).abs() / truth.triangles < 0.10,
            "S={shards}: triangle mean {} vs truth {}",
            cov.tri_mean,
            truth.triangles
        );
        assert!(
            (cov.wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
            "S={shards}: wedge mean {} vs truth {}",
            cov.wedge_mean,
            truth.wedges
        );
    }
}

#[test]
fn live_epochs_are_unbiased_on_er_stream() {
    let edges = gen::erdos_renyi(400, 3_200, 23);
    let truth = ground_truth(&edges);
    assert!(truth.triangles > 200.0);
    let capacity = edges.len() / 4;
    for shards in [2usize, 4] {
        let cov = sweep(&edges, capacity, shards, 48, &truth);
        assert!(
            (cov.tri_mean - truth.triangles).abs() / truth.triangles < 0.15,
            "S={shards}: triangle mean {} vs truth {}",
            cov.tri_mean,
            truth.triangles
        );
        assert!(
            (cov.wedge_mean - truth.wedges).abs() / truth.wedges < 0.10,
            "S={shards}: wedge mean {} vs truth {}",
            cov.wedge_mean,
            truth.wedges
        );
    }
}

#[test]
fn epoch_ci_coverage_holds_under_eviction() {
    // Mixed regime: per-shard sampling variance and coloring variance both
    // contribute. Nominal 95%; slack for the small-S empirical term.
    let edges = gen::collaboration(500, 420, (3, 6), 0.5, 11);
    let truth = ground_truth(&edges);
    let capacity = edges.len() / 4;
    for (shards, floor) in [(2usize, 0.60), (4, 0.75)] {
        let cov = sweep(&edges, capacity, shards, 48, &truth);
        let tri_cov = cov.tri_hits as f64 / cov.runs as f64;
        let wedge_cov = cov.wedge_hits as f64 / cov.runs as f64;
        assert!(
            tri_cov >= floor,
            "S={shards}: triangle CI coverage {tri_cov} below nominal-minus-slack {floor}"
        );
        assert!(
            wedge_cov >= floor,
            "S={shards}: wedge CI coverage {wedge_cov} below nominal-minus-slack {floor}"
        );
    }
}

#[test]
fn epoch_ci_coverage_under_full_retention_is_pure_coloring_term() {
    // Capacity ≥ stream per shard: conditional variances are exactly zero,
    // so any coverage at all is the between-shard term at work — the old
    // conditional intervals had width zero here and covered (essentially)
    // never. ER keeps monochromatic counts small and dispersed, the
    // hardest case for the 1- and 3-df empirical estimates.
    let edges = gen::erdos_renyi(400, 3_200, 29);
    let truth = ground_truth(&edges);
    for (shards, floor) in [(2usize, 0.55), (4, 0.70)] {
        let capacity = shards * edges.len(); // no shard can ever evict
        let cov = sweep(&edges, capacity, shards, 48, &truth);
        let tri_cov = cov.tri_hits as f64 / cov.runs as f64;
        assert!(
            tri_cov >= floor,
            "S={shards}: full-retention triangle coverage {tri_cov} below {floor} \
             (between-shard term not doing its job)"
        );
        // Zero-width intervals would make coverage ≈ 0; prove they are not.
        let est = live_epoch_estimates(&edges, capacity, shards, 999);
        assert!(
            est.triangles.variance > 0.0,
            "S={shards}: full retention must still report coloring variance"
        );
    }
}
