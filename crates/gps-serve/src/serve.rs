//! The serving engine and its query handles.

use crate::board::Board;
use crate::clock::{Clock, ClockMode};
use crate::epoch::EstimateEpoch;
use crate::scrape::ScrapeServer;
use gps_core::weights::EdgeWeight;
use gps_core::TriadEstimates;
use gps_engine::snapshot::SavedEngine;
use gps_engine::{EngineConfig, EngineHealth, EpochHook, FaultPlan, ShardedGps};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_telemetry::{EpochTrace, Registry, TelemetrySnapshot};
use std::net::SocketAddr;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// Serving-layer configuration: the wrapped engine's config plus the
/// query-side knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Configuration of the wrapped [`ShardedGps`] engine (including
    /// [`EngineConfig::epoch_every`], the publication cadence).
    pub engine: EngineConfig,
    /// Bounded per-subscription queue depth. Subscriptions are lossy when
    /// a subscriber lags: epochs are cumulative, so dropped intermediates
    /// are restated by the next delivered epoch.
    pub subscribe_depth: usize,
    /// Publication-gate deadline for graceful degradation. `None` (the
    /// default) publishes only *full* epochs — every shard merged — and a
    /// stalled or crashed shard simply freezes the epoch stream until it
    /// recovers. `Some(gate)` bounds how long readers can be starved:
    /// once the gate has elapsed, epochs publish from the shards that
    /// reported within the last `gate` — stamped degraded via
    /// [`EstimateEpoch::contributing`], with honestly widened variances —
    /// and recover to full epochs as soon as the missing shard reports
    /// again. Choose a gate comfortably above the expected inter-report
    /// gap ([`EngineConfig::epoch_every`] arrivals at your ingest rate),
    /// or a healthy-but-slow stream will be flagged degraded.
    pub gate_timeout: Option<Duration>,
    /// Time source for the gate and the bounded watermark waits.
    /// [`ClockMode::Wall`] (the default) is production behavior;
    /// [`ClockMode::Manual`] freezes time at 0 until
    /// [`ServeEngine::advance_clock`] moves it — deterministic tests and
    /// discrete-event harnesses drive every deadline explicitly.
    pub clock: ClockMode,
}

impl ServeConfig {
    /// Defaults: engine defaults ([`EngineConfig::new`]) plus a
    /// 16-epoch subscription queue and no publication gate (full epochs
    /// only).
    pub fn new(capacity: usize, shards: usize, seed: u64) -> Self {
        ServeConfig {
            engine: EngineConfig::new(capacity, shards, seed),
            subscribe_depth: 16,
            gate_timeout: None,
            clock: ClockMode::Wall,
        }
    }
}

/// A sharded GPS engine that *serves* its estimates while ingest runs:
/// every shard worker runs the paper's in-stream estimator (Algorithm 3)
/// over its substream, and the merged estimates — with honest `S > 1`
/// confidence intervals — are published as immutable, versioned
/// [`EstimateEpoch`]s that any number of [`QueryHandle`]s read without
/// ever stalling ingest.
///
/// ```
/// use gps_core::TriangleWeight;
/// use gps_serve::ServeEngine;
/// use gps_graph::Edge;
///
/// let mut serve = ServeEngine::new(64, TriangleWeight::default(), 42, 2);
/// let handle = serve.handle();
/// serve.push_stream([Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
/// serve.finish();
/// let epoch = handle.latest().expect("finish always publishes an epoch");
/// assert_eq!(epoch.edges_seen, 3);
/// let (lb, ub) = epoch.estimates.triangles.ci95();
/// assert!(lb <= epoch.estimates.triangles.value);
/// assert!(epoch.estimates.triangles.value <= ub);
/// ```
pub struct ServeEngine<W> {
    engine: ShardedGps<W>,
    board: Arc<Board>,
    subscribe_depth: usize,
    /// Running scrape endpoint, if started; stops when the engine drops.
    scrape: Option<ScrapeServer>,
}

impl<W: EdgeWeight + Clone + Send + 'static> ServeEngine<W> {
    /// Creates a serving engine with total budget `capacity` split across
    /// `shards` workers, on the default [`ServeConfig`].
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::new`].
    pub fn new(capacity: usize, weight_fn: W, seed: u64, shards: usize) -> Self {
        Self::with_config(ServeConfig::new(capacity, shards, seed), weight_fn)
    }

    /// Creates a serving engine from an explicit [`ServeConfig`].
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::with_config`].
    pub fn with_config(cfg: ServeConfig, weight_fn: W) -> Self {
        Self::build(cfg, weight_fn, None)
    }

    /// [`ServeEngine::with_config`] with a scripted [`FaultPlan`] injected
    /// into the wrapped engine — the serving-layer entry point of the
    /// deterministic chaos harness. The plan's panics, stalls, slowdowns,
    /// and checkpoint corruptions hit the shard workers exactly as in
    /// [`ShardedGps::with_estimation_and_faults`]; combined with
    /// [`ServeConfig::gate_timeout`] this is how the degraded-epoch path
    /// is driven under test.
    ///
    /// # Panics
    /// Same conditions as [`ShardedGps::with_config`].
    pub fn with_config_and_faults(cfg: ServeConfig, weight_fn: W, faults: FaultPlan) -> Self {
        Self::build(cfg, weight_fn, Some(faults))
    }

    /// Shared construction: one telemetry registry carries both the
    /// board's serve metrics and the engine's, so a single snapshot covers
    /// the whole stack. The board exists first (the epoch hook needs it),
    /// then the engine registers onto the same registry, and finally the
    /// engine's lost-arrivals counter is attached so epochs stamp it —
    /// launch-time reports racing the attach all carry zero loss (losses
    /// require pushed arrivals, which follow construction).
    fn build(cfg: ServeConfig, weight_fn: W, faults: Option<FaultPlan>) -> Self {
        let registry = Arc::new(Registry::new());
        let board = Arc::new(Board::with_registry(
            cfg.engine.shards,
            cfg.gate_timeout,
            Clock::new(cfg.clock),
            registry.clone(),
        ));
        let hook = Self::hook_for(&board, board.generation());
        let engine = ShardedGps::with_estimation_on_registry(
            cfg.engine,
            weight_fn,
            Some(hook),
            faults,
            registry,
        );
        board.attach_lost_counter(engine.lost_arrivals_counter());
        ServeEngine {
            engine,
            board,
            subscribe_depth: cfg.subscribe_depth,
            scrape: None,
        }
    }

    /// Resumes serving from a saved engine snapshot **onto an existing
    /// handle's board**: epoch versions continue monotonically from where
    /// the saved engine's final epoch left off, the watermark picks up at
    /// the saved stream position, and estimates continue from the restored
    /// samples. A snapshot saved by a serving engine carries the v2
    /// sections (in-stream accumulators and per-edge covariance ledgers),
    /// so the resumed estimators continue **bit-exactly** where the saved
    /// ones stopped; a v1 (plain) snapshot falls back to re-seeding each
    /// estimator from its shard's post-stream estimate
    /// (`InStreamEstimator::from_sampler`). The publication gate
    /// ([`ServeConfig::gate_timeout`]) carries over from the board's
    /// original configuration and is re-armed, so the restored workers get
    /// a fresh grace window before any degraded epoch can publish.
    /// Stragglers of the previous engine (e.g. after a drop without
    /// finish) cannot publish into the resumed board — reopening bumps the
    /// accepted report generation. Subscriptions ended when the previous
    /// engine finished; re-subscribe on the handle.
    ///
    /// `epoch_every` is the resumed publication cadence — the snapshot
    /// does not record it, so pass the one your `ServeConfig` used
    /// ([`gps_engine::DEFAULT_EPOCH_EVERY`] is the default-config value).
    ///
    /// # Panics
    /// Panics if the handle's previous engine has not finished, or on an
    /// inconsistent snapshot (see [`SavedEngine::into_engine`]).
    pub fn resume(
        saved: SavedEngine,
        weight_fn: W,
        backend: BackendKind,
        epoch_every: u64,
        handle: &QueryHandle,
    ) -> Self {
        let board = handle.board.clone();
        let generation = board.reopen(saved.shards.len());
        // Resume onto the board's registry: idempotent registration hands
        // the restored engine the same counters, so the telemetry ledgers
        // stay cumulative across the snapshot/restore cycle.
        let engine = saved.into_serving_engine_on_registry(
            weight_fn,
            backend,
            Some(Self::hook_for(&board, generation)),
            epoch_every,
            board.telemetry_registry(),
        );
        board.attach_lost_counter(engine.lost_arrivals_counter());
        ServeEngine {
            engine,
            board,
            subscribe_depth: handle.subscribe_depth,
            scrape: None,
        }
    }

    fn hook_for(board: &Arc<Board>, generation: u64) -> EpochHook {
        let board = board.clone();
        Arc::new(move |report| board.publish_report(generation, report))
    }

    /// A cheap, cloneable query handle onto this engine's epoch stream.
    /// Handles stay valid after the engine finishes (they answer from the
    /// final epoch) and across [`ServeEngine::resume`].
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            board: self.board.clone(),
            subscribe_depth: self.subscribe_depth,
        }
    }

    /// Offers one stream arrival (see [`ShardedGps::push`]).
    pub fn push(&mut self, edge: Edge) {
        self.engine.push(edge);
    }

    /// Feeds a pre-batched chunk (see [`ShardedGps::push_batch`]).
    pub fn push_batch(&mut self, batch: &[Edge]) {
        self.engine.push_batch(batch);
    }

    /// Feeds every edge of an iterator.
    pub fn push_stream<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        self.engine.push_stream(edges);
    }

    /// Drains and joins the engine workers, then closes the board: one
    /// final epoch (carrying every shard's final state) is published,
    /// watermark waiters wake, and subscriptions end. Idempotent.
    pub fn finish(&mut self) {
        self.engine.finish();
        self.board.close();
    }

    /// Merged post-stream estimates (finishing first if needed); see
    /// [`ShardedGps::estimate`].
    pub fn estimate(&mut self) -> TriadEstimates {
        self.finish();
        self.engine.estimate()
    }

    /// Merged in-stream estimates — identical to the final epoch's
    /// estimates (finishing first if needed).
    pub fn estimate_in_stream(&mut self) -> TriadEstimates {
        self.finish();
        self.engine.estimate_in_stream()
    }

    /// Saves the engine snapshot (finishing + closing the board first);
    /// see [`ShardedGps::save`]. Resume later with [`ServeEngine::resume`].
    pub fn save<Out: std::io::Write>(
        &mut self,
        writer: Out,
    ) -> Result<(), gps_core::persist::PersistError> {
        self.finish();
        self.engine.save(writer)
    }

    /// Saves to a file path. See [`ServeEngine::save`].
    pub fn save_file<P: AsRef<std::path::Path>>(
        &mut self,
        path: P,
    ) -> Result<(), gps_core::persist::PersistError> {
        self.finish();
        self.engine.save_file(path)
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ShardedGps<W> {
        &self.engine
    }

    /// Fault-tolerance ledger of the wrapped engine: per-shard incidents
    /// (panics, stalls, corrupt checkpoints, restart counts) and the total
    /// arrivals lost to crash windows. `health().degraded()` is the
    /// serving-side signal that estimates carry loss-widened intervals —
    /// distinct from [`EstimateEpoch::degraded`], which flags a *single
    /// epoch* merged without every shard.
    pub fn health(&self) -> &EngineHealth {
        self.engine.health()
    }

    /// Snapshot of every metric and event across the serving stack: the
    /// wrapped engine's ingest/checkpoint/restart counters, the per-shard
    /// sampler counters, and the board's publication metrics all live on
    /// one shared registry. Torn-read-free (each histogram is copied under
    /// its seqlock) and wall-clock-free, so `Stability::Stable` metrics of
    /// a finished same-seed run are bit-identical — see
    /// [`TelemetrySnapshot::stable`] and `docs/observability.md`.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.board.telemetry()
    }

    /// The shared telemetry registry itself, for callers that want to
    /// register additional metrics alongside the stack's own.
    pub fn telemetry_registry(&self) -> Arc<Registry> {
        self.board.telemetry_registry()
    }

    /// Arrivals pushed so far (stream position `t` at the producer; the
    /// published watermark trails this by at most the in-flight batches).
    pub fn pushed(&self) -> u64 {
        self.engine.pushed()
    }

    /// Shard count `S`.
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Whether [`ServeEngine::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.engine.is_finished()
    }

    /// Advances a [`ClockMode::Manual`] board clock by `d` and wakes every
    /// blocked waiter, so expired gate and wait deadlines are observed
    /// immediately. Returns `false` (and moves nothing) on the wall clock.
    /// This is the test-side lever of the deterministic clock hook; see
    /// [`ServeConfig::clock`].
    pub fn advance_clock(&self, d: Duration) -> bool {
        self.board.advance_clock(d)
    }

    /// Starts (or replaces) the telemetry scrape endpoint on `addr` —
    /// e.g. `"127.0.0.1:0"` for an ephemeral loopback port — and returns
    /// the bound address. The endpoint serves `GET /metrics` (text
    /// exposition), `/health` (JSON summary with the degraded bitmask),
    /// and `/trace/<version>` (flight-recorder JSON); see
    /// `docs/observability.md` for the exact shapes. It runs on its own
    /// thread over the shared board, keeps answering after
    /// [`ServeEngine::finish`] (handles do too), and stops — thread
    /// joined — when the engine drops or [`ServeEngine::stop_scrape`]
    /// runs.
    pub fn start_scrape(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let server = ScrapeServer::bind(self.board.clone(), addr)?;
        let bound = server.local_addr();
        self.scrape = Some(server);
        Ok(bound)
    }

    /// Address of the running scrape endpoint, if one was started.
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::local_addr)
    }

    /// Stops the scrape endpoint and joins its thread. Idempotent; also
    /// implied by dropping the engine.
    pub fn stop_scrape(&mut self) {
        self.scrape = None;
    }
}

impl<W> Drop for ServeEngine<W> {
    /// An abandoned serving engine must not leave waiters blocked: close
    /// the board (workers may still be draining, but no further epochs
    /// will come once the feed channels drop).
    fn drop(&mut self) {
        self.board.close();
    }
}

/// A cloneable, thread-safe reader onto a [`ServeEngine`]'s epoch stream.
#[derive(Clone)]
pub struct QueryHandle {
    board: Arc<Board>,
    subscribe_depth: usize,
}

impl QueryHandle {
    /// The latest published epoch (`None` only before the engine's workers
    /// have started reporting). Lock-free: never blocks ingest or other
    /// readers, and retries only while racing a concurrent publication.
    pub fn latest(&self) -> Option<EstimateEpoch> {
        self.board.latest()
    }

    /// Blocks until an epoch whose watermark covers at least `n` arrivals
    /// is published, and returns it; `None` if the engine finishes without
    /// the stream ever reaching `n` arrivals.
    pub fn wait_for_edges(&self, n: u64) -> Option<EstimateEpoch> {
        self.board.wait_for_edges(n)
    }

    /// [`QueryHandle::wait_for_edges`] with a deadline: returns the first
    /// epoch whose watermark covers `n` arrivals, or `None` once `timeout`
    /// elapses or the engine finishes below the watermark — whichever
    /// comes first. The bounded wait is what a serving tier should use
    /// against a possibly-degraded engine: a crashed or stalled shard can
    /// delay the watermark indefinitely, and this never hangs with it.
    pub fn wait_for_edges_timeout(&self, n: u64, timeout: Duration) -> Option<EstimateEpoch> {
        self.board.wait_for_edges_timeout(n, timeout)
    }

    /// Subscribes to the epoch stream over a bounded queue: the
    /// subscription is primed with the current epoch, receives subsequent
    /// epochs in version order, drops intermediates while the subscriber
    /// lags (epochs are cumulative — the next delivery restates them), and
    /// ends when the engine finishes. The **final** epoch is never lost to
    /// lag: at end of stream the subscription drains the board's latest
    /// epoch directly if the queue dropped it. `None` if the engine has
    /// already finished.
    pub fn subscribe(&self) -> Option<EpochSubscription> {
        self.board
            .subscribe(self.subscribe_depth)
            .map(|rx| EpochSubscription {
                rx,
                board: self.board.clone(),
                last_version: 0,
                drained: false,
            })
    }

    /// Snapshot of every metric and event on the serving stack's shared
    /// registry (see [`ServeEngine::telemetry`]); handles keep answering
    /// after the engine finishes and across [`ServeEngine::resume`].
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.board.telemetry()
    }

    /// Whether the producing engine has finished (and not been resumed).
    pub fn is_closed(&self) -> bool {
        self.board.is_closed()
    }

    /// The provenance trace of epoch `version`, if it is still in the
    /// flight recorder: the complete per-stage pipeline timeline
    /// (arrival batch → shard report → gate wait → merge → seqlock
    /// publish → first observation), per-shard report marks and skew,
    /// and the degraded/partial-merge cause code. Timestamps come from
    /// the board clock, so manual-clock runs pin traces bit-identically.
    pub fn trace(&self, version: u64) -> Option<EpochTrace> {
        self.board.trace(version)
    }

    /// The last `n` retained provenance traces, oldest first.
    pub fn recent_traces(&self, n: usize) -> Vec<EpochTrace> {
        self.board.recent_traces(n)
    }

    /// Traces evicted from the bounded flight recorder so far (the
    /// recorder is lossy-counted, like the event ring).
    pub fn traces_lost(&self) -> u64 {
        self.board.traces_lost()
    }

    /// Advances a [`ClockMode::Manual`] board clock by `d`; see
    /// [`ServeEngine::advance_clock`] (the board — and so the clock — is
    /// shared by every handle and the engine). `false` on the wall clock.
    pub fn advance_clock(&self, d: Duration) -> bool {
        self.board.advance_clock(d)
    }
}

/// A bounded, lossy-on-lag subscription to the epoch stream (see
/// [`QueryHandle::subscribe`]). Iterate it, or call
/// [`EpochSubscription::recv`] directly. Intermediate epochs may be
/// dropped while the subscriber lags, but the stream never *ends* on a
/// stale epoch: when the channel closes, the board's latest epoch is
/// delivered once more if the queue had dropped it.
pub struct EpochSubscription {
    rx: Receiver<EstimateEpoch>,
    board: Arc<Board>,
    last_version: u64,
    drained: bool,
}

impl EpochSubscription {
    /// Blocks for the next epoch; `None` once the engine has finished and
    /// every delivery — including the guaranteed final epoch — is drained.
    pub fn recv(&mut self) -> Option<EstimateEpoch> {
        match self.rx.recv() {
            Ok(epoch) => {
                self.last_version = epoch.version;
                self.board.observe(&epoch);
                Some(epoch)
            }
            Err(_) => self.final_drain(),
        }
    }

    /// Non-blocking poll for an already-queued epoch (or the guaranteed
    /// final epoch once the stream has ended).
    pub fn try_recv(&mut self) -> Option<EstimateEpoch> {
        match self.rx.try_recv() {
            Ok(epoch) => {
                self.last_version = epoch.version;
                self.board.observe(&epoch);
                Some(epoch)
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => self.final_drain(),
        }
    }

    /// Channel closed: hand out the board's latest epoch if the bounded
    /// queue dropped it (a lagging subscriber must not end on a stale
    /// watermark), exactly once.
    fn final_drain(&mut self) -> Option<EstimateEpoch> {
        if self.drained {
            return None;
        }
        self.drained = true;
        self.board
            .latest()
            .filter(|epoch| epoch.version > self.last_version)
    }
}

impl Iterator for EpochSubscription {
    type Item = EstimateEpoch;

    fn next(&mut self) -> Option<EstimateEpoch> {
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::{TriangleWeight, UniformWeight};

    fn clique_chunks(n: u32) -> Vec<Edge> {
        let mut edges = vec![];
        for base in (0..n).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        edges
    }

    #[test]
    fn final_epoch_matches_engine_in_stream_estimate() {
        let mut serve = ServeEngine::new(60, TriangleWeight::default(), 9, 3);
        let handle = serve.handle();
        serve.push_stream(clique_chunks(100));
        let merged = serve.estimate_in_stream();
        let epoch = handle.latest().unwrap();
        assert_eq!(
            epoch.estimates.triangles.value.to_bits(),
            merged.triangles.value.to_bits()
        );
        assert_eq!(
            epoch.estimates.triangles.variance.to_bits(),
            merged.triangles.variance.to_bits()
        );
        assert_eq!(
            epoch.estimates.wedges.value.to_bits(),
            merged.wedges.value.to_bits()
        );
        assert_eq!(epoch.edges_seen, serve.pushed());
        assert_eq!(epoch.shards, 3);
        assert!(handle.is_closed());
    }

    #[test]
    fn wait_for_edges_observes_mid_stream_progress() {
        let edges = clique_chunks(200);
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch: 32,
                    epoch_every: 64,
                    ..EngineConfig::new(100, 2, 4)
                },
                subscribe_depth: 16,
                gate_timeout: None,
                clock: ClockMode::Wall,
            },
            UniformWeight,
        );
        let handle = serve.handle();
        let half = edges.len() as u64 / 2;
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait_for_edges(half))
        };
        serve.push_stream(edges.iter().copied());
        serve.finish();
        let epoch = waiter.join().unwrap().expect("stream exceeds watermark");
        assert!(epoch.edges_seen >= half);
        // Waiting past the stream end must not hang.
        assert!(handle.wait_for_edges(u64::MAX).is_none());
    }

    #[test]
    fn subscription_sees_versions_in_order_and_ends_at_finish() {
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch: 16,
                    epoch_every: 32,
                    ..EngineConfig::new(50, 2, 7)
                },
                subscribe_depth: 1024,
                gate_timeout: None,
                clock: ClockMode::Wall,
            },
            UniformWeight,
        );
        let handle = serve.handle();
        let sub = handle.subscribe().expect("engine is live");
        let collector = std::thread::spawn(move || sub.collect::<Vec<_>>());
        serve.push_stream(clique_chunks(150));
        serve.finish();
        let epochs = collector.join().unwrap();
        assert!(!epochs.is_empty());
        assert!(
            epochs.windows(2).all(|w| w[0].version < w[1].version),
            "epoch versions must be strictly increasing"
        );
        assert!(epochs
            .windows(2)
            .all(|w| w[0].edges_seen <= w[1].edges_seen));
        assert_eq!(epochs.last().unwrap().edges_seen, serve.pushed());
        assert!(handle.subscribe().is_none(), "closed engine: no new subs");
    }

    #[test]
    fn lagging_subscriber_still_receives_the_final_epoch() {
        // Depth-1 queue, never drained during ingest: intermediates drop,
        // but the stream must end on the true final epoch, not a stale one.
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch: 16,
                    epoch_every: 32,
                    ..EngineConfig::new(50, 2, 19)
                },
                subscribe_depth: 1,
                gate_timeout: None,
                clock: ClockMode::Wall,
            },
            UniformWeight,
        );
        let handle = serve.handle();
        let sub = handle.subscribe().expect("live engine");
        serve.push_stream(clique_chunks(400));
        serve.finish();
        let epochs: Vec<EstimateEpoch> = sub.collect();
        assert!(epochs.windows(2).all(|w| w[0].version < w[1].version));
        assert_eq!(
            epochs.last().unwrap().edges_seen,
            serve.pushed(),
            "subscription must not end on a stale watermark"
        );
    }

    #[test]
    fn concurrent_readers_never_block_ingest_or_each_other() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch: 64,
                    epoch_every: 128,
                    ..EngineConfig::new(200, 4, 11)
                },
                subscribe_depth: 8,
                gate_timeout: None,
                clock: ClockMode::Wall,
            },
            TriangleWeight::default(),
        );
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = serve.handle();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    let mut last = 0u64;
                    // ordering: Relaxed — stop flag only ends the loop;
                    // epochs synchronize through the board, not this flag.
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(e) = handle.latest() {
                            assert!(e.version >= last);
                            last = e.version;
                            reads += 1;
                        }
                    }
                    reads
                })
            })
            .collect();
        serve.push_stream(clique_chunks(1000));
        serve.finish();
        // ordering: Relaxed — shutdown signal; readers' final state was
        // already published via the board before finish() returned.
        stop.store(true, Ordering::Relaxed);
        let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(reads > 0);
        assert_eq!(serve.handle().latest().unwrap().edges_seen, serve.pushed());
    }

    #[test]
    fn dropping_an_unfinished_engine_releases_waiters() {
        let serve = ServeEngine::new(16, UniformWeight, 1, 2);
        let handle = serve.handle();
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait_for_edges(u64::MAX))
        };
        drop(serve);
        assert!(waiter.join().unwrap().is_none());
        assert!(handle.is_closed());
    }

    #[test]
    fn stalled_shard_degrades_epochs_then_recovers_to_full() {
        // Graceful-degradation acceptance path, on the deterministic
        // clock: shard 1 parks for 400 ms of *wall* time at its first
        // arrival (thread scheduling scaffolding only), while the 50 ms
        // publication gate runs on frozen *virtual* time. The test first
        // waits for the launch-time full epoch — proof both shards'
        // initial reports are on the board — then advances virtual time
        // past the gate, aging shard 1's report out of the liveness
        // window. Every epoch shard 0 publishes while shard 1 is parked is
        // then provably degraded (no sleep-tuned margin between gate and
        // scheduling: the gate can neither expire early nor late). When
        // the stall ends, shard 1 drains, reports at the same virtual
        // instant, and the stream must recover to full epochs.
        let cfg = ServeConfig {
            engine: EngineConfig {
                batch: 8,
                epoch_every: 16,
                ..EngineConfig::new(60, 2, 5)
            },
            subscribe_depth: 4096,
            gate_timeout: Some(Duration::from_millis(50)),
            clock: ClockMode::Manual,
        };
        let faults = FaultPlan::new().stall_at(1, 1, 400);
        let mut serve = ServeEngine::with_config_and_faults(cfg, UniformWeight, faults);
        let handle = serve.handle();
        let sub = handle.subscribe().expect("live engine");
        // Launch reports from both shards produce the first (full) epoch.
        handle.wait_for_edges(0).expect("launch epoch");
        // Virtual time now jumps past the gate: both standing reports age
        // out, and only shards reporting *after* this instant are live.
        assert!(serve.advance_clock(Duration::from_millis(51)));
        serve.push_stream(clique_chunks(400));
        serve.finish();
        let epochs: Vec<EstimateEpoch> = sub.collect();
        assert!(
            epochs
                .iter()
                .any(|e| e.degraded() && e.contributing == 0b01),
            "gate must publish shard-0-only epochs while shard 1 stalls"
        );
        let last = epochs.last().expect("finish publishes a final epoch");
        assert!(
            !last.degraded(),
            "after recovery the epoch stream must be full again"
        );
        assert_eq!(last.contributing, 0b11);
        assert_eq!(last.edges_seen, serve.pushed());
        // A stall is a delay, not a failure: no incident, no lost arrivals.
        assert!(!serve.health().degraded());
        assert_eq!(last.lost_arrivals, 0, "stalls lose nothing");
        // The degraded stretch is visible in the shared telemetry: gate
        // expiry and degraded-epoch counters moved, and the transition
        // events landed in the ring.
        let snap = serve.telemetry();
        assert_eq!(snap.counter_value("gps_serve_gate_expiries_total"), Some(1));
        assert!(
            snap.counter_value("gps_serve_degraded_epochs_total")
                .unwrap()
                >= 1
        );
        let kinds: Vec<_> = snap.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&gps_telemetry::EventKind::GateExpiry));
        assert!(kinds.contains(&gps_telemetry::EventKind::DegradedEpoch));
        assert!(kinds.contains(&gps_telemetry::EventKind::EpochRecovered));
    }

    #[test]
    fn telemetry_spans_engine_and_serve_layers_on_one_registry() {
        let mut serve = ServeEngine::with_config(
            ServeConfig {
                engine: EngineConfig {
                    batch: 16,
                    epoch_every: 32,
                    ..EngineConfig::new(50, 2, 7)
                },
                subscribe_depth: 16,
                gate_timeout: None,
                clock: ClockMode::Manual,
            },
            TriangleWeight::default(),
        );
        let handle = serve.handle();
        serve.push_stream(clique_chunks(150));
        serve.finish();
        let snap = serve.telemetry();
        // Engine-side: every pushed arrival was consumed in a batch.
        assert_eq!(
            snap.counter_value("gps_engine_arrivals_total"),
            Some(serve.pushed())
        );
        assert_eq!(snap.counter_value("gps_engine_restarts_total"), Some(0));
        assert_eq!(
            snap.counter_value("gps_engine_lost_arrivals_total"),
            Some(0)
        );
        // Sampler-side: the final harvest saw every arrival act.
        let inserts = snap.counter_value("gps_sampler_inserts_total").unwrap();
        assert!(inserts > 0, "a non-empty stream inserts something");
        // Serve-side: the board published at least launch + final epochs,
        // and the staleness histogram recorded one value per publication
        // (all zero on the frozen manual clock: bucket 0 holds them all).
        let epochs = snap
            .counter_value("gps_serve_epochs_published_total")
            .unwrap();
        assert!(epochs >= 1);
        let h = snap
            .histogram_sample("gps_serve_publish_staleness_ns")
            .unwrap();
        assert_eq!(h.count, epochs);
        assert_eq!((h.sum, h.buckets[0]), (0, epochs));
        // The handle reads the same registry, before and after finish.
        assert_eq!(handle.telemetry(), snap);
        // Renderers cover every registered metric.
        let text = snap.to_text();
        for name in [
            "gps_engine_arrivals_total",
            "gps_sampler_inserts_total",
            "gps_serve_publish_staleness_ns_count",
        ] {
            assert!(text.contains(name), "missing {name} in exposition");
        }
    }
}
