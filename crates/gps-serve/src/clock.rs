//! Deterministic time source for the board's gate and deadline logic.
//!
//! The publication gate and the bounded watermark wait are the only places
//! in the serving layer that consult time, and they only ever *compare*
//! timestamps — time never feeds an estimate value. That makes the clock
//! swappable: production uses the monotonic wall clock, while tests (and
//! discrete-event harnesses) drive a **manual** clock whose "now" moves
//! only when the test says so, turning every gate-expiry and
//! timeout-expiry branch into a deterministic, sleep-free assertion.
//!
//! All timestamps are u64 nanoseconds since the clock's creation, so the
//! board's deadline arithmetic is identical under either mode. This module
//! is the one sanctioned `Instant::now` site in the crate — the
//! `no-wallclock-in-determinism` lint in gps-analyze knows it by path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which time source a [`ServeEngine`](crate::ServeEngine)'s board runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic wall clock ([`Instant`]); the production default.
    #[default]
    Wall,
    /// Virtual clock starting at 0 ns and advancing only via
    /// [`ServeEngine::advance_clock`](crate::ServeEngine::advance_clock) /
    /// [`QueryHandle::advance_clock`](crate::QueryHandle::advance_clock).
    /// Blocking waits under this mode park until an epoch, a close, or a
    /// clock advance wakes them — nothing expires on its own.
    Manual,
}

/// The board's time source (see the [module docs](self)).
pub(crate) enum Clock {
    /// Anchored wall clock: now = elapsed since the anchor.
    Wall(Instant),
    /// Virtual nanoseconds, advanced explicitly.
    Manual(AtomicU64),
}

impl Clock {
    pub(crate) fn new(mode: ClockMode) -> Self {
        match mode {
            ClockMode::Wall => Clock::Wall(Instant::now()),
            ClockMode::Manual => Clock::Manual(AtomicU64::new(0)),
        }
    }

    /// Nanoseconds since the clock started. Monotone in both modes.
    pub(crate) fn now_ns(&self) -> u64 {
        match self {
            // Saturating: u64 ns covers ~584 years of uptime.
            Clock::Wall(anchor) => u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX),
            // ordering: Relaxed — readers re-derive deadlines on every
            // wakeup; the board's mutex orders time reads against the
            // state they gate.
            Clock::Manual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Moves a manual clock forward by `d`. Returns whether anything moved
    /// (a wall clock cannot be steered and reports `false`).
    pub(crate) fn advance(&self, d: Duration) -> bool {
        match self {
            Clock::Wall(_) => false,
            Clock::Manual(ns) => {
                // ordering: Relaxed — see now_ns; the caller notifies the
                // board's condvar after advancing.
                ns.fetch_add(duration_ns(d), Ordering::Relaxed);
                true
            }
        }
    }

    /// Whether blocking waits must rely on explicit wakeups (manual mode)
    /// instead of timed condvar waits.
    pub(crate) fn is_manual(&self) -> bool {
        matches!(self, Clock::Manual(_))
    }
}

/// `Duration` → saturating u64 nanoseconds (the board's deadline unit).
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = Clock::new(ClockMode::Manual);
        assert_eq!(clock.now_ns(), 0);
        assert!(clock.advance(Duration::from_millis(5)));
        assert_eq!(clock.now_ns(), 5_000_000);
        assert!(clock.is_manual());
    }

    #[test]
    fn wall_clock_refuses_steering_and_runs_forward() {
        let clock = Clock::new(ClockMode::Wall);
        assert!(!clock.advance(Duration::from_secs(1)));
        assert!(!clock.is_manual());
        let a = clock.now_ns();
        assert!(clock.now_ns() >= a, "monotone");
    }

    #[test]
    fn duration_conversion_saturates() {
        assert_eq!(duration_ns(Duration::from_nanos(7)), 7);
        assert_eq!(duration_ns(Duration::MAX), u64::MAX);
    }
}
