//! # gps-serve — concurrent live queries over the sharded GPS engine
//!
//! The `gps-engine` crate scales *ingest*; this crate adds the missing
//! *query* side for the paper's continuous-monitoring setting: a
//! [`ServeEngine`] runs the in-stream snapshot estimator (paper
//! Algorithm 3) inside every engine worker, periodically merges the
//! per-shard estimates, and publishes the result as an immutable,
//! monotonically-versioned [`EstimateEpoch`]. Any number of reader threads
//! hold [`QueryHandle`]s and get consistent answers **while ingest
//! continues** — the produce and query sides never share a lock.
//!
//! ## How an epoch is made
//!
//! 1. Each shard worker owns an `InStreamEstimator` over its substream and
//!    reports `(arrivals, estimates)` every
//!    [`EngineConfig::epoch_every`](gps_engine::EngineConfig::epoch_every)
//!    arrivals (plus once at start and once at drain end).
//! 2. The report lands on the epoch board: under a mutex contended only by
//!    the `S` workers, the per-shard snapshots are merged with
//!    [`TriadEstimates::merged_colored`](gps_core::TriadEstimates::merged_colored)
//!    — strata sum, monochromacy rescale, and for `S > 1` the
//!    **between-shard variance term**, so epoch confidence intervals are
//!    honest about the coloring randomness rather than conditioned on the
//!    partition.
//! 3. The merged epoch is written into a seqlock cell. [`QueryHandle::latest`]
//!    reads it lock-free — no reader ever blocks a worker, a stampede of
//!    readers never stalls ingest, and a torn read is impossible (the
//!    version check detects racing publications and retries).
//!
//! Blocking consumption is layered on top: [`QueryHandle::wait_for_edges`]
//! parks until the watermark covers a stream position, and
//! [`QueryHandle::subscribe`] delivers the epoch stream over a bounded,
//! lossy-on-lag queue (epochs are cumulative, so a dropped intermediate is
//! restated by the next delivery).
//!
//! ## Observability
//!
//! The stack shares one `gps-telemetry` registry: the engine registers its
//! ingest/checkpoint/restart counters on it, the board adds the serve-side
//! publication metrics (epochs published, degraded epochs, gate expiries,
//! subscriber lag drops, and a watermark-staleness histogram keyed off the
//! board clock — [`ClockMode::Manual`] pins its exact contents in tests),
//! and [`ServeEngine::telemetry`] / [`QueryHandle::telemetry`] snapshot it
//! all torn-read-free. Every epoch also stamps the engine's lost-arrivals
//! ledger ([`EstimateEpoch::lost_arrivals`]), so a degraded epoch is
//! self-describing. Every publication also records a per-stage provenance
//! trace (arrival batch → shard report → gate wait → merge → seqlock
//! publish → first observation) into a bounded flight recorder, queried
//! with [`QueryHandle::trace`], and [`ServeEngine::start_scrape`] serves
//! `/metrics`, `/health`, and `/trace/<version>` over loopback HTTP. The
//! metric, event, and trace-stage catalogs live in `docs/observability.md`.
//!
//! ## Consistency model
//!
//! An epoch merges each shard's *latest report*, so its watermark
//! (`edges_seen`) trails the producer by at most the in-flight batches
//! plus the epoch cadence — bounded staleness, measured by the `serve`
//! section of the benchmark baseline. Within one epoch the bundle is
//! internally consistent (triangles, wedges, covariance and clustering all
//! derive from the same merge), and versions are strictly monotone —
//! including across engine snapshot/restore ([`ServeEngine::resume`]
//! continues publishing into the same board).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod board;
mod clock;
mod epoch;
mod scrape;
mod serve;

pub use clock::ClockMode;
pub use epoch::EstimateEpoch;
// Trace types cross this crate's public API (`QueryHandle::trace`), so
// re-export them for callers that don't depend on gps-telemetry directly.
pub use gps_telemetry::{EpochTrace, StageSpan, TraceCause, TraceMark};
pub use serve::{EpochSubscription, QueryHandle, ServeConfig, ServeEngine};
