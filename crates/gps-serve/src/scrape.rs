//! The std-only telemetry scrape endpoint: a tiny `TcpListener` HTTP
//! responder over the serving stack's shared registry and flight
//! recorder.
//!
//! Three paths, all `GET`, all `Connection: close`:
//!
//! - `/metrics` — the Prometheus-style text exposition
//!   ([`gps_telemetry::TelemetrySnapshot::to_text`]).
//! - `/health` — a one-object JSON summary: board liveness, the latest
//!   epoch's identity fields, the degraded bitmask (configured shards the
//!   epoch did *not* merge), and the engine's loss/restart ledgers read
//!   from the shared registry.
//! - `/trace/<version>` — the epoch's provenance trace from the flight
//!   recorder ([`gps_telemetry::EpochTrace::to_json`]), `404` once
//!   evicted.
//!
//! The responder is deliberately minimal — one accept loop, bounded
//! request reads, no keep-alive — because its job is to make the existing
//! telemetry *scrapeable*, not to be a web server. It runs on its own
//! thread and is lifecycle-tied to the [`crate::ServeEngine`] that
//! started it: dropping the engine (or starting a replacement endpoint)
//! stops the loop and joins the thread. Nothing here reads a wall clock;
//! the only time source is the board's clock hook, so traces served over
//! HTTP are the same bytes a manual-clock test pins.

use crate::board::Board;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop dozes when no connection is pending. Scrapes
/// are seconds apart in practice; 2 ms keeps shutdown latency and idle
/// cost both negligible.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Per-connection read budget: request line + headers. Anything larger
/// than this is not a scrape.
const MAX_REQUEST_BYTES: usize = 4096;

/// A running scrape endpoint (see [module docs](self)). Dropping it
/// stops the accept loop and joins the serving thread.
pub(crate) struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts the accept loop over `board`.
    pub(crate) fn bind(board: Arc<Board>, addr: &str) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the loop can notice the stop flag; the
        // poll interval bounds both shutdown latency and idle wakeups.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("gps-scrape".into())
            .spawn(move || accept_loop(&listener, &board, &flag))?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the ephemeral port when bound to port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        // ordering: Relaxed — plain shutdown flag; the accept loop reads
        // it between connections and no data is published through it.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, board: &Arc<Board>, stop: &AtomicBool) {
    // ordering: Relaxed — see `ScrapeServer::drop`.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A misbehaving client only fails its own connection.
                let _ = serve_connection(stream, board);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (connection reset mid-handshake):
            // back off and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, board: &Board) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = route(board, &path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request headers (or the byte budget) and
/// returns the request-line path; anything unparseable routes to 404.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // A slow client hitting the read timeout still gets whatever
            // routing its bytes so far allow (typically a 404).
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return Ok(String::new());
    }
    Ok(path.to_string())
}

/// Maps a request path to `(status, content type, body)`.
fn route(board: &Board, path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            board.telemetry().to_text(),
        ),
        "/health" => ("200 OK", "application/json", health_json(board)),
        _ => {
            if let Some(version) = path.strip_prefix("/trace/") {
                if let Ok(version) = version.parse::<u64>() {
                    if let Some(trace) = board.trace(version) {
                        return ("200 OK", "application/json", trace.to_json());
                    }
                    return (
                        "404 Not Found",
                        "application/json",
                        format!("{{\"error\":\"trace not retained\",\"version\":{version}}}"),
                    );
                }
            }
            (
                "404 Not Found",
                "application/json",
                "{\"error\":\"unknown path\"}".to_string(),
            )
        }
    }
}

/// The `/health` body: board liveness, latest-epoch identity, the
/// degraded bitmask, and the engine ledgers from the shared registry.
fn health_json(board: &Board) -> String {
    let snap = board.telemetry();
    let counter = |name: &str| snap.counter_value(name).unwrap_or(0);
    let latest = board.latest();
    let (version, edges_seen, shards, contributing) = latest
        .map(|e| (e.version, e.edges_seen, e.shards, e.contributing))
        .unwrap_or((0, 0, 0, 0));
    let full = if shards >= 64 {
        u64::MAX
    } else {
        (1u64 << shards) - 1
    };
    let degraded_mask = full & !contributing;
    format!(
        "{{\"closed\":{},\"version\":{},\"edges_seen\":{},\"shards\":{},\
         \"contributing\":{},\"degraded\":{},\"degraded_mask\":{},\
         \"lost_arrivals\":{},\"restarts\":{},\"epochs_published\":{},\
         \"degraded_epochs\":{},\"gate_expiries\":{},\"traces_lost\":{},\"events_lost\":{}}}",
        board.is_closed(),
        version,
        edges_seen,
        shards,
        contributing,
        degraded_mask != 0,
        degraded_mask,
        counter("gps_engine_lost_arrivals_total"),
        counter("gps_engine_restarts_total"),
        counter("gps_serve_epochs_published_total"),
        counter("gps_serve_degraded_epochs_total"),
        counter("gps_serve_gate_expiries_total"),
        board.traces_lost(),
        snap.events_lost,
    )
}
