//! The epoch board: merges per-shard reports into published epochs and
//! services blocking queries and subscriptions.
//!
//! The board is the rendezvous between the engine's worker threads (which
//! deliver [`ShardReport`]s through the epoch hook) and any number of
//! reader threads holding [`QueryHandle`]s. Workers merge under a mutex —
//! contended only among the `S` workers, once per epoch cadence — and
//! publish the merged result into the lock-free [`EpochCell`], so the
//! read path (`latest()`) never touches the mutex at all.
//!
//! [`QueryHandle`]: crate::QueryHandle

use crate::clock::{duration_ns, Clock};
use crate::epoch::{EpochCell, EstimateEpoch};
use gps_core::{Estimate, TriadEstimates};
use gps_engine::ShardReport;
use gps_telemetry::{
    Counter, EpochTrace, Event, EventKind, FlightRecorder, Histogram, Registry, Stability,
    TelemetrySnapshot, TraceCause,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn zero_triad() -> TriadEstimates {
    TriadEstimates::from_parts(Estimate::exact(0.0), Estimate::exact(0.0), 0.0)
}

/// Contributing-mask bit for `shard` (shards ≥ 64 share the top bit; see
/// [`EstimateEpoch::contributing`]).
fn shard_bit(shard: usize) -> u64 {
    1u64 << shard.min(63)
}

/// Mask with one bit per shard, saturating at 64 tracked shards.
fn full_mask(shards: usize) -> u64 {
    if shards >= 64 {
        u64::MAX
    } else {
        (1u64 << shards) - 1
    }
}

/// Serve-layer metric handles, registered on the registry shared with the
/// producing engine (all `Timing`-class: publication counts and staleness
/// depend on worker scheduling; see `docs/observability.md`).
pub(crate) struct BoardMetrics {
    /// Every epoch published through [`Board::publish_epoch`].
    epochs: Counter,
    /// Epochs published with a partial contributing mask.
    degraded: Counter,
    /// Transitions into degraded publishing after a gate deadline passed.
    gate_expiries: Counter,
    /// Epochs dropped on a full subscriber channel (the subscriber lags;
    /// a later epoch supersedes the dropped one).
    lag_drops: Counter,
    /// Age, in clock nanoseconds, of the **oldest** contributing shard
    /// report at publication time — the watermark staleness a reader of
    /// that epoch observes. Keyed off the board clock, so manual-clock
    /// tests pin exact histogram contents.
    staleness: Histogram,
    /// Shared registry, kept for snapshots and event-ring pushes.
    registry: Arc<Registry>,
}

impl BoardMetrics {
    fn register(registry: Arc<Registry>) -> Self {
        BoardMetrics {
            epochs: registry.counter("gps_serve_epochs_published_total", Stability::Timing),
            degraded: registry.counter("gps_serve_degraded_epochs_total", Stability::Timing),
            gate_expiries: registry.counter("gps_serve_gate_expiries_total", Stability::Timing),
            lag_drops: registry.counter("gps_serve_subscriber_lag_drops_total", Stability::Timing),
            staleness: registry.histogram("gps_serve_publish_staleness_ns", Stability::Timing),
            registry,
        }
    }
}

/// Publisher-side state, serialized by the board mutex.
struct BoardState {
    /// Latest report per shard (`None` until that shard first reports; a
    /// silent shard merges as a zero estimate at position 0, which is
    /// exactly its in-stream accumulator state at that point).
    per_shard: Vec<Option<ShardReport>>,
    /// When each shard last reported, in clock nanoseconds (drives the
    /// liveness window of the publication gate; meaningless — and unread —
    /// without a gate).
    reported_at: Vec<Option<u64>>,
    /// Last assigned epoch version (monotone over the board's lifetime,
    /// across engine restores).
    version: u64,
    /// Copy of the latest epoch for the blocking paths.
    latest: Option<EstimateEpoch>,
    /// Whether the producing engine has finished (no more epochs until the
    /// board is reopened by a restore).
    closed: bool,
    /// Engine generation this board currently accepts reports from;
    /// bumped by [`Board::reopen`]. Workers of a dropped or superseded
    /// engine may still be draining their queues and firing the hook —
    /// their reports carry a stale generation and are discarded instead
    /// of contaminating the current engine's epochs.
    generation: u64,
    /// Publication-gate timeout in clock nanoseconds: how long after
    /// (re)opening the board waits for *every* shard to report before it
    /// starts publishing degraded epochs from the reporting shards only.
    /// `None` gates forever (the pre-fault-tolerance behavior).
    gate_ns: Option<u64>,
    /// When the current gate expires, in clock nanoseconds (re-armed by
    /// [`Board::reopen`]).
    gate_deadline: Option<u64>,
    /// Live subscription senders; lossy on full, pruned on disconnect.
    subscribers: Vec<SyncSender<EstimateEpoch>>,
    /// Producing engine's lost-arrivals counter, stamped on every epoch
    /// (see [`EstimateEpoch::lost_arrivals`]). `None` until the serve layer
    /// attaches the engine — the launch-time reports that can race the
    /// attach all carry zero loss anyway (losses require pushed arrivals,
    /// which follow construction).
    lost: Option<Counter>,
    /// Whether the board is currently publishing degraded epochs; drives
    /// the `DegradedEpoch` / `EpochRecovered` transition events.
    was_degraded: bool,
    /// Whether the current gate arming already expired (first degraded
    /// publication fired a `GateExpiry` event); reset by [`Board::reopen`].
    gate_expired: bool,
    /// Clock instant of the first report withheld since the last
    /// publication — the start of the `gate_wait` trace stage. `None`
    /// when nothing is currently withheld.
    gate_wait_from: Option<u64>,
}

/// What triggered a publication: the report that tipped the board over,
/// carried into the epoch's provenance trace. (The triggering shard
/// itself is identifiable as the newest `report_mark`.)
struct Trigger {
    batch_arrivals: u64,
    prev_report_at: Option<u64>,
}

/// Publication context threaded from the report/close entry point down to
/// [`Board::publish_epoch`], for trace stamping.
struct PublishCtx {
    /// Report-arrival instant captured by the caller.
    now: u64,
    cause: TraceCause,
    trigger: Option<Trigger>,
    t_merge_start: u64,
    t_merge_end: u64,
}

/// Shared epoch board (see module docs).
pub(crate) struct Board {
    cell: EpochCell,
    state: Mutex<BoardState>,
    wake: Condvar,
    /// Time source for the gate and the bounded waits (see `clock`).
    clock: Clock,
    /// Serve-layer metric handles on the registry shared with the engine.
    metrics: BoardMetrics,
    /// Recent epoch provenance traces (bounded, lossy-counted).
    recorder: FlightRecorder,
    /// Highest epoch version whose first observation has been stamped
    /// into the recorder — readers race through a CAS on this word so
    /// only the first observer of a version takes the recorder lock.
    observed: AtomicU64,
}

impl Board {
    /// Locks the publisher state, shrugging off poisoning: the state is
    /// updated atomically under the lock (no partial writes survive a
    /// panic), and a serving layer must keep answering readers even if
    /// one publisher panicked.
    fn locked(&self) -> std::sync::MutexGuard<'_, BoardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a board with its serve metrics registered on the
    /// caller-supplied registry — the serve layer passes the same registry
    /// to the engine so one snapshot covers both layers (tests pass a
    /// fresh detached registry).
    pub(crate) fn with_registry(
        shards: usize,
        gate: Option<Duration>,
        clock: Clock,
        registry: Arc<Registry>,
    ) -> Self {
        let gate_ns = gate.map(duration_ns);
        let now = clock.now_ns();
        Board {
            cell: EpochCell::new(),
            state: Mutex::new(BoardState {
                per_shard: vec![None; shards],
                reported_at: vec![None; shards],
                version: 0,
                latest: None,
                closed: false,
                generation: 0,
                gate_ns,
                gate_deadline: gate_ns.map(|d| now.saturating_add(d)),
                subscribers: Vec::new(),
                lost: None,
                was_degraded: false,
                gate_expired: false,
                gate_wait_from: None,
            }),
            wake: Condvar::new(),
            clock,
            metrics: BoardMetrics::register(registry),
            recorder: FlightRecorder::default(),
            observed: AtomicU64::new(0),
        }
    }

    /// Registry shared by this board's serve metrics (and, once the serve
    /// layer wires it through, the producing engine's).
    pub(crate) fn telemetry_registry(&self) -> Arc<Registry> {
        self.metrics.registry.clone()
    }

    /// Snapshot of every metric and event on the shared registry.
    pub(crate) fn telemetry(&self) -> TelemetrySnapshot {
        self.metrics.registry.snapshot()
    }

    /// Binds the producing engine's lost-arrivals counter so subsequent
    /// epochs stamp its value (see [`EstimateEpoch::lost_arrivals`]).
    pub(crate) fn attach_lost_counter(&self, lost: Counter) {
        self.locked().lost = Some(lost);
    }

    /// Advances a manual clock (see [`crate::ClockMode::Manual`]) and wakes
    /// every blocked waiter so expired deadlines are observed immediately.
    /// No-op on a wall clock.
    pub(crate) fn advance_clock(&self, d: Duration) -> bool {
        // Advance under the lock so a waiter cannot read the clock between
        // our bump and our notify, then miss the wakeup.
        let state = self.locked();
        let moved = self.clock.advance(d);
        drop(state);
        if moved {
            self.wake.notify_all();
        }
        moved
    }

    /// Epoch-hook target: folds one shard's report in and publishes the
    /// re-merged epoch. Runs on the reporting worker's thread.
    ///
    /// Reports from a closed board or a stale `generation` are dropped:
    /// a dropped-without-finish engine's workers keep draining their
    /// queues (nothing joins them) and would otherwise publish after
    /// `close()` or into a successor engine's board.
    ///
    /// Without a publication gate (`gate == None`), no epoch is published
    /// until **every** shard has reported at least once since the board
    /// (re)opened: a partial merge would understate both the watermark and
    /// the estimates — on the restore path it would make them visibly
    /// regress. Workers report immediately at launch, so the gate clears
    /// before any new stream is consumed.
    ///
    /// With a gate, the board degrades instead of withholding: once the
    /// gate deadline has passed, reports still publish while some shard is
    /// silent or stale — a *degraded* epoch merged from the live shards
    /// only (see [`Board::live_shards`]), stamped with the contributing
    /// mask so readers can tell. When the missing shard reports again the
    /// next publication is full.
    pub(crate) fn publish_report(&self, generation: u64, report: ShardReport) {
        let mut state = self.locked();
        if state.closed || generation != state.generation {
            return;
        }
        let slot = report.shard;
        assert!(slot < state.per_shard.len(), "report from unknown shard");
        let now = self.clock.now_ns();
        let prev_report_at = state.reported_at[slot];
        state.per_shard[slot] = Some(report);
        state.reported_at[slot] = Some(now);
        let trigger = Some(Trigger {
            batch_arrivals: report.batch_arrivals,
            prev_report_at,
        });
        let live = self.live_shards(&state, now);
        if live.len() == state.per_shard.len() {
            self.publish_full(&mut state, now, TraceCause::Full, trigger);
        } else if state.gate_deadline.is_some_and(|d| now >= d) && !live.is_empty() {
            self.publish_partial(&mut state, &live, now, trigger);
        } else {
            // Still inside the gate window with shards missing — keep
            // withholding until they report or the deadline passes. The
            // first withheld report starts the `gate_wait` trace stage.
            state.gate_wait_from.get_or_insert(now);
        }
    }

    /// Generation the board currently accepts reports for.
    pub(crate) fn generation(&self) -> u64 {
        self.locked().generation
    }

    /// Indices of shards with a *live* report at `now`: one that exists
    /// and — when a publication gate is configured — is no older than the
    /// gate timeout (a permanently stalled or crashed-and-recovering shard
    /// stops reporting, so its last report ages out of the window and the
    /// board degrades around it). Without a gate every received report
    /// counts indefinitely, reproducing the ungated behavior exactly.
    ///
    /// The shard that just reported always qualifies: its `reported_at`
    /// equals the `now` captured by the caller, so even a zero gate keeps
    /// `elapsed <= window` true for it.
    fn live_shards(&self, state: &BoardState, now: u64) -> Vec<usize> {
        (0..state.per_shard.len())
            .filter(|&i| {
                state.per_shard[i].is_some()
                    && match (state.gate_ns, state.reported_at[i]) {
                        (Some(window), Some(at)) => now.saturating_sub(at) <= window,
                        (Some(_), None) => false,
                        (None, _) => true,
                    }
            })
            .collect()
    }

    /// Merges every per-shard snapshot and publishes a full epoch (caller
    /// holds the lock). Shards that never reported merge as zero estimates
    /// at position 0 — exactly their state — so this is also the forced
    /// final publication of [`Board::close`].
    fn publish_full(
        &self,
        state: &mut BoardState,
        now: u64,
        cause: TraceCause,
        trigger: Option<Trigger>,
    ) {
        let parts: Vec<TriadEstimates> = state
            .per_shard
            .iter()
            .map(|r| r.map(|r| r.estimates).unwrap_or_else(zero_triad))
            .collect();
        let edges_seen: u64 = state
            .per_shard
            .iter()
            .map(|r| r.map(|r| r.arrivals).unwrap_or(0))
            .sum();
        let contributing = full_mask(parts.len());
        let t_merge_start = self.clock.now_ns();
        let estimates = TriadEstimates::merged_colored(&parts);
        let t_merge_end = self.clock.now_ns();
        let ctx = PublishCtx {
            now,
            cause,
            trigger,
            t_merge_start,
            t_merge_end,
        };
        self.publish_epoch(state, edges_seen, contributing, estimates, ctx);
    }

    /// Merges only the `live` shards' snapshots and publishes a degraded
    /// epoch (caller holds the lock; `live` must be non-empty). Estimates
    /// extrapolate from the reporting colors via
    /// [`TriadEstimates::merged_colored_partial`] — unbiased, with honestly
    /// widened variances — and the watermark covers the reporting
    /// substreams only, so it can sit below a prior full epoch's until the
    /// silent shard returns.
    fn publish_partial(
        &self,
        state: &mut BoardState,
        live: &[usize],
        now: u64,
        trigger: Option<Trigger>,
    ) {
        let parts: Vec<TriadEstimates> = live
            .iter()
            .filter_map(|&i| state.per_shard[i].map(|r| r.estimates))
            .collect();
        let edges_seen: u64 = live
            .iter()
            .filter_map(|&i| state.per_shard[i].map(|r| r.arrivals))
            .sum();
        let contributing = live.iter().fold(0u64, |mask, &i| mask | shard_bit(i));
        let t_merge_start = self.clock.now_ns();
        let estimates = TriadEstimates::merged_colored_partial(&parts, state.per_shard.len());
        let t_merge_end = self.clock.now_ns();
        let ctx = PublishCtx {
            now,
            cause: TraceCause::GateExpired,
            trigger,
            t_merge_start,
            t_merge_end,
        };
        self.publish_epoch(state, edges_seen, contributing, estimates, ctx);
    }

    /// Stamps, records, and fans out one epoch (caller holds the lock),
    /// then records its provenance trace in the flight recorder.
    fn publish_epoch(
        &self,
        state: &mut BoardState,
        edges_seen: u64,
        contributing: u64,
        estimates: TriadEstimates,
        ctx: PublishCtx,
    ) {
        let now = ctx.now;
        state.version += 1;
        let epoch = EstimateEpoch {
            version: state.version,
            edges_seen,
            shards: state.per_shard.len() as u64,
            contributing,
            lost_arrivals: state.lost.as_ref().map(|c| c.get()).unwrap_or(0),
            estimates,
        };
        self.metrics.epochs.incr();
        // Watermark staleness: the age of the oldest report this epoch
        // merges — zero when every contributor reported "now" (and for the
        // forced close-time epoch of a board nobody ever reported to).
        let contributing_at: Vec<u64> = (0..state.per_shard.len())
            .filter(|&i| contributing & shard_bit(i) != 0)
            .filter_map(|i| state.reported_at[i])
            .collect();
        let oldest = contributing_at.iter().copied().min().unwrap_or(now);
        let newest = contributing_at.iter().copied().max().unwrap_or(now);
        self.metrics.staleness.record(now.saturating_sub(oldest));
        let shards = state.per_shard.len();
        if contributing != full_mask(shards) {
            self.metrics.degraded.incr();
            let missing = (shards.min(64) as u64) - u64::from(contributing.count_ones());
            if !state.gate_expired {
                // First degraded publication since this gate was armed:
                // the deadline passing is what let it through.
                state.gate_expired = true;
                self.metrics.gate_expiries.incr();
                self.metrics.registry.event(Event {
                    at: now,
                    kind: EventKind::GateExpiry,
                    shard: None,
                    epoch: Some(state.version),
                    detail: missing,
                });
            }
            if !state.was_degraded {
                state.was_degraded = true;
                self.metrics.registry.event(Event {
                    at: now,
                    kind: EventKind::DegradedEpoch,
                    shard: None,
                    epoch: Some(state.version),
                    detail: missing,
                });
            }
        } else if state.was_degraded {
            state.was_degraded = false;
            self.metrics.registry.event(Event {
                at: now,
                kind: EventKind::EpochRecovered,
                shard: None,
                epoch: Some(state.version),
                detail: 0,
            });
        }
        state.latest = Some(epoch);
        self.cell.publish(&epoch);
        state.subscribers.retain(|tx| match tx.try_send(epoch) {
            Ok(()) => true,
            // Lagging subscriber: epochs are cumulative (the latest
            // supersedes all prior), so dropping this one loses nothing a
            // later delivery won't restate.
            Err(TrySendError::Full(_)) => {
                self.metrics.lag_drops.incr();
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        // Provenance trace: the epoch's pipeline timeline, in stage
        // order. Every instant comes from the board clock, so manual
        // clocks and virtual time pin traces bit-identically.
        let t_publish_end = self.clock.now_ns();
        let mut trace = EpochTrace::new(
            state.version,
            edges_seen,
            shards.min(u32::MAX as usize) as u32,
            contributing,
        );
        trace.cause = ctx.cause;
        trace.report_skew_ns = newest.saturating_sub(oldest);
        trace.published_at_ns = t_publish_end;
        for i in 0..state.per_shard.len() {
            if contributing & shard_bit(i) == 0 {
                continue;
            }
            if let (Some(at), Some(r)) = (state.reported_at[i], state.per_shard[i]) {
                trace.mark(
                    "report_mark",
                    at,
                    Some(i.min(u32::MAX as usize) as u32),
                    r.arrivals,
                );
            }
        }
        if let Some(t) = &ctx.trigger {
            trace.stage(
                "arrival_batch",
                t.prev_report_at.unwrap_or(now),
                now,
                t.batch_arrivals,
            );
        }
        let merged = u64::from(contributing.count_ones());
        trace.stage("shard_report", oldest, newest, merged);
        trace.stage(
            "gate_wait",
            state.gate_wait_from.take().unwrap_or(ctx.t_merge_start),
            ctx.t_merge_start,
            0,
        );
        trace.stage("merge", ctx.t_merge_start, ctx.t_merge_end, merged);
        trace.stage(
            "seqlock_publish",
            ctx.t_merge_end,
            t_publish_end,
            state.subscribers.len() as u64,
        );
        self.recorder.record(trace);
        self.wake.notify_all();
    }

    /// Stamps the first observation of `epoch` into its provenance trace
    /// (called from every reader path). The version CAS keeps the fast
    /// path lock-free: only the first observer of a new version touches
    /// the recorder mutex; later and out-of-order observations return
    /// immediately.
    pub(crate) fn observe(&self, epoch: &EstimateEpoch) {
        loop {
            // ordering: Relaxed — the word is a monotone version
            // high-water mark used only to elect one marker; the recorder
            // mutex serialises the trace mutation itself, and a stale
            // read just retries the CAS.
            let seen = self.observed.load(Ordering::Relaxed);
            if epoch.version <= seen {
                return;
            }
            if self
                .observed
                // ordering: Relaxed — see above; no payload is published
                // through this word.
                .compare_exchange(seen, epoch.version, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.recorder
                    .mark_observed(epoch.version, self.clock.now_ns());
                return;
            }
        }
    }

    /// Provenance trace for `version`, if it is still in the flight
    /// recorder.
    pub(crate) fn trace(&self, version: u64) -> Option<EpochTrace> {
        self.recorder.trace(version)
    }

    /// The last `n` retained provenance traces, oldest first.
    pub(crate) fn recent_traces(&self, n: usize) -> Vec<EpochTrace> {
        self.recorder.latest(n)
    }

    /// Traces evicted from the flight recorder since the board was built.
    pub(crate) fn traces_lost(&self) -> u64 {
        self.recorder.lost()
    }

    /// Marks the producer finished: wakes all waiters and ends all
    /// subscriptions. Idempotent.
    ///
    /// No re-publication happens on the normal path: `publish_report`
    /// publishes on every complete report, so by close time `latest`
    /// already is the final epoch (re-merging here would only deliver a
    /// byte-identical duplicate under a bumped version). In particular, a
    /// just-resumed engine abandoned before all restored workers reported
    /// leaves the standing pre-restore epoch untouched instead of
    /// regressing the watermark with zero-filled slots. Only a board that
    /// never published anything force-publishes, so even an empty run
    /// yields one (zero) epoch.
    pub(crate) fn close(&self) {
        let mut state = self.locked();
        if state.closed {
            return;
        }
        if state.latest.is_none() {
            let now = self.clock.now_ns();
            self.publish_full(&mut state, now, TraceCause::ForcedClose, None);
        }
        state.closed = true;
        state.subscribers.clear();
        self.wake.notify_all();
    }

    /// Reopens a closed board for a restored engine with `shards` shards,
    /// keeping the version counter (epochs stay monotone across the
    /// restore) and bumping the accepted generation (stragglers of the
    /// previous engine are locked out). Returns the new generation for the
    /// restored engine's hook. The restored workers' initial reports
    /// re-seed the per-shard slots before any new stream is consumed.
    ///
    /// # Panics
    /// Panics if the board is still open (two engines must not publish
    /// into one board concurrently).
    pub(crate) fn reopen(&self, shards: usize) -> u64 {
        let mut state = self.locked();
        assert!(
            state.closed,
            "board is still owned by a running engine; finish it before resuming"
        );
        state.closed = false;
        state.generation += 1;
        state.per_shard = vec![None; shards];
        state.reported_at = vec![None; shards];
        // Re-arm the publication gate: the restored engine gets a fresh
        // grace window for all of its workers to file initial reports
        // before the board starts degrading around the missing ones.
        let now = self.clock.now_ns();
        state.gate_deadline = state.gate_ns.map(|d| now.saturating_add(d));
        state.gate_expired = false;
        state.gate_wait_from = None;
        // `state.lost` is deliberately kept: the restored engine registers
        // onto the same shared registry, so the counter handle is the same
        // and the serve-lifetime loss ledger stays cumulative across the
        // restore (the serve layer re-attaches it anyway).
        state.generation
    }

    /// Latest epoch (lock-free; `None` before the first publication).
    /// Reading it counts as observing it — the first reader of each
    /// version stamps the trace's final pipeline stage.
    pub(crate) fn latest(&self) -> Option<EstimateEpoch> {
        let epoch = self.cell.load();
        if let Some(e) = &epoch {
            self.observe(e);
        }
        epoch
    }

    /// Blocks until an epoch with `edges_seen >= n` is published and
    /// returns it, or `None` if the board closes first without reaching
    /// the watermark.
    pub(crate) fn wait_for_edges(&self, n: u64) -> Option<EstimateEpoch> {
        let mut state = self.locked();
        loop {
            if let Some(epoch) = state.latest {
                if epoch.edges_seen >= n {
                    self.observe(&epoch);
                    return Some(epoch);
                }
            }
            if state.closed {
                return None;
            }
            state = self.wake.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`Board::wait_for_edges`] with a deadline: blocks until an epoch
    /// with `edges_seen >= n` is published and returns it, or `None` once
    /// `timeout` has elapsed or the board closes first — whichever comes
    /// sooner. Tolerates both lock poisoning and spurious wakeups (the
    /// deadline is re-derived on every pass, never decremented in place).
    pub(crate) fn wait_for_edges_timeout(
        &self,
        n: u64,
        timeout: Duration,
    ) -> Option<EstimateEpoch> {
        let deadline = self.clock.now_ns().saturating_add(duration_ns(timeout));
        let mut state = self.locked();
        loop {
            if let Some(epoch) = state.latest {
                if epoch.edges_seen >= n {
                    self.observe(&epoch);
                    return Some(epoch);
                }
            }
            if state.closed {
                return None;
            }
            let now = self.clock.now_ns();
            if now >= deadline {
                return None;
            }
            state = if self.clock.is_manual() {
                // Manual time cannot expire on its own: park until an
                // epoch, a close, or an `advance_clock` wakes us.
                self.wake.wait(state).unwrap_or_else(|e| e.into_inner())
            } else {
                self.wake
                    .wait_timeout(state, Duration::from_nanos(deadline - now))
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            };
        }
    }

    /// Registers a bounded subscription; `None` if the board is closed
    /// (no further epochs will ever arrive).
    pub(crate) fn subscribe(&self, depth: usize) -> Option<Receiver<EstimateEpoch>> {
        let mut state = self.locked();
        if state.closed {
            return None;
        }
        let (tx, rx) = sync_channel(depth.max(1));
        // Prime with the current epoch so a subscriber never starts blind.
        if let Some(epoch) = state.latest {
            let _ = tx.try_send(epoch);
        }
        state.subscribers.push(tx);
        Some(rx)
    }

    /// Whether the board is closed (producer finished, not resumed).
    pub(crate) fn is_closed(&self) -> bool {
        self.locked().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;

    fn wall_board(shards: usize, gate: Option<Duration>) -> Board {
        Board::with_registry(
            shards,
            gate,
            Clock::new(ClockMode::Wall),
            Arc::new(Registry::new()),
        )
    }

    fn manual_board(shards: usize, gate: Option<Duration>) -> Board {
        Board::with_registry(
            shards,
            gate,
            Clock::new(ClockMode::Manual),
            Arc::new(Registry::new()),
        )
    }

    fn report(shard: usize, arrivals: u64, tri: f64) -> ShardReport {
        ShardReport {
            shard,
            arrivals,
            batch_arrivals: arrivals,
            estimates: TriadEstimates::from_parts(
                Estimate {
                    value: tri,
                    variance: 0.0,
                },
                Estimate::exact(0.0),
                0.0,
            ),
        }
    }

    #[test]
    fn watermark_sums_shards_and_versions_increase() {
        let board = wall_board(2, None);
        assert!(board.latest().is_none());
        // Publication is gated until every shard has reported once.
        board.publish_report(0, report(0, 100, 1.0));
        assert!(board.latest().is_none());
        board.publish_report(0, report(1, 50, 2.0));
        let e1 = board.latest().unwrap();
        assert_eq!((e1.version, e1.edges_seen), (1, 150));
        assert_eq!(e1.contributing, 0b11);
        assert!(!e1.degraded(), "ungated full merges are never degraded");
        // S = 2 triangles rescale by S²·Σ = 4·3.
        assert_eq!(e1.estimates.triangles.value, 12.0);
        board.publish_report(0, report(0, 120, 1.0));
        let e2 = board.latest().unwrap();
        assert_eq!((e2.version, e2.edges_seen), (2, 170));
    }

    #[test]
    fn close_publishes_final_epoch_and_is_idempotent() {
        let board = wall_board(1, None);
        board.close();
        let final_epoch = board.latest().unwrap();
        assert_eq!(final_epoch.edges_seen, 0);
        board.close();
        assert_eq!(board.latest().unwrap().version, final_epoch.version);
        assert!(board.is_closed());
        assert!(board.subscribe(4).is_none());
    }

    #[test]
    fn wait_for_edges_returns_none_on_close_below_watermark() {
        let board = std::sync::Arc::new(wall_board(1, None));
        let waiter = {
            let board = board.clone();
            std::thread::spawn(move || board.wait_for_edges(1_000))
        };
        board.publish_report(0, report(0, 10, 0.0));
        board.close();
        assert!(waiter.join().unwrap().is_none());
        // Already-satisfied watermarks still answer from the final epoch.
        assert_eq!(board.wait_for_edges(5).unwrap().edges_seen, 10);
    }

    #[test]
    fn subscriptions_prime_drop_when_full_and_end_on_close() {
        let board = wall_board(1, None);
        board.publish_report(0, report(0, 1, 0.0));
        let rx = board.subscribe(2).unwrap();
        // Primed with the current epoch.
        assert_eq!(rx.recv().unwrap().edges_seen, 1);
        for i in 2..=5 {
            board.publish_report(0, report(0, i, 0.0));
        }
        // Depth 2: epochs 2 and 3 buffered, 4 and 5 dropped (lossy).
        assert_eq!(rx.recv().unwrap().edges_seen, 2);
        assert_eq!(rx.recv().unwrap().edges_seen, 3);
        board.close();
        // Close does not re-publish (latest already is the final epoch);
        // the raw channel just ends — the final-epoch delivery guarantee
        // for lagging subscribers lives in `EpochSubscription`'s drain of
        // `Board::latest`, tested at the serve layer.
        assert!(rx.recv().is_err(), "subscription must end after close");
        assert_eq!(board.latest().unwrap().edges_seen, 5);
    }

    #[test]
    fn reopen_keeps_versions_monotone_and_gates_partial_merges() {
        let board = wall_board(2, None);
        board.publish_report(0, report(0, 5, 0.0));
        board.close();
        let at_close = board.latest().unwrap();
        let generation = board.reopen(3);
        // Until all 3 restored shards report, the closed-time epoch stands.
        board.publish_report(generation, report(2, 7, 0.0));
        assert_eq!(board.latest().unwrap().version, at_close.version);
        board.publish_report(generation, report(0, 4, 0.0));
        board.publish_report(generation, report(1, 2, 0.0));
        let e = board.latest().unwrap();
        assert!(e.version > at_close.version);
        assert_eq!(e.shards, 3);
        assert_eq!(e.edges_seen, 13);
    }

    #[test]
    fn straggler_reports_are_dropped_after_close_and_across_generations() {
        let board = wall_board(1, None);
        board.publish_report(0, report(0, 5, 1.0));
        board.close();
        let final_version = board.latest().unwrap().version;
        // A worker of the dead engine drains late: no new epoch.
        board.publish_report(0, report(0, 9, 9.0));
        assert_eq!(board.latest().unwrap().version, final_version);
        // Resume with MORE shards: a stale-generation report must be
        // ignored (not out-of-bounds-panic, not merged), only the new
        // generation publishes.
        let generation = board.reopen(2);
        board.publish_report(0, report(0, 999, 9.0)); // stale generation
        board.publish_report(generation, report(0, 6, 1.0));
        board.publish_report(generation, report(1, 4, 1.0));
        let e = board.latest().unwrap();
        assert_eq!(e.edges_seen, 10, "only current-generation reports merge");
        assert!(e.version > final_version);
    }

    #[test]
    fn closing_a_gated_reopened_board_does_not_regress_the_watermark() {
        // Resume then abandon before every restored worker reports: the
        // close-time publication must not merge zero-filled slots below
        // the standing pre-restore epoch.
        let board = wall_board(1, None);
        board.publish_report(0, report(0, 50, 3.0));
        board.close();
        let standing = board.latest().unwrap();
        let generation = board.reopen(2);
        board.publish_report(generation, report(0, 50, 3.0)); // 1 of 2 shards
        board.close();
        let after = board.latest().unwrap();
        assert_eq!(after.version, standing.version, "no partial final epoch");
        assert_eq!(after.edges_seen, 50);
    }

    #[test]
    #[should_panic(expected = "still owned by a running engine")]
    fn reopen_of_open_board_panics() {
        wall_board(1, None).reopen(1);
    }

    #[test]
    fn expired_gate_publishes_degraded_epochs_from_reporting_shards() {
        // Zero gate on a manual clock: the deadline equals "now" at the
        // first report, so the board publishes immediately from whichever
        // shard spoke — degraded, with an honest contributing mask.
        let board = manual_board(3, Some(Duration::ZERO));
        board.publish_report(0, report(1, 40, 6.0));
        let e = board.latest().unwrap();
        assert_eq!(e.version, 1);
        assert_eq!(e.shards, 3);
        assert_eq!(e.contributing, 0b010);
        assert_eq!(e.contributing_count(), 1);
        assert!(e.degraded());
        // Watermark covers the reporting substream only.
        assert_eq!(e.edges_seen, 40);
        // One of S = 3 colors extrapolates by S³: 27·6.
        assert_eq!(e.estimates.triangles.value, 162.0);
        // A second reporting shard joins the merge (zero gate keeps the
        // earlier reporter out of the live window — only the current
        // reporter is provably fresh once virtual time has moved past
        // shard 1's report; no sleep, no coarse-clock caveat).
        board.advance_clock(Duration::from_nanos(1));
        board.publish_report(0, report(0, 10, 6.0));
        let e2 = board.latest().unwrap();
        assert_eq!(e2.version, 2);
        assert_eq!(e2.contributing, 0b001);
        assert_eq!(e2.edges_seen, 10);
    }

    #[test]
    fn unexpired_gate_withholds_then_full_reports_publish_undegraded() {
        // A generous gate behaves like the ungated board until every shard
        // reports, then publishes full, undegraded epochs.
        let board = manual_board(2, Some(Duration::from_secs(3600)));
        board.publish_report(0, report(0, 10, 1.0));
        assert!(
            board.latest().is_none(),
            "inside the gate window no partial epoch may publish"
        );
        board.publish_report(0, report(1, 5, 2.0));
        let e = board.latest().unwrap();
        assert_eq!(e.contributing, 0b11);
        assert!(!e.degraded());
        assert_eq!(e.edges_seen, 15);
    }

    #[test]
    fn wait_for_edges_timeout_returns_satisfying_epoch_before_deadline() {
        let board = std::sync::Arc::new(manual_board(1, None));
        let waiter = {
            let board = board.clone();
            std::thread::spawn(move || board.wait_for_edges_timeout(100, Duration::from_secs(30)))
        };
        board.publish_report(0, report(0, 150, 0.0));
        let got = waiter.join().unwrap().expect("epoch before deadline");
        assert_eq!(got.edges_seen, 150);
        // An already-satisfied watermark answers without waiting at all.
        let quick = board.wait_for_edges_timeout(1, Duration::ZERO);
        assert_eq!(quick.unwrap().edges_seen, 150);
    }

    #[test]
    fn manual_clock_pins_exact_staleness_histogram_contents() {
        use gps_telemetry::{bucket_of, BUCKETS};
        let board = manual_board(2, None);
        board.publish_report(0, report(0, 10, 0.0));
        board.advance_clock(Duration::from_nanos(5));
        // First full merge at t = 5: shard 0 reported at t = 0, so the
        // oldest contributing report is 5 ns stale.
        board.publish_report(0, report(1, 5, 0.0));
        board.advance_clock(Duration::from_nanos(95));
        // Re-merge at t = 100: shard 1's report from t = 5 is now the
        // oldest, 95 ns stale.
        board.publish_report(0, report(0, 20, 0.0));
        let snap = board.telemetry();
        let h = snap
            .histogram_sample("gps_serve_publish_staleness_ns")
            .expect("staleness histogram registered");
        assert_eq!((h.count, h.sum), (2, 100));
        let mut expect = [0u64; BUCKETS];
        expect[bucket_of(5)] += 1;
        expect[bucket_of(95)] += 1;
        assert_eq!(h.buckets, expect, "virtual time pins exact buckets");
        assert_eq!(
            snap.counter_value("gps_serve_epochs_published_total"),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("gps_serve_degraded_epochs_total"),
            Some(0)
        );
    }

    #[test]
    fn degraded_transitions_emit_events_and_stamp_lost_arrivals() {
        use gps_telemetry::{Counter, EventKind};
        let board = manual_board(2, Some(Duration::ZERO));
        // Zero gate: the lone reporter publishes degraded immediately —
        // one gate expiry, one degraded-transition event.
        board.publish_report(0, report(0, 10, 0.0));
        assert!(board.latest().unwrap().degraded());
        // The second shard reports within the same instant, so both are
        // live and the board recovers to a full epoch.
        board.publish_report(0, report(1, 5, 0.0));
        assert!(!board.latest().unwrap().degraded());
        let snap = board.telemetry();
        assert_eq!(snap.counter_value("gps_serve_gate_expiries_total"), Some(1));
        assert_eq!(
            snap.counter_value("gps_serve_degraded_epochs_total"),
            Some(1)
        );
        let kinds: Vec<EventKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::GateExpiry,
                EventKind::DegradedEpoch,
                EventKind::EpochRecovered
            ]
        );
        // Epochs stamp the attached engine loss ledger; before any attach
        // they stamp zero.
        assert_eq!(board.latest().unwrap().lost_arrivals, 0);
        let lost = Counter::default();
        lost.add(7);
        board.attach_lost_counter(lost);
        board.publish_report(0, report(0, 20, 0.0));
        assert_eq!(board.latest().unwrap().lost_arrivals, 7);
    }

    #[test]
    fn wait_for_edges_timeout_expires_on_an_open_board() {
        let board = std::sync::Arc::new(manual_board(1, None));
        board.publish_report(0, report(0, 10, 0.0));
        // Board stays open and never reaches the watermark: the call must
        // come back `None` once virtual time passes the deadline instead
        // of hanging. Advancing in a loop is ordering-insensitive: the
        // waiter's deadline is fixed at entry, and each advance moves
        // virtual time another full timeout, so whichever side runs first
        // the deadline is passed after at most two advances.
        let waiter = {
            let board = board.clone();
            std::thread::spawn(move || {
                board.wait_for_edges_timeout(1_000, Duration::from_millis(25))
            })
        };
        while !waiter.is_finished() {
            board.advance_clock(Duration::from_millis(26));
            std::thread::yield_now();
        }
        assert!(
            waiter.join().unwrap().is_none(),
            "deadline expiry must return None"
        );
        assert!(!board.is_closed());
        // A zero timeout on an unsatisfied watermark expires synchronously.
        assert!(board
            .wait_for_edges_timeout(1_000, Duration::ZERO)
            .is_none());
    }

    #[test]
    fn manual_clock_pins_the_exact_trace_timeline() {
        use gps_telemetry::StageSpan;
        let board = manual_board(2, None);
        // t = 0: shard 0 reports; the ungated board withholds until every
        // shard has spoken, which starts the gate_wait stage.
        board.publish_report(0, report(0, 100, 1.0));
        assert!(board.trace(1).is_none(), "no epoch, no trace");
        board.advance_clock(Duration::from_nanos(10));
        // t = 10: shard 1 reports and the full merge publishes.
        board.publish_report(0, report(1, 50, 2.0));
        // Reading the epoch stamps the first-observation stage at t = 10.
        assert_eq!(board.latest().unwrap().version, 1);
        let trace = board.trace(1).expect("epoch 1 is in the recorder");
        assert_eq!(trace.cause, TraceCause::Full);
        assert_eq!(trace.contributing, 0b11);
        assert_eq!(trace.report_skew_ns, 10);
        assert_eq!(trace.first_observed_ns, Some(10));
        assert_eq!(
            trace.spans,
            vec![
                // Shard 1's first report has no predecessor: the batch
                // span collapses to the report instant.
                StageSpan {
                    stage: "arrival_batch",
                    start_ns: 10,
                    end_ns: 10,
                    detail: 50,
                },
                StageSpan {
                    stage: "shard_report",
                    start_ns: 0,
                    end_ns: 10,
                    detail: 2,
                },
                StageSpan {
                    stage: "gate_wait",
                    start_ns: 0,
                    end_ns: 10,
                    detail: 0,
                },
                StageSpan {
                    stage: "merge",
                    start_ns: 10,
                    end_ns: 10,
                    detail: 2,
                },
                StageSpan {
                    stage: "seqlock_publish",
                    start_ns: 10,
                    end_ns: 10,
                    detail: 0,
                },
                StageSpan {
                    stage: "first_observation",
                    start_ns: 10,
                    end_ns: 10,
                    detail: 0,
                },
            ]
        );
        let marks: Vec<(u64, Option<u32>, u64)> = trace
            .marks
            .iter()
            .map(|m| (m.at_ns, m.shard, m.detail))
            .collect();
        assert_eq!(marks, vec![(0, Some(0), 100), (10, Some(1), 50)]);
        // A second publication attributes the triggering shard's batch.
        board.advance_clock(Duration::from_nanos(5));
        board.publish_report(0, report(0, 164, 1.0));
        let t2 = board.trace(2).expect("epoch 2 traced");
        let batch = t2.span("arrival_batch").expect("arrival_batch recorded");
        assert_eq!((batch.start_ns, batch.end_ns, batch.detail), (0, 15, 164));
        assert_eq!(
            t2.stage_ns("gate_wait"),
            Some(0),
            "nothing was withheld before epoch 2"
        );
        assert_eq!(
            board
                .recent_traces(10)
                .iter()
                .map(|t| t.version)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(board.traces_lost(), 0);
    }

    #[test]
    fn degraded_trace_names_the_gate_expiry_and_missing_shards() {
        let board = manual_board(3, Some(Duration::ZERO));
        // Zero gate: the lone reporter publishes a degraded epoch at once.
        board.publish_report(0, report(1, 40, 6.0));
        let trace = board.trace(1).expect("degraded epoch traced");
        assert_eq!(trace.cause, TraceCause::GateExpired);
        assert!(trace.degraded());
        assert_eq!(trace.missing_shards(), vec![0, 2]);
        assert_eq!(trace.contributing, 0b010);
        let json = trace.to_json();
        assert!(json.contains("\"cause\":\"gate_expired\",\"degraded\":true"));
        // A board closed before any publication traces a forced close.
        let empty = manual_board(1, None);
        empty.close();
        let t = empty.trace(1).expect("forced close-time epoch traced");
        assert_eq!(t.cause, TraceCause::ForcedClose);
        assert!(t.span("arrival_batch").is_none(), "no triggering report");
    }
}
