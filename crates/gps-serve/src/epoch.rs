//! Immutable estimate epochs and the lock-free publication cell.
//!
//! An [`EstimateEpoch`] is a self-contained, monotonically-versioned
//! snapshot of the engine's merged estimates: once published it never
//! changes, a later epoch supersedes it wholesale. Publication goes through
//! an [`EpochCell`] — a seqlock over plain atomic words — so readers load
//! the latest epoch without taking any lock: a read never blocks the
//! publisher (an engine worker thread), and the publisher never blocks
//! readers. Readers retry only if a publication raced their copy, which a
//! version-counter check detects; with publications every few thousand
//! arrivals and copies of ~8 words, retries are vanishingly rare.

use gps_core::{Estimate, TriadEstimates};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One immutable, versioned snapshot of the live merged estimates.
///
/// `estimates` carries the full [`TriadEstimates`] bundle — triangle and
/// wedge counts with **honest variances** (strata-sum conditional variance
/// plus the between-shard coloring term for `S > 1`; see
/// [`TriadEstimates::merged_colored`]) and the derived clustering
/// coefficient — so `epoch.estimates.triangles.ci95()` is a valid interval
/// without further processing.
#[derive(Clone, Copy, Debug)]
pub struct EstimateEpoch {
    /// Publication sequence number; strictly increasing over the lifetime
    /// of a [`QueryHandle`]'s board, including across engine
    /// snapshot/restore cycles.
    ///
    /// [`QueryHandle`]: crate::QueryHandle
    pub version: u64,
    /// Stream watermark: total arrivals the merged estimates reflect
    /// (sum of per-shard substream positions at merge time; shards report
    /// at batch boundaries, so this trails the producer by at most the
    /// in-flight batches plus the epoch cadence).
    pub edges_seen: u64,
    /// Shard count `S` of the producing engine.
    pub shards: u64,
    /// Bitmask of the shards whose reports this epoch merges (bit `i` set
    /// ⇔ shard `i` contributed; shards beyond index 63 are not
    /// individually tracked — the engine's worker-thread counts are far
    /// below that). A **full** epoch has every shard's bit set; a
    /// **degraded** one (published past the gate deadline while some shard
    /// was stalled or recovering) merges only the reporting shards, with
    /// the missing strata's loss reflected in the widened variances of
    /// [`TriadEstimates::merged_colored_partial`].
    pub contributing: u64,
    /// Total arrivals the producing engine has lost to crash-recovery
    /// rollbacks or written-off stragglers at publication time (the
    /// engine's `EngineHealth::lost_arrivals` ledger, stamped here so a
    /// degraded epoch is self-describing: readers see the loss without
    /// reaching into the engine). `0` on a healthy run.
    pub lost_arrivals: u64,
    /// Merged triangle / wedge / clustering estimates with variances.
    pub estimates: TriadEstimates,
}

impl EstimateEpoch {
    /// How many shards contributed reports to this epoch.
    pub fn contributing_count(&self) -> u32 {
        self.contributing.count_ones()
    }

    /// True when some shard did **not** contribute: the epoch was published
    /// past the gate deadline from the reporting shards only. Watermark and
    /// estimates cover the reporting substreams; the variances already
    /// carry the partial-merge widening, so intervals stay honest.
    pub fn degraded(&self) -> bool {
        u64::from(self.contributing_count()) != self.shards.min(64)
    }
}

/// Words of the seqlock payload: version, edges_seen, shards, the
/// contributing-shard mask, the lost-arrivals stamp, and the five
/// independent floats of a `TriadEstimates` (clustering is re-derived).
const WORDS: usize = 10;

impl EstimateEpoch {
    fn encode(&self) -> [u64; WORDS] {
        [
            self.version,
            self.edges_seen,
            self.shards,
            self.contributing,
            self.lost_arrivals,
            self.estimates.triangles.value.to_bits(),
            self.estimates.triangles.variance.to_bits(),
            self.estimates.wedges.value.to_bits(),
            self.estimates.wedges.variance.to_bits(),
            self.estimates.tri_wedge_cov.to_bits(),
        ]
    }

    fn decode(words: [u64; WORDS]) -> Self {
        EstimateEpoch {
            version: words[0],
            edges_seen: words[1],
            shards: words[2],
            contributing: words[3],
            lost_arrivals: words[4],
            estimates: TriadEstimates::from_parts(
                Estimate {
                    value: f64::from_bits(words[5]),
                    variance: f64::from_bits(words[6]),
                },
                Estimate {
                    value: f64::from_bits(words[7]),
                    variance: f64::from_bits(words[8]),
                },
                f64::from_bits(words[9]),
            ),
        }
    }
}

/// Seqlock-published epoch slot: one writer at a time (the publisher runs
/// under the board mutex), any number of lock-free readers.
///
/// Memory-ordering protocol (the standard seqlock recipe): the writer bumps
/// the sequence to odd, release-fences, stores the payload relaxed, then
/// release-stores the even sequence; a reader acquire-loads the sequence,
/// copies the payload relaxed, acquire-fences, and re-checks the sequence —
/// an unchanged even value proves the copy is a consistent published epoch.
/// Every payload word is an `AtomicU64`, so torn copies are impossible at
/// the word level and detected at the epoch level.
pub(crate) struct EpochCell {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl EpochCell {
    /// An empty cell (no epoch published yet).
    pub(crate) fn new() -> Self {
        EpochCell {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }

    /// Publishes `epoch`, superseding any previous one. Caller must
    /// guarantee writer exclusivity (the board publishes under its mutex).
    pub(crate) fn publish(&self, epoch: &EstimateEpoch) {
        // ordering: Relaxed — single-writer (board mutex): only this thread
        // ever stores seq, so it reads its own last store; no edge needed.
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(s.is_multiple_of(2), "concurrent publisher");
        // ordering: Relaxed — going odd need not be ordered before the
        // payload stores: readers that see odd retry, and readers that miss
        // it are caught by the recheck after the payload copy.
        self.seq.store(s + 1, Ordering::Relaxed);
        // ordering: Release fence — orders the odd store before every
        // payload store: a reader's recheck (Acquire fence + relaxed seq
        // load) that sees even therefore saw no mid-write payload.
        fence(Ordering::Release);
        for (slot, word) in self.words.iter().zip(epoch.encode()) {
            // ordering: Relaxed — ordered collectively by the fences and
            // the final Release store, not individually.
            slot.store(word, Ordering::Relaxed);
        }
        // ordering: Release — pairs with the reader's Acquire first load:
        // a reader that observes s+2 also observes every payload store
        // sequenced before this (the happens-before edge of the seqlock).
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Latest published epoch, or `None` before the first publication.
    /// Lock-free: retries only while racing a concurrent publication.
    pub(crate) fn load(&self) -> Option<EstimateEpoch> {
        loop {
            // ordering: Acquire — pairs with the writer's final Release
            // store: seeing seq == s1 (even) makes the matching payload
            // stores visible to the relaxed copy below.
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None;
            }
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let mut words = [0u64; WORDS];
            for (out, slot) in words.iter_mut().zip(&self.words) {
                // ordering: Relaxed — bracketed by the Acquire load above
                // and the Acquire fence below; torn values are discarded
                // by the recheck.
                *out = slot.load(Ordering::Relaxed);
            }
            // ordering: Acquire fence — orders the payload copy before the
            // seq recheck; pairs with the writer's Release fence so a
            // recheck that still reads s1 proves no writer went odd
            // during the copy.
            fence(Ordering::Acquire);
            // ordering: Relaxed — the fence above provides the edge; the
            // recheck itself only needs the value.
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some(EstimateEpoch::decode(words));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(version: u64, edges: u64, tri: f64) -> EstimateEpoch {
        EstimateEpoch {
            version,
            edges_seen: edges,
            shards: 4,
            contributing: 0b1011,
            lost_arrivals: edges / 10,
            estimates: TriadEstimates::from_parts(
                Estimate {
                    value: tri,
                    variance: tri / 2.0,
                },
                Estimate {
                    value: 3.0 * tri,
                    variance: 1.0,
                },
                0.25,
            ),
        }
    }

    #[test]
    fn empty_cell_loads_none() {
        assert!(EpochCell::new().load().is_none());
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let cell = EpochCell::new();
        cell.publish(&epoch(7, 1234, 56.5));
        let got = cell.load().unwrap();
        assert_eq!(got.version, 7);
        assert_eq!(got.edges_seen, 1234);
        assert_eq!(got.shards, 4);
        assert_eq!(got.contributing, 0b1011);
        assert_eq!(got.contributing_count(), 3);
        assert_eq!(got.lost_arrivals, 123);
        assert!(got.degraded(), "3 of 4 shards contributing is degraded");
        assert_eq!(got.estimates.triangles.value.to_bits(), 56.5f64.to_bits());
        assert_eq!(
            got.estimates.triangles.variance.to_bits(),
            28.25f64.to_bits()
        );
        assert_eq!(got.estimates.tri_wedge_cov.to_bits(), 0.25f64.to_bits());
        // Clustering is re-derived consistently from the stored parts.
        let expect = TriadEstimates::from_parts(
            got.estimates.triangles,
            got.estimates.wedges,
            got.estimates.tri_wedge_cov,
        );
        assert_eq!(
            got.estimates.clustering.value.to_bits(),
            expect.clustering.value.to_bits()
        );
    }

    #[test]
    fn later_publication_supersedes() {
        let cell = EpochCell::new();
        cell.publish(&epoch(1, 10, 1.0));
        cell.publish(&epoch(2, 20, 2.0));
        let got = cell.load().unwrap();
        assert_eq!(got.version, 2);
        assert_eq!(got.edges_seen, 20);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_epochs() {
        // Hammer the cell from reader threads while a writer publishes
        // epochs whose fields are linked (edges = 10·version, tri =
        // version as f64): any torn read would break the linkage.
        let cell = std::sync::Arc::new(EpochCell::new());
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let mut readers = vec![];
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = 0u64;
                // ordering: Relaxed — stop flag only ends the loop; no
                // data is published through it.
                while stop.load(Ordering::Relaxed) == 0 {
                    if let Some(e) = cell.load() {
                        assert_eq!(e.edges_seen, 10 * e.version, "torn epoch");
                        assert_eq!(e.estimates.triangles.value, e.version as f64);
                        assert!(e.version >= last, "version went backwards");
                        last = e.version;
                        seen += 1;
                    }
                }
                seen
            }));
        }
        // Miri explores this test's interleavings orders of magnitude more
        // slowly than native execution; scale the publication count down so
        // `cargo miri test` stays tractable while still crossing epochs.
        let rounds: u64 = if cfg!(miri) { 200 } else { 20_000 };
        for v in 1..=rounds {
            cell.publish(&epoch(v, 10 * v, v as f64));
        }
        // ordering: Relaxed — only signals loop exit; readers synchronize
        // with publications via the cell's seqlock, not this flag.
        stop.store(1, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers observed no epochs");
        assert_eq!(cell.load().unwrap().version, rounds);
    }
}
