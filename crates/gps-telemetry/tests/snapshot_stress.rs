//! Concurrent snapshot consistency stress: writer threads hammer a shared
//! histogram and counters while readers snapshot continuously. A torn
//! histogram read would break the algebraic invariants asserted below;
//! the seqlock protocol must never let one through.
//!
//! Scaled down under Miri (which executes a real, if slow, concurrent
//! interleaving search) the same way `gps-serve/tests/torn_read.rs` is.

use gps_telemetry::{Registry, Stability, TelemetrySnapshot, BUCKETS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// (records per writer, writer threads, reader threads)
fn scale() -> (u64, usize, usize) {
    if cfg!(miri) {
        (40, 2, 1)
    } else {
        (20_000, 4, 2)
    }
}

/// Every writer `t` records only the value `1 << t`, which lands only in
/// bucket `t + 1`. Any consistent sample therefore satisfies
/// `sum == Σ_b buckets[b] · 2^(b-1)` exactly; a copy that straddles a
/// writer's critical section would violate it.
fn check_histogram_invariants(snap: &TelemetrySnapshot) {
    let h = snap
        .histogram_sample("gps_stress_values")
        .expect("histogram registered");
    let bucket_total: u64 = h.buckets.iter().sum();
    assert_eq!(bucket_total, h.count, "bucket occupancy must equal count");
    let weighted: u64 = (1..BUCKETS).map(|b| h.buckets[b] * (1u64 << (b - 1))).sum();
    assert_eq!(weighted, h.sum, "sum must match bucket-weighted total");
}

#[test]
fn snapshots_never_observe_torn_histograms() {
    let (records, writers, readers) = scale();
    let reg = Arc::new(Registry::new());
    // Register up front so readers always find the metrics.
    let hist = reg.histogram("gps_stress_values", Stability::Stable);
    let total = reg.counter("gps_stress_records_total", Stability::Stable);
    drop((hist, total));

    let done = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let h = reg.histogram("gps_stress_values", Stability::Stable);
                let c = reg.counter("gps_stress_records_total", Stability::Stable);
                for _ in 0..records {
                    h.record(1u64 << t);
                    c.incr();
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut last_count = 0u64;
                let mut iters = 0u64;
                // ordering: Relaxed — plain stop flag; no data is
                // transferred through it.
                while !done.load(Ordering::Relaxed) {
                    let snap = reg.snapshot();
                    check_histogram_invariants(&snap);
                    let count = snap.histogram_sample("gps_stress_values").unwrap().count;
                    assert!(count >= last_count, "histogram count must be monotone");
                    last_count = count;
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    // ordering: Relaxed — see the reader loop; joining writers already
    // happened-before this store via the join itself.
    done.store(true, Ordering::Relaxed);
    for h in reader_handles {
        assert!(h.join().unwrap() > 0, "readers must have snapshotted");
    }

    // Final totals are exact once all writers joined.
    let snap = reg.snapshot();
    check_histogram_invariants(&snap);
    let expected = records * writers as u64;
    assert_eq!(
        snap.counter_value("gps_stress_records_total"),
        Some(expected)
    );
    let h = snap.histogram_sample("gps_stress_values").unwrap();
    assert_eq!(h.count, expected);
    for t in 0..writers {
        assert_eq!(h.buckets[t + 1], records, "writer {t}'s bucket is exact");
    }
}

#[test]
fn event_ring_loss_counting_under_contention() {
    let (records, writers, _) = scale();
    let cap = 16usize;
    let reg = Arc::new(Registry::with_event_capacity(cap));
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..records {
                    reg.event(gps_telemetry::Event {
                        at: i,
                        kind: gps_telemetry::EventKind::CheckpointWrite,
                        shard: Some(t as u32),
                        detail: i,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    let pushed = records * writers as u64;
    assert_eq!(snap.events.len(), cap.min(pushed as usize));
    // Retained + lost accounts for every push exactly.
    assert_eq!(snap.events.len() as u64 + snap.events_lost, pushed);
}
