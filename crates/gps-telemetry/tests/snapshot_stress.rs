//! Concurrent snapshot consistency stress: writer threads hammer a shared
//! histogram and counters while readers snapshot continuously. A torn
//! histogram read would break the algebraic invariants asserted below;
//! the seqlock protocol must never let one through.
//!
//! Scaled down under Miri (which executes a real, if slow, concurrent
//! interleaving search) the same way `gps-serve/tests/torn_read.rs` is.

use gps_telemetry::{Registry, Stability, TelemetrySnapshot, BUCKETS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// (records per writer, writer threads, reader threads)
fn scale() -> (u64, usize, usize) {
    if cfg!(miri) {
        (40, 2, 1)
    } else {
        (20_000, 4, 2)
    }
}

/// Every writer `t` records only the value `1 << t`, which lands only in
/// bucket `t + 1`. Any consistent sample therefore satisfies
/// `sum == Σ_b buckets[b] · 2^(b-1)` exactly; a copy that straddles a
/// writer's critical section would violate it.
fn check_histogram_invariants(snap: &TelemetrySnapshot) {
    let h = snap
        .histogram_sample("gps_stress_values")
        .expect("histogram registered");
    let bucket_total: u64 = h.buckets.iter().sum();
    assert_eq!(bucket_total, h.count, "bucket occupancy must equal count");
    let weighted: u64 = (1..BUCKETS).map(|b| h.buckets[b] * (1u64 << (b - 1))).sum();
    assert_eq!(weighted, h.sum, "sum must match bucket-weighted total");
}

#[test]
fn snapshots_never_observe_torn_histograms() {
    let (records, writers, readers) = scale();
    let reg = Arc::new(Registry::new());
    // Register up front so readers always find the metrics.
    let hist = reg.histogram("gps_stress_values", Stability::Stable);
    let total = reg.counter("gps_stress_records_total", Stability::Stable);
    drop((hist, total));

    let done = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let h = reg.histogram("gps_stress_values", Stability::Stable);
                let c = reg.counter("gps_stress_records_total", Stability::Stable);
                for _ in 0..records {
                    h.record(1u64 << t);
                    c.incr();
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut last_count = 0u64;
                let mut iters = 0u64;
                // ordering: Relaxed — plain stop flag; no data is
                // transferred through it.
                while !done.load(Ordering::Relaxed) {
                    let snap = reg.snapshot();
                    check_histogram_invariants(&snap);
                    let count = snap.histogram_sample("gps_stress_values").unwrap().count;
                    assert!(count >= last_count, "histogram count must be monotone");
                    last_count = count;
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    // ordering: Relaxed — see the reader loop; joining writers already
    // happened-before this store via the join itself.
    done.store(true, Ordering::Relaxed);
    for h in reader_handles {
        assert!(h.join().unwrap() > 0, "readers must have snapshotted");
    }

    // Final totals are exact once all writers joined.
    let snap = reg.snapshot();
    check_histogram_invariants(&snap);
    let expected = records * writers as u64;
    assert_eq!(
        snap.counter_value("gps_stress_records_total"),
        Some(expected)
    );
    let h = snap.histogram_sample("gps_stress_values").unwrap();
    assert_eq!(h.count, expected);
    for t in 0..writers {
        assert_eq!(h.buckets[t + 1], records, "writer {t}'s bucket is exact");
    }
}

#[test]
fn event_ring_loss_counting_under_contention() {
    let (records, writers, _) = scale();
    let cap = 16usize;
    let reg = Arc::new(Registry::with_event_capacity(cap));
    let handles: Vec<_> = (0..writers)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..records {
                    reg.event(gps_telemetry::Event {
                        at: i,
                        kind: gps_telemetry::EventKind::CheckpointWrite,
                        shard: Some(t as u32),
                        epoch: None,
                        detail: i,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    let pushed = records * writers as u64;
    assert_eq!(snap.events.len(), cap.min(pushed as usize));
    // Retained + lost accounts for every push exactly.
    assert_eq!(snap.events.len() as u64 + snap.events_lost, pushed);
}

#[test]
fn flight_recorder_under_concurrent_record_and_query() {
    let (records, writers, readers) = scale();
    let cap = 8usize;
    let rec = Arc::new(gps_telemetry::FlightRecorder::with_capacity(cap));
    let done = Arc::new(AtomicBool::new(false));

    // Writers append version-disjoint traces; observers race to stamp
    // first observations; readers continuously snapshot and check the
    // ring's accounting invariants.
    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                for i in 0..records {
                    let version = i * writers as u64 + t as u64 + 1;
                    let mut trace = gps_telemetry::EpochTrace::new(version, i, 1, 0b1);
                    trace.published_at_ns = version;
                    trace.stage("stress_stage", 0, version, 1);
                    rec.record(trace);
                    rec.mark_observed(version, version + 1);
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers.max(1))
        .map(|_| {
            let rec = Arc::clone(&rec);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut iters = 0u64;
                // ordering: Relaxed — plain stop flag; no data is
                // transferred through it.
                while !done.load(Ordering::Relaxed) {
                    let (traces, _lost) = rec.snapshot();
                    assert!(traces.len() <= cap, "ring never exceeds capacity");
                    for t in &traces {
                        // An observed trace carries the stamp both in the
                        // field and as a closing span.
                        if let Some(at) = t.first_observed_ns {
                            assert_eq!(at, t.version + 1);
                            assert_eq!(t.stage_ns("first_observation"), Some(1));
                        }
                        let _ = rec.trace(t.version);
                        let _ = t.to_json();
                    }
                    let _ = rec.latest(3);
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    // ordering: Relaxed — see the reader loop; writer joins already
    // happened-before this store.
    done.store(true, Ordering::Relaxed);
    for h in reader_handles {
        assert!(h.join().unwrap() > 0, "readers must have snapshotted");
    }

    // Exact accounting once quiescent: retained + lost == recorded.
    let (traces, lost) = rec.snapshot();
    let pushed = records * writers as u64;
    assert_eq!(traces.len() as u64 + lost, pushed);
    assert_eq!(traces.len(), cap.min(pushed as usize));
    // Every retained trace was observed exactly once, by its writer.
    for t in &traces {
        assert_eq!(t.first_observed_ns, Some(t.version + 1));
    }
    // A second observation of a retained version is a no-op.
    let newest = traces.last().expect("non-empty ring").version;
    assert!(!rec.mark_observed(newest, 12345));
}
