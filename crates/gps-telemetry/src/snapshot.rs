//! [`TelemetrySnapshot`]: the immutable capture of a [`crate::Registry`],
//! with the stable-subset filter, text/JSON exposition, and a
//! fingerprint for reproducibility pinning.

use crate::metric::{bucket_upper_bound, Stability, BUCKETS};
use crate::ring::Event;
use std::fmt::Write as _;

/// One counter at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Registered metric name.
    pub name: String,
    /// Determinism class declared at registration.
    pub stability: Stability,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Registered metric name.
    pub name: String,
    /// Determinism class declared at registration.
    pub stability: Stability,
    /// Level at snapshot time.
    pub value: u64,
}

/// One histogram at snapshot time — a consistent `(count, sum, buckets)`
/// triple copied under the seqlock read protocol, so
/// `buckets.iter().sum() == count` always holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Registered metric name.
    pub name: String,
    /// Determinism class declared at registration.
    pub stability: Stability,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket sample counts (see [`crate::bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

/// An immutable capture of a registry: metrics sorted by name, the
/// retained event window, and the event-loss count.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events dropped because the ring was full.
    pub events_lost: u64,
}

impl TelemetrySnapshot {
    /// The deterministic subset: only [`Stability::Stable`] metrics, no
    /// events. In a threaded engine the event ring interleaves shard
    /// threads nondeterministically (and timing-class gauges measure
    /// scheduling), so reproducibility suites pin `stable()` — equal
    /// bit-for-bit across same-seed runs. Single-threaded producers
    /// (gps-sim) can pin the full snapshot instead.
    pub fn stable(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.stability == Stability::Stable)
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| g.stability == Stability::Stable)
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.stability == Stability::Stable)
                .cloned()
                .collect(),
            events: Vec::new(),
            events_lost: 0,
        }
    }

    /// Look up a counter's value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge's level by name.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a histogram sample by name.
    pub fn histogram_sample(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Prometheus-style text exposition.
    ///
    /// Histograms emit cumulative `_bucket{le="…"}` lines only at
    /// occupied buckets (plus the mandatory `+Inf`), `le` being the
    /// bucket's inclusive upper bound. Events are emitted as trailing
    /// `# event` comment lines, and the loss count as a real counter
    /// (`gps_telemetry_events_lost_total`) so scrapers see it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            let _ = writeln!(out, "{} {}", g.name, g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0u64;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    h.name,
                    bucket_upper_bound(b),
                    cumulative
                );
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        let _ = writeln!(out, "# TYPE gps_telemetry_events_lost_total counter");
        let _ = writeln!(out, "gps_telemetry_events_lost_total {}", self.events_lost);
        for e in &self.events {
            let shard = match e.shard {
                Some(s) => s.to_string(),
                None => "-".to_string(),
            };
            let epoch = match e.epoch {
                Some(v) => v.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "# event at={} kind={} shard={} epoch={} detail={}",
                e.at,
                e.kind.as_str(),
                shard,
                epoch,
                e.detail
            );
        }
        out
    }

    /// Minimal JSON rendering (hand-rolled; names are bare identifiers so
    /// no string escaping is needed). Histogram buckets are emitted
    /// sparsely as `[bucket_index, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"stability\":\"{}\",\"value\":{}}}",
                c.name,
                stability_str(c.stability),
                c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"stability\":\"{}\",\"value\":{}}}",
                g.name,
                stability_str(g.stability),
                g.value
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"stability\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                h.name,
                stability_str(h.stability),
                h.count,
                h.sum
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{}]", b, n);
            }
            out.push_str("]}");
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at\":{},\"kind\":\"{}\",\"shard\":{},\"epoch\":{},\"detail\":{}}}",
                e.at,
                e.kind.as_str(),
                match e.shard {
                    Some(s) => s.to_string(),
                    None => "null".to_string(),
                },
                match e.epoch {
                    Some(v) => v.to_string(),
                    None => "null".to_string(),
                },
                e.detail
            );
        }
        let _ = write!(out, "],\"events_lost\":{}}}", self.events_lost);
        out
    }

    /// FNV-1a hash of the text exposition — a stable 64-bit digest for
    /// reproducibility suites (`a.stable().fingerprint() ==
    /// b.stable().fingerprint()` pins the deterministic subset without
    /// storing the full rendering).
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_text().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

fn stability_str(s: Stability) -> &'static str {
    match s {
        Stability::Stable => "stable",
        Stability::Timing => "timing",
    }
}

#[cfg(test)]
mod tests {
    use crate::metric::Stability;
    use crate::registry::Registry;
    use crate::ring::{Event, EventKind};

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("gps_demo_arrivals_total", Stability::Stable)
            .add(10);
        reg.counter("gps_demo_drops_total", Stability::Timing)
            .add(2);
        reg.gauge("gps_demo_depth", Stability::Timing).set(5);
        let h = reg.histogram("gps_demo_latency_ns", Stability::Stable);
        h.record(0);
        h.record(3);
        h.record(3);
        reg.event(Event {
            at: 7,
            kind: EventKind::DegradedEpoch,
            shard: None,
            epoch: Some(3),
            detail: 1,
        });
        reg
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample_registry().snapshot().to_text();
        assert!(text.contains("# TYPE gps_demo_arrivals_total counter"));
        assert!(text.contains("gps_demo_arrivals_total 10"));
        assert!(text.contains("# TYPE gps_demo_depth gauge"));
        // 0 lands in bucket 0 (le="0"), the two 3s in bucket 2 (le="3");
        // cumulative counts: 1 then 3.
        assert!(text.contains("gps_demo_latency_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("gps_demo_latency_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("gps_demo_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gps_demo_latency_ns_sum 6"));
        assert!(text.contains("gps_demo_latency_ns_count 3"));
        assert!(text.contains("gps_telemetry_events_lost_total 0"));
        assert!(text.contains("# event at=7 kind=degraded_epoch shard=- epoch=3 detail=1"));
    }

    #[test]
    fn json_exposition_shape() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(
            "\"name\":\"gps_demo_arrivals_total\",\"stability\":\"stable\",\"value\":10"
        ));
        assert!(json.contains("\"count\":3,\"sum\":6,\"buckets\":[[0,1],[2,2]]"));
        assert!(
            json.contains("\"kind\":\"degraded_epoch\",\"shard\":null,\"epoch\":3,\"detail\":1")
        );
        assert!(json.contains("\"events_lost\":0"));
    }

    #[test]
    fn stable_filters_timing_and_events() {
        let snap = sample_registry().snapshot();
        let stable = snap.stable();
        assert_eq!(stable.counters.len(), 1);
        assert_eq!(stable.counters[0].name, "gps_demo_arrivals_total");
        assert!(stable.gauges.is_empty());
        assert_eq!(stable.histograms.len(), 1);
        assert!(stable.events.is_empty());
        // Lookup helpers resolve on both views.
        assert_eq!(snap.counter_value("gps_demo_drops_total"), Some(2));
        assert_eq!(stable.counter_value("gps_demo_drops_total"), None);
        assert_eq!(snap.gauge_value("gps_demo_depth"), Some(5));
        assert_eq!(
            stable
                .histogram_sample("gps_demo_latency_ns")
                .map(|h| h.count),
            Some(3)
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let reg = sample_registry();
        reg.counter("gps_demo_arrivals_total", Stability::Stable)
            .incr();
        assert_ne!(reg.snapshot().fingerprint(), a.fingerprint());
    }
}
