//! The [`Registry`]: named metric handles plus the event ring, with a
//! consistent snapshot path.

use crate::metric::{Counter, Gauge, Histogram, Stability};
use crate::ring::{Event, EventRing};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, TelemetrySnapshot};
use std::sync::Mutex;

/// A named collection of metrics and an event ring.
///
/// Registration is mutex-guarded and idempotent by name: registering the
/// same name twice returns a handle to the *same* cell (the first
/// registration's [`Stability`] wins), so a worker respawned after a
/// crash keeps accumulating into the original counter. Recording through
/// a handle never takes the registry lock — handles are `Arc`-backed
/// atomics — so the hot path stays lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Stability, Counter)>>,
    gauges: Mutex<Vec<(String, Stability, Gauge)>>,
    histograms: Mutex<Vec<(String, Stability, Histogram)>>,
    ring: EventRing,
}

fn lock_entries<T>(slot: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
    match slot.lock() {
        Ok(g) => g,
        // Registration writes plain (String, enum, Arc) tuples; a panic
        // mid-push cannot leave them torn, so the poisoned list is usable.
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// An empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose event ring holds at most `cap` events.
    pub fn with_event_capacity(cap: usize) -> Self {
        Registry {
            ring: EventRing::with_capacity(cap),
            ..Registry::default()
        }
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &str, stability: Stability) -> Counter {
        let mut entries = lock_entries(&self.counters);
        if let Some((_, _, handle)) = entries.iter().find(|(n, _, _)| n == name) {
            return handle.clone();
        }
        let handle = Counter::default();
        entries.push((name.to_string(), stability, handle.clone()));
        handle
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str, stability: Stability) -> Gauge {
        let mut entries = lock_entries(&self.gauges);
        if let Some((_, _, handle)) = entries.iter().find(|(n, _, _)| n == name) {
            return handle.clone();
        }
        let handle = Gauge::default();
        entries.push((name.to_string(), stability, handle.clone()));
        handle
    }

    /// Register (or fetch) the histogram `name`.
    pub fn histogram(&self, name: &str, stability: Stability) -> Histogram {
        let mut entries = lock_entries(&self.histograms);
        if let Some((_, _, handle)) = entries.iter().find(|(n, _, _)| n == name) {
            return handle.clone();
        }
        let handle = Histogram::default();
        entries.push((name.to_string(), stability, handle.clone()));
        handle
    }

    /// Append a structured event to the ring.
    pub fn event(&self, event: Event) {
        self.ring.push(event);
    }

    /// Capture a [`TelemetrySnapshot`]: every metric sampled through its
    /// tear-free read path, events copied out, all sections sorted by
    /// name so same-state registries render identically.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: Vec<CounterSample> = lock_entries(&self.counters)
            .iter()
            .map(|(name, stability, handle)| CounterSample {
                name: name.clone(),
                stability: *stability,
                value: handle.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));

        let mut gauges: Vec<GaugeSample> = lock_entries(&self.gauges)
            .iter()
            .map(|(name, stability, handle)| GaugeSample {
                name: name.clone(),
                stability: *stability,
                value: handle.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));

        let mut histograms: Vec<HistogramSample> = lock_entries(&self.histograms)
            .iter()
            .map(|(name, stability, handle)| {
                let (count, sum, buckets) = handle.sample();
                HistogramSample {
                    name: name.clone(),
                    stability: *stability,
                    count,
                    sum,
                    buckets,
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));

        let (events, events_lost) = self.ring.snapshot();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            events,
            events_lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x_total", Stability::Stable);
        let b = reg.counter("x_total", Stability::Timing);
        a.add(3);
        b.add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 7);
        // First registration's stability class wins.
        assert_eq!(snap.counters[0].stability, Stability::Stable);
    }

    #[test]
    fn snapshot_sections_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zzz_total", Stability::Stable).incr();
        reg.counter("aaa_total", Stability::Stable).incr();
        reg.histogram("mid_ns", Stability::Stable).record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "aaa_total");
        assert_eq!(snap.counters[1].name, "zzz_total");
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn events_flow_into_snapshot() {
        let reg = Registry::with_event_capacity(4);
        reg.event(Event {
            at: 9,
            kind: EventKind::ShardRestart,
            shard: Some(2),
            epoch: None,
            detail: 0,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, EventKind::ShardRestart);
        assert_eq!(snap.events_lost, 0);
    }
}
