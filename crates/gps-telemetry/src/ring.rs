//! Bounded structured-event ring with an explicit loss counter.
//!
//! Events are coarse state transitions (a shard restarted, an epoch went
//! degraded, a checkpoint was written) — rare enough that a mutex-guarded
//! ring is fine off the hot path, and bounded so a misbehaving run cannot
//! grow memory without bound. When the ring is full the **oldest** event
//! is dropped and `events_lost` is incremented, so consumers always know
//! the window is incomplete rather than silently seeing a gap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity. Generous for the event rates in this repo
/// (restarts + checkpoints + epoch transitions), small enough to bound
/// memory at a few KiB.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// What happened. Variants cover the state transitions the engine, serve
/// layer, and simulator report; `as_str` names are stable identifiers
/// used by both exposition formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A shard worker died and was respawned by the supervisor.
    ShardRestart,
    /// A shard wrote a checkpoint (detail = encoded bytes).
    CheckpointWrite,
    /// An epoch was published with at least one shard missing.
    DegradedEpoch,
    /// Publication returned to full membership after a degraded stretch.
    EpochRecovered,
    /// The serve gate timed out waiting for a laggard shard.
    GateExpiry,
    /// The simulator abandoned a straggler's stale report.
    StragglerAbandoned,
}

impl EventKind {
    /// Stable identifier for exposition output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::ShardRestart => "shard_restart",
            EventKind::CheckpointWrite => "checkpoint_write",
            EventKind::DegradedEpoch => "degraded_epoch",
            EventKind::EpochRecovered => "epoch_recovered",
            EventKind::GateExpiry => "gate_expiry",
            EventKind::StragglerAbandoned => "straggler_abandoned",
        }
    }
}

/// One structured event.
///
/// `at` is a caller-supplied timestamp in the caller's own time base —
/// the engine stamps arrival counts, the serve layer stamps clock-hook
/// nanoseconds, the simulator stamps virtual nanoseconds. The ring never
/// reads a wall clock itself, which is what keeps single-writer event
/// streams (like the simulator's) bit-reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-supplied timestamp (arrival count, clock-hook ns, or
    /// virtual ns — see type docs).
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// Originating shard, when the event is shard-scoped.
    pub shard: Option<u32>,
    /// Epoch version the event belongs to, when one is in scope at the
    /// emission site (publication-path events carry it; engine-side
    /// events that fire between epochs do not).
    pub epoch: Option<u64>,
    /// Kind-specific payload (bytes for checkpoints, missing-shard count
    /// for degraded epochs, zero when unused).
    pub detail: u64,
}

/// The bounded ring itself. Push is mutex-guarded (events are rare and
/// off the hot path); the loss counter is atomic so it can be read
/// without the lock.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    lost: AtomicU64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            lost: AtomicU64::new(0),
        }
    }

    /// Append an event, dropping (and counting) the oldest if full.
    pub fn push(&self, event: Event) {
        let mut guard = match self.events.lock() {
            Ok(g) => g,
            // A panicking event producer must not wedge telemetry; the
            // ring holds plain Copy data, so the poisoned state is usable.
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.len() == self.capacity {
            guard.pop_front();
            // ordering: Relaxed — single-word loss tally; readers need no
            // ordering between it and the ring contents (the snapshot
            // takes the lock anyway).
            self.lost.fetch_add(1, Ordering::Relaxed);
        }
        guard.push_back(event);
    }

    /// Copy out the retained events (oldest first) and the loss count.
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let guard = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let events = guard.iter().copied().collect();
        // ordering: Relaxed — see `push`; the lock already serialises the
        // snapshot against concurrent pushes.
        (events, self.lost.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts_loss() {
        let ring = EventRing::with_capacity(2);
        for i in 0..5u64 {
            ring.push(Event {
                at: i,
                kind: EventKind::CheckpointWrite,
                shard: Some(0),
                epoch: None,
                detail: i * 10,
            });
        }
        let (events, lost) = ring.snapshot();
        assert_eq!(lost, 3);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 3);
        assert_eq!(events[1].at, 4);
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            EventKind::ShardRestart,
            EventKind::CheckpointWrite,
            EventKind::DegradedEpoch,
            EventKind::EpochRecovered,
            EventKind::GateExpiry,
            EventKind::StragglerAbandoned,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }
}
