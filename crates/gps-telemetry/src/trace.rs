//! Epoch provenance tracing: per-epoch stage timelines and the bounded
//! flight recorder that retains recent ones.
//!
//! An [`EpochTrace`] answers "*why* was this epoch slow, degraded, or
//! lossy" — it records the pipeline timeline of one published epoch as
//! named [`StageSpan`]s (arrival batch → shard report → gate wait →
//! merge → seqlock publish → first subscriber observation) plus
//! point-in-time [`TraceMark`]s (one per contributing shard report) and
//! a [`TraceCause`] code naming why publication happened at all.
//!
//! All timestamps are **caller-supplied** in the caller's own time base
//! (the serve layer stamps clock-hook nanoseconds, the simulator stamps
//! virtual nanoseconds); this module never reads a wall clock, which is
//! what makes traces bit-reproducible under a manual clock and in
//! discrete-event simulation.
//!
//! The [`FlightRecorder`] is the trace analogue of [`crate::EventRing`]:
//! a bounded mutex-guarded ring that drops (and counts) the **oldest**
//! trace when full, so consumers always know the window is incomplete
//! rather than silently seeing a gap.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default flight-recorder capacity. Large enough to cover the recent
/// epochs an operator asks about, small enough to bound memory at a few
/// hundred KiB even with per-shard marks.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// Why an epoch was published — the degraded/partial-merge cause code.
///
/// `as_str` names are stable identifiers used by the JSON exposition and
/// pinned by reproducibility suites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCause {
    /// Every live shard contributed; the merge was complete.
    Full,
    /// The publication gate timed out waiting for a laggard shard and a
    /// partial merge was published instead.
    GateExpired,
    /// Shutdown forced a final publish from whatever had reported.
    ForcedClose,
    /// A partial merge outside the gate path (the simulator's degraded
    /// publishes, where some leaves had no report in flight).
    Partial,
}

impl TraceCause {
    /// Stable identifier for exposition output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCause::Full => "full",
            TraceCause::GateExpired => "gate_expired",
            TraceCause::ForcedClose => "forced_close",
            TraceCause::Partial => "partial",
        }
    }
}

/// One named stage interval inside an epoch's pipeline timeline.
///
/// Stage names are `'static` literals registered at exactly one library
/// call site and documented in `docs/observability.md` (the
/// `gps-analyze` name-registry rule enforces both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name from the documented catalog.
    pub stage: &'static str,
    /// Caller-supplied start timestamp (ns in the caller's time base).
    pub start_ns: u64,
    /// Caller-supplied end timestamp; `end_ns >= start_ns`.
    pub end_ns: u64,
    /// Stage-specific payload (arrivals in the batch, contributing-shard
    /// count, subscriber fan-out, zero when unused).
    pub detail: u64,
}

impl StageSpan {
    /// The span's duration (saturating, so a clock that never advances
    /// yields zero rather than wrapping).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One point-in-time annotation inside an epoch's timeline — e.g. the
/// instant a contributing shard's report landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMark {
    /// Mark name from the documented catalog.
    pub name: &'static str,
    /// Caller-supplied timestamp (ns in the caller's time base).
    pub at_ns: u64,
    /// Originating shard, when shard-scoped.
    pub shard: Option<u32>,
    /// Mark-specific payload (arrivals at report time, zero when unused).
    pub detail: u64,
}

/// The provenance record of one published epoch (stage catalog and
/// determinism classes: docs/observability.md).
#[derive(Clone, Debug, PartialEq)]
pub struct EpochTrace {
    /// Epoch version this trace describes.
    pub version: u64,
    /// Total edges routed when the epoch was published.
    pub edges_seen: u64,
    /// Configured shard count.
    pub shards: u32,
    /// Bitmask of contributing shards (bit `min(shard, 63)`).
    pub contributing: u64,
    /// Why publication happened.
    pub cause: TraceCause,
    /// Newest-minus-oldest contributing report instant: how spread out
    /// the merged shard states were.
    pub report_skew_ns: u64,
    /// Instant the epoch became visible to readers (seqlock publish).
    pub published_at_ns: u64,
    /// Instant the first subscriber/reader observed it, once marked via
    /// [`FlightRecorder::mark_observed`].
    pub first_observed_ns: Option<u64>,
    /// Stage intervals, in pipeline order.
    pub spans: Vec<StageSpan>,
    /// Point annotations (per-shard report marks), in insertion order.
    pub marks: Vec<TraceMark>,
}

impl EpochTrace {
    /// A trace with the identity fields filled and an empty timeline.
    pub fn new(version: u64, edges_seen: u64, shards: u32, contributing: u64) -> Self {
        EpochTrace {
            version,
            edges_seen,
            shards,
            contributing,
            cause: TraceCause::Full,
            report_skew_ns: 0,
            published_at_ns: 0,
            first_observed_ns: None,
            spans: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Record one stage interval. `name` must be a documented catalog
    /// literal (see [`StageSpan`]); call sites are linted.
    pub fn stage(&mut self, name: &'static str, start_ns: u64, end_ns: u64, detail: u64) {
        self.spans.push(StageSpan {
            stage: name,
            start_ns,
            end_ns: end_ns.max(start_ns),
            detail,
        });
    }

    /// Record one point annotation. `name` must be a documented catalog
    /// literal (see [`TraceMark`]); call sites are linted.
    pub fn mark(&mut self, name: &'static str, at_ns: u64, shard: Option<u32>, detail: u64) {
        self.marks.push(TraceMark {
            name,
            at_ns,
            shard,
            detail,
        });
    }

    /// Look up a stage span by name.
    pub fn span(&self, stage: &str) -> Option<&StageSpan> {
        self.spans.iter().find(|s| s.stage == stage)
    }

    /// A stage's duration, if it was recorded.
    pub fn stage_ns(&self, stage: &str) -> Option<u64> {
        self.span(stage).map(StageSpan::duration_ns)
    }

    /// True when at least one configured shard did not contribute.
    pub fn degraded(&self) -> bool {
        self.contributing.count_ones() < self.shards
    }

    /// Shard ids that did **not** contribute to this epoch (by bitmask;
    /// shards above 63 share bit 63, mirroring the serve layer's mask).
    pub fn missing_shards(&self) -> Vec<u32> {
        (0..self.shards)
            .filter(|&s| self.contributing & (1u64 << s.min(63)) == 0)
            .collect()
    }

    /// Minimal JSON rendering (hand-rolled; stage and cause names are
    /// bare identifiers so no string escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"version\":{},\"edges_seen\":{},\"shards\":{},\"contributing\":{},\
             \"cause\":\"{}\",\"degraded\":{},\"report_skew_ns\":{},\"published_at_ns\":{},\
             \"first_observed_ns\":{}",
            self.version,
            self.edges_seen,
            self.shards,
            self.contributing,
            self.cause.as_str(),
            self.degraded(),
            self.report_skew_ns,
            self.published_at_ns,
            match self.first_observed_ns {
                Some(ns) => ns.to_string(),
                None => "null".to_string(),
            }
        );
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"detail\":{}}}",
                s.stage, s.start_ns, s.end_ns, s.detail
            );
        }
        out.push_str("],\"marks\":[");
        for (i, m) in self.marks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"at_ns\":{},\"shard\":{},\"detail\":{}}}",
                m.name,
                m.at_ns,
                match m.shard {
                    Some(s) => s.to_string(),
                    None => "null".to_string(),
                },
                m.detail
            );
        }
        out.push_str("]}");
        out
    }

    /// FNV-1a hash of the JSON rendering — a 64-bit digest for folding a
    /// trace stream into reproducibility fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Bounded ring of recent [`EpochTrace`]s with an explicit loss counter:
/// recording when full evicts the oldest trace and counts it, like the
/// event ring's lossy-counted retention contract.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    traces: Mutex<VecDeque<EpochTrace>>,
    lost: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` traces (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            traces: Mutex::new(VecDeque::with_capacity(capacity)),
            lost: AtomicU64::new(0),
        }
    }

    /// Maximum retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a trace, dropping (and counting) the oldest if full.
    pub fn record(&self, trace: EpochTrace) {
        let mut guard = self.locked();
        if guard.len() == self.capacity {
            guard.pop_front();
            // ordering: Relaxed — single-word loss tally; readers take
            // the lock for trace contents anyway, mirroring `EventRing`.
            self.lost.fetch_add(1, Ordering::Relaxed);
        }
        guard.push_back(trace);
    }

    /// Traces dropped because the ring was full.
    pub fn lost(&self) -> u64 {
        // ordering: Relaxed — see `record`.
        self.lost.load(Ordering::Relaxed)
    }

    /// The retained trace for `version`, if it has not been evicted.
    pub fn trace(&self, version: u64) -> Option<EpochTrace> {
        self.locked().iter().find(|t| t.version == version).cloned()
    }

    /// The last `n` retained traces, oldest first.
    pub fn latest(&self, n: usize) -> Vec<EpochTrace> {
        let guard = self.locked();
        let skip = guard.len().saturating_sub(n);
        guard.iter().skip(skip).cloned().collect()
    }

    /// Copy out every retained trace (oldest first) and the loss count.
    pub fn snapshot(&self) -> (Vec<EpochTrace>, u64) {
        let guard = self.locked();
        let traces = guard.iter().cloned().collect();
        // ordering: Relaxed — see `record`; the lock already serialises
        // the snapshot against concurrent records.
        (traces, self.lost.load(Ordering::Relaxed))
    }

    /// Stamp the first observation of `version` at `at_ns`: records the
    /// final pipeline stage (publish instant → first reader) exactly
    /// once. Returns `true` if this call was the first observation of a
    /// retained trace.
    pub fn mark_observed(&self, version: u64, at_ns: u64) -> bool {
        let mut guard = self.locked();
        let Some(trace) = guard.iter_mut().rev().find(|t| t.version == version) else {
            return false;
        };
        if trace.first_observed_ns.is_some() {
            return false;
        }
        trace.first_observed_ns = Some(at_ns);
        let published = trace.published_at_ns;
        trace.stage("first_observation", published, at_ns, 0);
        true
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<EpochTrace>> {
        match self.traces.lock() {
            Ok(g) => g,
            // A panicking recorder client must not wedge tracing; traces
            // are plain owned data, so the poisoned state is usable.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(version: u64) -> EpochTrace {
        let mut t = EpochTrace::new(version, version * 100, 2, 0b11);
        t.stage("demo_stage", 10, 25, 7);
        t.mark("demo_mark", 12, Some(1), 64);
        t.published_at_ns = 25;
        t
    }

    #[test]
    fn recorder_drops_oldest_and_counts_loss() {
        let rec = FlightRecorder::with_capacity(2);
        for v in 1..=5 {
            rec.record(trace(v));
        }
        let (traces, lost) = rec.snapshot();
        assert_eq!(lost, 3);
        assert_eq!(
            traces.iter().map(|t| t.version).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert!(rec.trace(3).is_none());
        assert_eq!(rec.trace(5).map(|t| t.edges_seen), Some(500));
        assert_eq!(
            rec.latest(1).iter().map(|t| t.version).collect::<Vec<_>>(),
            vec![5]
        );
    }

    #[test]
    fn mark_observed_is_first_wins_and_appends_the_final_stage() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(trace(1));
        assert!(rec.mark_observed(1, 40));
        assert!(!rec.mark_observed(1, 99), "second observation is a no-op");
        assert!(!rec.mark_observed(2, 40), "unknown version is a no-op");
        let t = rec.trace(1).unwrap();
        assert_eq!(t.first_observed_ns, Some(40));
        let obs = t.span("first_observation").unwrap();
        assert_eq!((obs.start_ns, obs.end_ns, obs.duration_ns()), (25, 40, 15));
    }

    #[test]
    fn degraded_traces_name_the_missing_shards() {
        let mut t = EpochTrace::new(7, 700, 4, 0b0101);
        t.cause = TraceCause::GateExpired;
        assert!(t.degraded());
        assert_eq!(t.missing_shards(), vec![1, 3]);
        assert_eq!(t.cause.as_str(), "gate_expired");
        let full = EpochTrace::new(8, 800, 2, 0b11);
        assert!(!full.degraded());
        assert!(full.missing_shards().is_empty());
    }

    #[test]
    fn json_shape_and_fingerprint_track_content() {
        let t = trace(3);
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"version\":3,\"edges_seen\":300,\"shards\":2,\"contributing\":3"));
        assert!(json.contains("\"cause\":\"full\",\"degraded\":false"));
        assert!(json.contains(
            "\"spans\":[{\"stage\":\"demo_stage\",\"start_ns\":10,\"end_ns\":25,\"detail\":7}]"
        ));
        assert!(json.contains(
            "\"marks\":[{\"name\":\"demo_mark\",\"at_ns\":12,\"shard\":1,\"detail\":64}]"
        ));
        assert!(json.contains("\"first_observed_ns\":null"));
        assert_eq!(t.fingerprint(), trace(3).fingerprint());
        assert_ne!(t.fingerprint(), trace(4).fingerprint());
    }

    #[test]
    fn spans_never_run_backwards() {
        let mut t = EpochTrace::new(1, 0, 1, 1);
        t.stage("demo_stage", 50, 20, 0);
        assert_eq!(t.spans[0].end_ns, 50);
        assert_eq!(t.stage_ns("demo_stage"), Some(0));
        assert_eq!(t.stage_ns("absent"), None);
    }
}
