//! Metric primitives: [`Counter`], [`Gauge`], and the log2-bucketed
//! [`Histogram`] with its multi-writer seqlock snapshot protocol.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `b`
/// (1..=64) holds values whose highest set bit is `b - 1`, i.e. the range
/// `2^(b-1) ..= 2^b - 1`.
pub const BUCKETS: usize = 65;

/// Determinism class of a metric, declared at registration time.
///
/// The reproducibility suites pin only [`Stability::Stable`] metrics
/// (via [`crate::TelemetrySnapshot::stable`]); timing-class metrics are
/// still recorded and exposed but excluded from bit-identity assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stability {
    /// A pure function of seed + configuration + fault plan: identical on
    /// every same-seed run regardless of thread scheduling.
    Stable,
    /// Depends on thread scheduling or wall-clock gates (queue high-water
    /// marks, wall-mode staleness): real on any given run, but not
    /// reproducible bit-for-bit.
    Timing,
}

/// Bucket index for a recorded value: 0 for zero, else `64 - leading_zeros`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `b` (the Prometheus `le` label).
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A monotone event counter. Cloning shares the underlying cell, so a
/// handle can be captured by worker threads while the registry snapshots.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — a single-word monotone count published on its
        // own; no other memory is transferred with it, so no release edge
        // is needed.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — one-word read cannot tear and the snapshot
        // makes no cross-metric consistency promise for counters.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or high-water) level. Same single-word model as
/// [`Counter`], but not monotone under [`Gauge::set`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — single word, no payload travels with it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level to `v` if `v` is higher (high-water mark).
    pub fn record_max(&self, v: u64) {
        // ordering: Relaxed — fetch_max is atomic on the one word; the
        // high-water mark needs no ordering against other memory.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — one-word read cannot tear.
        self.0.load(Ordering::Relaxed)
    }
}

/// Payload + sequence word for one histogram. `count`, `sum`, and the 65
/// buckets are a multi-word record, so readers must not observe a half
/// -applied sample; the `seq` word runs the same seqlock protocol as
/// `gps-serve`'s `EpochCell` (see module docs in `lib.rs`).
#[derive(Debug)]
struct HistogramInner {
    seq: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A log2-bucketed histogram of `u64` samples (durations in ns, byte
/// sizes, interval lengths). Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            seq: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// Record one sample.
    ///
    /// Writer side of the seqlock. `EpochCell` has one writer and stores
    /// the odd sequence directly; histograms have many writers, so the
    /// odd transition is a CAS that doubles as the writer lock. From the
    /// reader's point of view the protocol is identical: sequence goes
    /// odd, payload mutates, sequence returns even one step higher.
    pub fn record(&self, value: u64) {
        let b = bucket_of(value);
        loop {
            // ordering: Relaxed — this load only seeds the CAS below; the
            // CAS success ordering is what establishes the critical
            // section, so a stale read here just costs a retry.
            let seq = self.0.seq.load(Ordering::Relaxed);
            if seq & 1 == 0
                // ordering: Acquire on success — taking the sequence odd
                // enters the writer critical section, and the payload
                // updates below must not be reordered above it (and must
                // observe the previous writer's updates, which the
                // previous Release publish made visible to this Acquire).
                // Relaxed on failure — a lost race is just a retry.
                && self
                    .0
                    .seq
                    // ordering: Acquire/Relaxed — justified in the block above.
                    .compare_exchange_weak(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            std::hint::spin_loop();
        }
        // ordering: Relaxed (all three) — payload words inside the seqlock
        // critical section; the odd/even sequence protocol, not per-word
        // ordering, is what keeps readers from observing a torn sample.
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed); // ordering: see above
        self.0.buckets[b].fetch_add(1, Ordering::Relaxed); // ordering: see above
                                                           // ordering: Release — returning the sequence to even publishes the
                                                           // payload updates above: a reader whose second sequence read sees
                                                           // this value also sees every payload store that preceded it.
        self.0.seq.fetch_add(1, Ordering::Release);
    }

    /// Copy out a consistent `(count, sum, buckets)` triple.
    ///
    /// Reader side of the seqlock — line for line the `EpochCell::read`
    /// protocol that the interleave checker verifies: Acquire the
    /// sequence, skip if odd, copy the payload relaxed, Acquire-fence,
    /// recheck the sequence, retry on mismatch.
    pub fn sample(&self) -> (u64, u64, [u64; BUCKETS]) {
        loop {
            // ordering: Acquire — pairs with the writer's Release on the
            // even store; the payload reads below cannot float above this
            // load, so they see at least the payload of the observed
            // sequence value.
            let s1 = self.0.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // ordering: Relaxed (payload copies) — torn values are
            // possible mid-write and are discarded by the recheck below;
            // the seqlock protocol supplies the consistency.
            let count = self.0.count.load(Ordering::Relaxed);
            let sum = self.0.sum.load(Ordering::Relaxed); // ordering: see above
            let mut buckets = [0u64; BUCKETS];
            for (slot, bucket) in buckets.iter_mut().zip(self.0.buckets.iter()) {
                // ordering: Relaxed — same payload-copy rationale as above.
                *slot = bucket.load(Ordering::Relaxed);
            }
            // ordering: Acquire fence — the payload loads above cannot be
            // reordered past the recheck load below, so an unchanged
            // sequence proves the copy spans no writer critical section.
            fence(Ordering::Acquire);
            // ordering: Relaxed — the fence above already orders this load
            // after the payload copies; equality with s1 validates them.
            let s2 = self.0.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return (count, sum, buckets);
            }
        }
    }

    /// Total number of recorded samples (consistent with a full sample).
    pub fn count(&self) -> u64 {
        self.sample().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 5, 100, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let shared = c.clone();
        shared.incr();
        assert_eq!(c.get(), 6);

        let g = Gauge::default();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_totals_consistent() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 1000, 1 << 33] {
            h.record(v);
        }
        let (count, sum, buckets) = h.sample();
        assert_eq!(count, 6);
        assert_eq!(sum, 1005 + (1 << 33));
        assert_eq!(buckets.iter().sum::<u64>(), count);
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 2); // the two ones
        assert_eq!(buckets[2], 1); // the three
    }
}
