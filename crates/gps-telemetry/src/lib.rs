//! # gps-telemetry — deterministic runtime metrics for the GPS stack
//!
//! The engine's `EngineHealth` ledger and the bench JSON are *post-hoc*:
//! an operator of a live `ServeEngine` cannot see ingest rate, queue
//! depth, checkpoint cost, or degraded-mode transitions while they
//! happen. This crate is the missing substrate: a [`Registry`] of named
//! atomic [`Counter`]s, [`Gauge`]s, and log2-bucketed [`Histogram`]s, plus
//! a bounded, lossy-counted structured [`EventRing`], snapshotted into an
//! immutable [`TelemetrySnapshot`] with Prometheus-style text and JSON
//! renderers. Per-epoch provenance lives next door: an [`EpochTrace`]
//! records one epoch's pipeline stage timeline and the [`FlightRecorder`]
//! ring retains the recent ones (see [`trace`](crate::EpochTrace)).
//!
//! ## Concurrency model
//!
//! Recording is wait-free-ish and never blocks a reader:
//!
//! - Counters and gauges are single `AtomicU64` words — a relaxed RMW can
//!   not tear, so snapshots read them directly.
//! - A histogram records three-plus words (bucket, count, sum) per sample,
//!   so it publishes under the **same seqlock discipline as the verified
//!   `EpochCell`** in `gps-serve`: the writer takes the sequence word odd,
//!   mutates the payload with relaxed stores, and releases it even; the
//!   reader copies the payload between two equal even sequence reads. The
//!   one extension over `EpochCell` is the writer side: histograms have
//!   many writers, so "go odd" is a CAS (even → odd) that doubles as a
//!   writer lock. The reader protocol is *unchanged* from the model the
//!   `gps-analyze interleave` suite exhaustively verifies — see
//!   `docs/observability.md` for the line-by-line correspondence.
//!
//! ## Determinism
//!
//! Nothing in this crate reads a wall clock. Every recorded value is a
//! count or a caller-supplied duration (the serve clock hook, the sim's
//! virtual clock), so a metric is exactly as deterministic as its writer.
//! Each metric is registered with a [`Stability`] class:
//! [`Stability::Stable`] values are pure functions of seed + fault plan
//! and are pinned bit-identically by the reproducibility suites via
//! [`TelemetrySnapshot::stable`]; [`Stability::Timing`] values
//! (queue high-water marks, wall-gate staleness) may vary with thread
//! scheduling and are excluded from the stable view.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metric;
mod registry;
mod ring;
mod snapshot;
mod trace;

pub use metric::{bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, Stability, BUCKETS};
pub use registry::Registry;
pub use ring::{Event, EventKind, EventRing, DEFAULT_EVENT_CAPACITY};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, TelemetrySnapshot};
pub use trace::{
    EpochTrace, FlightRecorder, StageSpan, TraceCause, TraceMark, DEFAULT_TRACE_CAPACITY,
};
