//! Reproduces paper **Table 2**: baseline comparison (NSAMP, TRIEST,
//! MASCOT, GPS post-stream) at equal stored-edge budgets — absolute relative
//! error and measured µs/edge.
//!
//! Usage: `cargo run -p gps-bench --release --bin table2 [--scale S] [--seed N] [--out DIR]`

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let runs = 3;
    eprintln!(
        "table2: scale={} seed={} m={} runs={runs}",
        cfg.scale,
        cfg.seed,
        experiments::table2_capacity(&cfg)
    );
    let table = experiments::table2(&cfg, runs);
    experiments::emit(
        &cfg,
        "Table 2 — baseline comparison (ARE + update time)",
        "table2.tsv",
        &table,
    );
}
