//! Reproduces paper **Table 1**: GPS post-stream vs in-stream estimates of
//! triangle counts, wedge counts and global clustering with 95% bounds, on
//! the 11 Table-1 workloads.
//!
//! Usage: `cargo run -p gps-bench --release --bin table1 [--scale S] [--seed N] [--out DIR] [--shards N]`
//!
//! With `--shards N > 1` (default 4) every graph gains `<graph>@SN` rows
//! from the sharded `gps-engine` run at the same total budget — the
//! accuracy side of the sharding tradeoff; pass `--shards 1` for the
//! single-reservoir table only.

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let runs = 5;
    eprintln!(
        "table1: scale={} seed={} m={} runs={runs} shards={}",
        cfg.scale,
        cfg.seed,
        experiments::table1_capacity(&cfg),
        cfg.shards
    );
    let table = experiments::table1(&cfg, runs);
    experiments::emit(
        &cfg,
        "Table 1 — GPS in-stream vs post-stream estimation",
        "table1.tsv",
        &table,
    );
}
