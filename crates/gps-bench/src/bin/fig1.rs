//! Reproduces paper **Figure 1**: the x̂/x scatter — estimated over actual
//! counts for triangles and wedges simultaneously from a single GPS sample
//! per graph (in-stream estimation).
//!
//! Usage: `cargo run -p gps-bench --release --bin fig1 [--scale S] [--seed N] [--out DIR]`

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let runs = 3;
    eprintln!(
        "fig1: scale={} seed={} m={} runs={runs}",
        cfg.scale,
        cfg.seed,
        experiments::table2_capacity(&cfg)
    );
    let table = experiments::fig1(&cfg, runs);
    experiments::emit(
        &cfg,
        "Figure 1 — x\u{302}/x for triangles and wedges",
        "fig1.tsv",
        &table,
    );
}
