//! `bench_baseline` — the repo's reproducible `GPSUpdate` perf harness.
//!
//! Runs the update-throughput scenario grid (weights × streams × reservoir
//! sizes) on **both** adjacency backends and writes a machine-readable
//! baseline (`BENCH_PR2.json` by default) so every future perf PR has a
//! trajectory to beat.
//!
//! ```text
//! bench_baseline [--quick] [--iters N] [--seed N] [--out PATH]
//!                [--baselines] [--engine] [--serve] [--chaos] [--sim]
//!                [--telemetry] [--trace] [--check PATH [--min-ratio R]]
//! ```
//!
//! - `--quick`: reduced streams and capacities (CI smoke scale).
//! - `--out PATH`: where to write the baseline (default `BENCH_PR2.json`).
//! - `--baselines`: additionally measure the ported `gps-baselines`
//!   samplers on both adjacency backends and include the grid in the
//!   output document (`baseline_samplers` section; see docs/benchmarks.md).
//! - `--engine`: additionally measure the `gps-engine` sharded ingest at
//!   S ∈ {1, 2, 4, 8} shards and include the scaling grid in the output
//!   document (`engine` section; schema stays v1-compatible).
//! - `--serve`: additionally measure `gps-serve` live-serving ingest at
//!   0/1/4 concurrent reader threads, with epoch staleness (`serve`
//!   section; schema stays v1-compatible).
//! - `--chaos`: additionally measure crash recovery at S ∈ {2, 4} shards —
//!   clean vs faulted ingest with a scripted mid-stream panic + checkpoint
//!   restore, exact arrivals-lost/restart counts from the engine's
//!   incident ledger, and the degraded-epoch count of a gated serving
//!   probe under a scripted stall (`chaos` section; schema stays
//!   v1-compatible).
//! - `--sim`: additionally run the `gps-sim` discrete-event scale-out
//!   sweep — S ∈ {16, 64, 256} simulated shard-nodes (quick: {16, 64}) ×
//!   keyspace skew × fault scenario, in virtual time over the production
//!   sampler/estimator/merge code (`sim` section; schema stays
//!   v1-compatible and the numbers are bit-deterministic per seed).
//! - `--telemetry`: additionally capture the engine's deterministic
//!   `Stable`-class telemetry counters from one clean, checkpointed run,
//!   plus the fingerprint that pins the whole stable snapshot
//!   (`telemetry` section; schema stays v1-compatible and `--check`
//!   validates its shape).
//! - `--trace`: additionally capture per-stage epoch latency attribution
//!   (p50/p99 per pipeline stage) from the serving stack's flight
//!   recorder over a manual-clock driven run — fully deterministic per
//!   seed (`trace` section; schema stays v1-compatible and `--check`
//!   validates its shape).
//! - `--check PATH`: *instead of* writing, validate the committed baseline
//!   at `PATH` (schema + required fields) and fail — exit code 1 — if the
//!   current compact-backend throughput falls below `min-ratio` × the
//!   committed number for any shared scenario (default ratio 0.5, i.e. a
//!   >2× regression trips it).

use gps_bench::json::{self, Value};
use gps_bench::perf::{
    self, BaselineResult, ChaosResult, EngineResult, PerfConfig, ScenarioResult, ServeResult,
    TelemetryResult, TraceResult,
};
use std::process::{Command, ExitCode};

struct Args {
    cfg: PerfConfig,
    out: String,
    check: Option<String>,
    min_ratio: f64,
    baselines: bool,
    engine: bool,
    serve: bool,
    chaos: bool,
    sim: bool,
    telemetry: bool,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: PerfConfig::default(),
        out: "BENCH_PR2.json".to_owned(),
        check: None,
        min_ratio: 0.5,
        baselines: false,
        engine: false,
        serve: false,
        chaos: false,
        sim: false,
        telemetry: false,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => args.cfg.quick = true,
            "--baselines" => args.baselines = true,
            "--engine" => args.engine = true,
            "--serve" => args.serve = true,
            "--chaos" => args.chaos = true,
            "--sim" => args.sim = true,
            "--telemetry" => args.telemetry = true,
            "--trace" => args.trace = true,
            "--iters" => {
                args.cfg.iters = take("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--seed" => {
                args.cfg.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = take("--out")?,
            "--check" => args.check = Some(take("--check")?),
            "--min-ratio" => {
                args.min_ratio = take("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_baseline [--quick] [--iters N] [--seed N] [--out PATH] \
                     [--baselines] [--engine] [--serve] [--chaos] [--sim] \
                     [--telemetry] [--trace] [--check PATH [--min-ratio R]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn print_result(r: &ScenarioResult) {
    println!(
        "{:<28} {:>9} edges  compact {:>8.1} ns/e ({:>7.3} Me/s)  hashmap {:>8.1} ns/e ({:>7.3} Me/s)  speedup {:>5.2}x",
        r.scenario.name(),
        r.edges,
        r.compact.ns_per_edge,
        r.compact.edges_per_sec / 1e6,
        r.hashmap.ns_per_edge,
        r.hashmap.edges_per_sec / 1e6,
        r.speedup(),
    );
}

fn print_engine(r: &EngineResult) {
    println!(
        "{:<28} {:>9} edges  ingest  {:>8.1} ns/e ({:>7.3} Me/s)  [{} shard{}]",
        r.scenario,
        r.edges,
        r.measurement.ns_per_edge,
        r.measurement.edges_per_sec / 1e6,
        r.shards,
        if r.shards == 1 { "" } else { "s" },
    );
}

fn print_serve(r: &ServeResult) {
    println!(
        "{:<34} {:>9} edges  ingest  {:>8.1} ns/e ({:>7.3} Me/s)  [{} reader{}, {} reads, lag mean {:.0} max {}]",
        r.scenario,
        r.edges,
        r.measurement.ns_per_edge,
        r.measurement.edges_per_sec / 1e6,
        r.readers,
        if r.readers == 1 { "" } else { "s" },
        r.reads,
        r.staleness_mean_edges,
        r.staleness_max_edges,
    );
}

fn print_chaos(r: &ChaosResult) {
    println!(
        "{:<34} {:>9} edges  faulted {:>8.1} ns/e ({:>7.3} Me/s)  recovery {:>7.2} ms  [lost {}, {} restart{}, degraded {}/{} epochs]",
        r.scenario,
        r.edges,
        r.faulted.ns_per_edge,
        r.faulted.edges_per_sec / 1e6,
        r.recovery_latency_ns as f64 / 1e6,
        r.arrivals_lost,
        r.restarts,
        if r.restarts == 1 { "" } else { "s" },
        r.degraded_epochs,
        r.epochs,
    );
}

fn print_sim(p: &gps_sim::SweepPoint) {
    println!(
        "{:<34} {:>9} edges  tri ARE {:>6.3} (cov {})  wedge ARE {:>6.3} (cov {})  [{}/{} degraded epochs, stale max {:.2} ms, lost {}, tree {}]",
        p.name(),
        p.pushed,
        p.tri_are,
        u8::from(p.tri_covered),
        p.wedge_are,
        u8::from(p.wedge_covered),
        p.degraded_epochs,
        p.epochs,
        p.staleness_max_ns as f64 / 1e6,
        p.lost_arrivals,
        if p.tree_identical { "ok" } else { "DIVERGED" },
    );
}

fn print_telemetry(t: &TelemetryResult) {
    println!(
        "{:<34} {:>9} edges  stable fingerprint {}  [{} counters]",
        t.scenario,
        t.edges,
        t.stable_fingerprint,
        t.counters.len(),
    );
}

fn print_trace(t: &TraceResult) {
    println!(
        "{:<34} {:>9} edges  stable fingerprint {}  [{} epochs]",
        t.scenario, t.edges, t.stable_fingerprint, t.epochs,
    );
    for s in &t.stages {
        println!(
            "  {:<20} n={:<4} p50 {:>9} ns  p99 {:>9} ns",
            s.stage, s.count, s.p50_ns, s.p99_ns
        );
    }
}

fn print_baseline(r: &BaselineResult) {
    println!(
        "{:<28} {:>9} edges  compact {:>8.1} ns/e ({:>7.3} Me/s)  hashmap {:>8.1} ns/e ({:>7.3} Me/s)  speedup {:>5.2}x",
        r.scenario,
        r.edges,
        r.compact.ns_per_edge,
        r.compact.edges_per_sec / 1e6,
        r.hashmap.ns_per_edge,
        r.hashmap.edges_per_sec / 1e6,
        r.speedup(),
    );
}

/// Compares freshly measured compact throughput against a committed
/// baseline; returns the list of failures. At least one measured scenario
/// must match a committed one — otherwise the gate would pass vacuously
/// after a grid or naming change.
fn check_against(committed: &Value, results: &[ScenarioResult], min_ratio: f64) -> Vec<String> {
    // `committed` has already passed `perf::validate_baseline` in main().
    let mut failures = Vec::new();
    let scenarios = committed
        .get("scenarios")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    let mut matched = 0usize;
    for r in results {
        let name = r.scenario.name();
        let Some(entry) = scenarios.iter().find(|s| s.get_str("name") == Some(&name)) else {
            // The committed file may predate a scenario; shape problems are
            // already reported by validate_baseline.
            continue;
        };
        let Some(floor) = entry
            .get("compact")
            .and_then(|m| m.get_f64("edges_per_sec"))
        else {
            continue; // reported by validate_baseline
        };
        matched += 1;
        let current = r.compact.edges_per_sec;
        if current < min_ratio * floor {
            failures.push(format!(
                "{name}: current {current:.0} edges/s < {min_ratio} x committed {floor:.0} \
                 (>{:.1}x regression)",
                1.0 / min_ratio
            ));
        }
    }
    if matched == 0 {
        failures.push(
            "no measured scenario matches the committed baseline — the regression gate \
             compared nothing (grid or scenario naming changed? re-generate the baseline)"
                .to_owned(),
        );
    }
    failures
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_baseline: {msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "bench_baseline: mode={} iters={} seed={}",
        if args.cfg.quick { "quick" } else { "full" },
        args.cfg.iters,
        args.cfg.seed
    );
    // Fail fast in check mode: read, parse and shape-validate the committed
    // baseline before burning minutes on measurement.
    let committed = match &args.check {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("bench_baseline: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match json::parse(&text) {
                Ok(v) => {
                    let problems = perf::validate_baseline(&v);
                    if !problems.is_empty() {
                        eprintln!("bench_baseline: {path} is malformed:");
                        for p in &problems {
                            eprintln!("  - {p}");
                        }
                        return ExitCode::FAILURE;
                    }
                    Some(v)
                }
                Err(e) => {
                    eprintln!("bench_baseline: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let results = perf::run_all(&args.cfg, print_result);
    // The check gate only reads the GPS grid; don't burn minutes measuring
    // the baseline-sampler or engine grids just to discard them.
    let baselines = if args.baselines && args.check.is_none() {
        perf::run_baselines(&args.cfg, print_baseline)
    } else {
        Vec::new()
    };
    let engine = if args.engine && args.check.is_none() {
        perf::run_engine(&args.cfg, print_engine)
    } else {
        Vec::new()
    };
    let serve = if args.serve && args.check.is_none() {
        perf::run_serve(&args.cfg, print_serve)
    } else {
        Vec::new()
    };
    let chaos = if args.chaos && args.check.is_none() {
        perf::run_chaos(&args.cfg, print_chaos)
    } else {
        Vec::new()
    };
    let sim = if args.sim && args.check.is_none() {
        perf::run_sim(&args.cfg, print_sim)
    } else {
        Vec::new()
    };
    let telemetry = if args.telemetry && args.check.is_none() {
        let t = perf::run_telemetry(&args.cfg);
        print_telemetry(&t);
        Some(t)
    } else {
        None
    };
    let trace = if args.trace && args.check.is_none() {
        let t = perf::run_trace(&args.cfg);
        print_trace(&t);
        Some(t)
    } else {
        None
    };

    if let (Some(path), Some(committed)) = (&args.check, &committed) {
        let failures = check_against(committed, &results, args.min_ratio);
        if failures.is_empty() {
            println!(
                "check OK: {path} is well-formed and throughput is within {:.1}x of the committed floor",
                1.0 / args.min_ratio
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("check FAILED against {path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        return ExitCode::FAILURE;
    }

    let doc = perf::results_json(
        &args.cfg,
        &git_rev(),
        &results,
        perf::OptionalGrids {
            baselines: &baselines,
            engine: &engine,
            serve: &serve,
            chaos: &chaos,
            sim: &sim,
            telemetry: telemetry.as_ref(),
            trace: trace.as_ref(),
        },
    );
    if let Err(e) = std::fs::write(&args.out, doc.to_pretty()) {
        eprintln!("bench_baseline: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}
