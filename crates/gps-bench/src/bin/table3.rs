//! Reproduces paper **Table 3**: mean / max absolute relative error of
//! triangle estimates tracked across the stream, for TRIEST, TRIEST-IMPR,
//! GPS post-stream and GPS in-stream.
//!
//! Usage: `cargo run -p gps-bench --release --bin table3 [--scale S] [--seed N] [--out DIR] [--shards N]`
//!
//! With `--shards N > 1` (default 4) a `GPS ENGINE(N) IN-STREAM` tracking
//! arm rides along (deterministic mirror of the sharded engine at the same
//! total budget); pass `--shards 1` for the paper's four methods only.

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let (runs, checkpoints) = (3, 40);
    eprintln!(
        "table3: scale={} seed={} m={} runs={runs} checkpoints={checkpoints} shards={}",
        cfg.scale,
        cfg.seed,
        experiments::table3_capacity(&cfg),
        cfg.shards
    );
    let table = experiments::table3(&cfg, runs, checkpoints);
    experiments::emit(
        &cfg,
        "Table 3 — estimates vs. time (MARE / Max ARE)",
        "table3.tsv",
        &table,
    );
}
