//! Reproduces paper **Figure 2**: convergence of the triangle estimate and
//! its 95% confidence bounds (normalized by the true count) as the sample
//! size sweeps a geometric grid.
//!
//! Usage: `cargo run -p gps-bench --release --bin fig2 [--scale S] [--seed N] [--out DIR]`

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    eprintln!("fig2: scale={} seed={}", cfg.scale, cfg.seed);
    let table = experiments::fig2(&cfg);
    experiments::emit(
        &cfg,
        "Figure 2 — confidence-bound convergence vs sample size",
        "fig2.tsv",
        &table,
    );
}
