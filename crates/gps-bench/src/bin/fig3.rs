//! Reproduces paper **Figure 3**: real-time tracking of triangle counts and
//! global clustering with 95% bounds versus the exact evolving values
//! (orkut and skitter stand-ins).
//!
//! Usage: `cargo run -p gps-bench --release --bin fig3 [--scale S] [--seed N] [--out DIR]`

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let checkpoints = 30;
    eprintln!(
        "fig3: scale={} seed={} m={} checkpoints={checkpoints}",
        cfg.scale,
        cfg.seed,
        experiments::table3_capacity(&cfg)
    );
    let table = experiments::fig3(&cfg, checkpoints);
    experiments::emit(
        &cfg,
        "Figure 3 — real-time tracking with confidence bounds",
        "fig3.tsv",
        &table,
    );
}
