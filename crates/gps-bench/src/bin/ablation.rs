//! Weight-function ablation (paper §3.5's design choice): estimation RMSE
//! under uniform / wedge / triangle / triad weights for both estimation
//! modes. Not a numbered paper artifact; quantifies the benefit of the
//! paper's W(k, K̂) = 9·|△̂(k)|+1 choice.
//!
//! Usage: `cargo run -p gps-bench --release --bin ablation [--scale S] [--seed N] [--out DIR]`

use gps_bench::config::Config;
use gps_bench::experiments;

fn main() {
    let cfg = Config::from_env();
    let runs = 10;
    eprintln!(
        "ablation: scale={} seed={} runs={runs}",
        cfg.scale, cfg.seed
    );
    let table = experiments::ablation(&cfg, runs);
    experiments::emit(
        &cfg,
        "Ablation — weight functions vs estimation mode (RMSE)",
        "ablation.tsv",
        &table,
    );
}
