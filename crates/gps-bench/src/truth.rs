//! Ground-truth computation for experiment workloads.

use gps_graph::csr::CsrGraph;
use gps_graph::degrees::DegreeStats;
use gps_graph::exact;
use gps_graph::types::Edge;

/// Exact statistics of a workload graph.
#[derive(Clone, Copy, Debug)]
pub struct GroundTruth {
    /// Exact triangle count.
    pub triangles: f64,
    /// Exact wedge count.
    pub wedges: f64,
    /// Exact global clustering coefficient.
    pub clustering: f64,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

impl GroundTruth {
    /// Computes exact counts for an edge list.
    pub fn of(edges: &[Edge]) -> Self {
        let g = CsrGraph::from_edges(edges);
        let t = exact::triangle_count(&g);
        let w = exact::wedge_count(&g);
        GroundTruth {
            triangles: t as f64,
            wedges: w as f64,
            clustering: if w == 0 {
                0.0
            } else {
                3.0 * t as f64 / w as f64
            },
            nodes: g.num_nodes(),
            edges: g.num_edges(),
        }
    }

    /// Degree summary (for workload documentation output).
    pub fn degree_stats(edges: &[Edge]) -> DegreeStats {
        DegreeStats::of(&CsrGraph::from_edges(edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_of_k4() {
        let mut edges = vec![];
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push(Edge::new(a, b));
            }
        }
        let t = GroundTruth::of(&edges);
        assert_eq!(t.triangles, 4.0);
        assert_eq!(t.wedges, 12.0);
        assert!((t.clustering - 1.0).abs() < 1e-12);
        assert_eq!(t.nodes, 4);
        assert_eq!(t.edges, 6);
    }

    #[test]
    fn truth_of_empty() {
        let t = GroundTruth::of(&[]);
        assert_eq!(t.triangles, 0.0);
        assert_eq!(t.clustering, 0.0);
    }
}
