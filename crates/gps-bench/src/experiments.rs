//! The paper's experiments as library functions.
//!
//! Every function builds its workloads from `gps_stream::corpus` at the
//! configured scale, streams a seeded random permutation (the paper's §6
//! setup), and returns paper-shaped tables. Sample sizes scale with the
//! workloads so the sampling *fractions* stay comparable to the paper's
//! (DESIGN.md §5 and §6 record the mapping).

use std::time::Instant;

use gps_baselines::{Mascot, NSampBulk, TriangleEstimator, TriestBase, TriestImpr};
use gps_core::weights::{TriadWeight, TriangleWeight, UniformWeight, WedgeWeight};
use gps_core::{post_stream, EdgeWeight, InStreamEstimator, TriadEstimates};
use gps_graph::types::Edge;
use gps_graph::{BackendKind, IncrementalCounter};
use gps_stats::{format, metrics, ErrorSeries, Running, Table};
use gps_stream::corpus::{self, WorkloadSpec};
use gps_stream::{permuted, Checkpoints};

use crate::adapters::{GpsInStream, GpsPost, ShardedInStream};
use crate::config::Config;
use crate::truth::GroundTruth;
use gps_engine::{EngineConfig, ShardedGps};

/// Reservoir capacity used by Table 1 (the paper's 200K edges, scaled to our
/// workload sizes: ≈8% of a 250K-edge graph).
pub fn table1_capacity(cfg: &Config) -> usize {
    ((20_000.0 * cfg.scale) as usize).max(200)
}

/// Reservoir capacity for Table 2 / Figure 1.
///
/// The paper uses ≈100K stored edges (0.6–0.8% of its graphs). Expected
/// wholly-sampled triangles scale as `T·(m/|K|)³`, and our stand-ins hold
/// ~10³–10⁵ triangles versus the paper's 10⁷–10¹⁰, so matching the paper's
/// *fraction* would leave every estimator with zero sampled triangles.
/// Matching the paper's *regime* (tens of wholly-sampled triangles) puts
/// the fraction near 10%, which is what this capacity realizes at scale 1.
pub fn table2_capacity(cfg: &Config) -> usize {
    ((25_000.0 * cfg.scale) as usize).max(150)
}

/// Reservoir capacity for Table 3 / Figure 3 (paper: 80K).
pub fn table3_capacity(cfg: &Config) -> usize {
    ((8_000.0 * cfg.scale) as usize).max(120)
}

fn build(spec: &WorkloadSpec, cfg: &Config) -> Vec<Edge> {
    spec.build(cfg.scale, cfg.sub_seed("workload")).edges
}

/// One full GPS pass over a stream: in-stream estimates plus post-stream
/// estimates from the *same* sample (the paper's paired comparison).
fn run_gps_pair(
    edges: &[Edge],
    m: usize,
    stream_seed: u64,
    sampler_seed: u64,
    backend: BackendKind,
) -> GpsPair {
    let stream = permuted(edges, stream_seed);
    let mut in_est =
        InStreamEstimator::with_backend(m, TriangleWeight::default(), sampler_seed, backend);
    in_est.process_stream(stream);
    let post = post_stream::estimate(in_est.sampler());
    GpsPair {
        in_stream: in_est.estimates(),
        post,
    }
}

/// One full sharded-engine pass (the real `ShardedGps`, worker threads and
/// all, in in-stream estimating mode): merged in-stream and post-stream
/// estimates from the same sharded samples, with the honest `S > 1`
/// variance decomposition behind both CI columns.
fn run_engine_pair(
    edges: &[Edge],
    m: usize,
    stream_seed: u64,
    engine_seed: u64,
    backend: BackendKind,
    shards: usize,
) -> GpsPair {
    let stream = permuted(edges, stream_seed);
    let mut cfg = EngineConfig::new(m, shards, engine_seed);
    cfg.backend = backend;
    let mut engine = ShardedGps::with_estimation(cfg, TriangleWeight::default(), None);
    engine.push_stream(stream);
    GpsPair {
        in_stream: engine.estimate_in_stream(),
        post: engine.estimate(),
    }
}

struct GpsPair {
    in_stream: TriadEstimates,
    post: TriadEstimates,
}

/// Aggregates `runs` estimate pairs for one workload and emits its three
/// Table-1 rows (triangles / wedges / clustering) under `graph_label`.
fn table1_rows(
    table: &mut Table,
    graph_label: &str,
    edges_len: usize,
    truth: &GroundTruth,
    m: usize,
    runs: u64,
    mut pair_of: impl FnMut(u64) -> GpsPair,
) {
    let mut agg = [[Running::new(); 6]; 3]; // [stat][value, lb, ub in/post...]
    for r in 0..runs {
        let pair = pair_of(r);
        for (idx, (est_in, est_post)) in [
            (pair.in_stream.triangles, pair.post.triangles),
            (pair.in_stream.wedges, pair.post.wedges),
            (pair.in_stream.clustering, pair.post.clustering),
        ]
        .into_iter()
        .enumerate()
        {
            let (lb_i, ub_i) = est_in.ci95();
            let (lb_p, ub_p) = est_post.ci95();
            agg[idx][0].push(est_in.value);
            agg[idx][1].push(lb_i);
            agg[idx][2].push(ub_i);
            agg[idx][3].push(est_post.value);
            agg[idx][4].push(lb_p);
            agg[idx][5].push(ub_p);
        }
    }
    let actuals = [truth.triangles, truth.wedges, truth.clustering];
    for (idx, stat) in ["TRIANGLES", "WEDGES", "CC"].iter().enumerate() {
        let a = actuals[idx];
        let fmt = |x: f64| {
            if idx == 2 {
                format!("{x:.4}")
            } else {
                format::si(x)
            }
        };
        table.row([
            stat.to_string(),
            graph_label.to_string(),
            format::si(edges_len as f64),
            format!("{:.4}", m as f64 / edges_len as f64),
            fmt(a),
            fmt(agg[idx][0].mean()),
            format!("{:.4}", metrics::are(agg[idx][0].mean(), a)),
            fmt(agg[idx][1].mean()),
            fmt(agg[idx][2].mean()),
            fmt(agg[idx][3].mean()),
            format!("{:.4}", metrics::are(agg[idx][3].mean(), a)),
            fmt(agg[idx][4].mean()),
            fmt(agg[idx][5].mean()),
        ]);
    }
}

/// Paper **Table 1**: triangle / wedge / clustering estimates with ARE and
/// 95% bounds, GPS in-stream vs GPS post-stream on identical samples, for
/// the 11 Table-1 graphs. Estimates are averaged over `runs` independent
/// stream permutations + samples; bounds are averaged as well.
///
/// With `--shards S > 1` every graph gains a second set of rows
/// (`<graph>@S<S>`) from the sharded engine at the **same total budget** —
/// the accuracy half of the accuracy-vs-throughput tradeoff, end to end
/// through the real `ShardedGps` (threads, partition, honest-CI merge).
pub fn table1(cfg: &Config, runs: u64) -> Table {
    let m = table1_capacity(cfg);
    let mut table = Table::new([
        "stat",
        "graph",
        "|K|",
        "m/|K|",
        "actual",
        "X^(in)",
        "ARE(in)",
        "LB(in)",
        "UB(in)",
        "X^(post)",
        "ARE(post)",
        "LB(post)",
        "UB(post)",
    ]);
    for spec in corpus::table1() {
        let edges = build(&spec, cfg);
        let truth = GroundTruth::of(&edges);
        table1_rows(&mut table, spec.name, edges.len(), &truth, m, runs, |r| {
            run_gps_pair(
                &edges,
                m,
                cfg.sub_seed(&format!("t1-stream-{}-{r}", spec.name)),
                cfg.sub_seed(&format!("t1-sampler-{}-{r}", spec.name)),
                cfg.backend,
            )
        });
        if cfg.shards > 1 {
            let label = format!("{}@S{}", spec.name, cfg.shards);
            table1_rows(&mut table, &label, edges.len(), &truth, m, runs, |r| {
                run_engine_pair(
                    &edges,
                    m,
                    cfg.sub_seed(&format!("t1-stream-{}-{r}", spec.name)),
                    cfg.sub_seed(&format!("t1-engine-{}-{r}", spec.name)),
                    cfg.backend,
                    cfg.shards,
                )
            });
        }
    }
    table
}

/// Paper **Table 2**: baseline comparison at equal stored-edge budgets —
/// mean ARE over `runs` and measured average update time (µs/edge) for
/// NSAMP, TRIEST, MASCOT and GPS post-stream.
pub fn table2(cfg: &Config, runs: u64) -> Table {
    let m = table2_capacity(cfg);
    let mut table = Table::new(["graph", "method", "stored", "ARE", "us/edge"]);
    for spec in corpus::table2() {
        let edges = build(&spec, cfg);
        let truth = GroundTruth::of(&edges);
        let p_mascot = (m as f64 / edges.len() as f64).min(1.0);
        // Bulk-processed NSAMP (the configuration the paper measured; the
        // naive variant is benchmarked separately) at the same stored-edge
        // budget: each estimator holds up to two edges.
        let r_nsamp = (m / 2).max(8);

        // One factory per method so each run gets fresh state; every
        // store-based method runs on the configured adjacency backend
        // (NSAMP-BULK keeps no adjacency, so it has no backend axis).
        let backend = cfg.backend;
        type Factory<'a> = Box<dyn Fn(u64) -> Box<dyn TriangleEstimator> + 'a>;
        let factories: Vec<Factory> = vec![
            Box::new(move |seed| Box::new(NSampBulk::new(r_nsamp, seed))),
            Box::new(move |seed| Box::new(TriestBase::with_backend(m, seed, backend))),
            Box::new(move |seed| Box::new(Mascot::with_backend(p_mascot, seed, backend))),
            Box::new(move |seed| Box::new(GpsPost::with_backend(m, seed, backend))),
            // Not in the paper's Table 2; added for the apples-to-apples
            // arrival-counting comparison against MASCOT.
            Box::new(move |seed| Box::new(GpsInStream::with_backend(m, seed, backend))),
        ];
        for factory in &factories {
            let mut err = Running::new();
            let mut micros_per_edge = 0.0;
            let mut stored = 0usize;
            let mut name = "";
            for r in 0..runs {
                let stream = permuted(
                    &edges,
                    cfg.sub_seed(&format!("t2-stream-{}-{r}", spec.name)),
                );
                let mut est = factory(cfg.sub_seed(&format!("t2-est-{}-{r}", spec.name)));
                let start = Instant::now();
                for &e in &stream {
                    est.process(e);
                }
                let elapsed = start.elapsed();
                if r == 0 {
                    micros_per_edge = elapsed.as_secs_f64() * 1e6 / stream.len() as f64;
                    stored = est.stored_edges();
                    name = est.name();
                }
                err.push(metrics::are(est.triangle_estimate(), truth.triangles));
            }
            table.row([
                spec.name.to_string(),
                name.to_string(),
                stored.to_string(),
                format!("{:.4}", err.mean()),
                format::micros(micros_per_edge),
            ]);
        }
    }
    table
}

/// Paper **Table 3**: tracking error of triangle estimates over the stream —
/// Max ARE and MARE across checkpoints, for TRIEST, TRIEST-IMPR, GPS post
/// and GPS in-stream, averaged over `runs`.
///
/// With `--shards S > 1` a `GPS ENGINE(S) IN-STREAM` arm rides along: the
/// deterministic single-threaded mirror of the sharded engine
/// ([`ShardedInStream`], bit-identical estimates to `ShardedGps` on the
/// same config), queryable at every checkpoint — the tracking-accuracy
/// half of the sharding tradeoff at the same total budget.
pub fn table3(cfg: &Config, runs: u64, checkpoints: usize) -> Table {
    let m = table3_capacity(cfg);
    let mut table = Table::new(["graph", "method", "MaxARE", "MARE"]);
    let engine_label = format!("GPS ENGINE({}) IN-STREAM", cfg.shards);
    for spec in corpus::table3() {
        let edges = build(&spec, cfg);
        let mut names = vec!["TRIEST", "TRIEST-IMPR", "GPS POST", "GPS IN-STREAM"];
        if cfg.shards > 1 {
            names.push(&engine_label);
        }
        let mut series: Vec<ErrorSeries> = vec![ErrorSeries::new(); names.len()];
        for r in 0..runs {
            let stream = permuted(
                &edges,
                cfg.sub_seed(&format!("t3-stream-{}-{r}", spec.name)),
            );
            let seed = cfg.sub_seed(&format!("t3-est-{}-{r}", spec.name));
            let mut methods: Vec<Box<dyn TriangleEstimator>> = vec![
                Box::new(TriestBase::with_backend(m, seed, cfg.backend)),
                Box::new(TriestImpr::with_backend(m, seed, cfg.backend)),
                Box::new(GpsPost::with_backend(m, seed, cfg.backend)),
                Box::new(GpsInStream::with_backend(m, seed, cfg.backend)),
            ];
            if cfg.shards > 1 {
                methods.push(Box::new(ShardedInStream::with_backend(
                    m,
                    seed,
                    cfg.shards,
                    cfg.backend,
                )));
            }
            let actual = std::cell::RefCell::new(IncrementalCounter::new());
            let cps = Checkpoints::linear(stream.len(), checkpoints);
            let run_series = std::cell::RefCell::new(vec![ErrorSeries::new(); methods.len()]);
            let methods_cell = std::cell::RefCell::new(&mut methods);
            cps.drive(
                stream.iter().copied(),
                |e| {
                    actual.borrow_mut().insert(e);
                    for mth in methods_cell.borrow_mut().iter_mut() {
                        mth.process(e);
                    }
                },
                |_t| {
                    let truth = actual.borrow().triangles() as f64;
                    if truth == 0.0 {
                        return; // ARE undefined this early in the stream
                    }
                    for (i, mth) in methods_cell.borrow_mut().iter_mut().enumerate() {
                        run_series.borrow_mut()[i].push(mth.triangle_estimate(), truth);
                    }
                },
            );
            for (agg, run) in series.iter_mut().zip(run_series.into_inner()) {
                agg.merge(&run);
            }
        }
        for (name, s) in names.iter().zip(&series) {
            table.row([
                spec.name.to_string(),
                name.to_string(),
                format!("{:.3}", s.max_are()),
                format!("{:.3}", s.mare()),
            ]);
        }
    }
    table
}

/// Paper **Figure 1**: the x̂/x scatter — per graph, the ratio of estimated
/// to actual counts for triangles and wedges simultaneously, from in-stream
/// estimation on a single sample per run (averaged over `runs`).
pub fn fig1(cfg: &Config, runs: u64) -> Table {
    let m = table2_capacity(cfg);
    let mut table = Table::new(["graph", "profile", "tri_ratio", "wedge_ratio"]);
    for spec in corpus::figure_panels() {
        let edges = build(&spec, cfg);
        let truth = GroundTruth::of(&edges);
        let (mut tri, mut wedge) = (Running::new(), Running::new());
        for r in 0..runs {
            let pair = run_gps_pair(
                &edges,
                m,
                cfg.sub_seed(&format!("f1-stream-{}-{r}", spec.name)),
                cfg.sub_seed(&format!("f1-sampler-{}-{r}", spec.name)),
                cfg.backend,
            );
            tri.push(pair.in_stream.triangles.value / truth.triangles.max(1.0));
            wedge.push(pair.in_stream.wedges.value / truth.wedges.max(1.0));
        }
        table.row([
            spec.name.to_string(),
            spec.profile.to_string(),
            format!("{:.4}", tri.mean()),
            format!("{:.4}", wedge.mean()),
        ]);
    }
    table
}

/// Paper **Figure 2**: convergence of the triangle estimate and its 95%
/// bounds (all normalized by the true count) as the sample size sweeps a
/// geometric grid of fractions of `|K|`.
pub fn fig2(cfg: &Config) -> Table {
    let mut table = Table::new(["graph", "m", "m/|K|", "ratio", "lb_ratio", "ub_ratio"]);
    for spec in corpus::figure_panels() {
        let edges = build(&spec, cfg);
        let truth = GroundTruth::of(&edges);
        if truth.triangles == 0.0 {
            continue;
        }
        for &frac in &[0.01, 0.02, 0.04, 0.08, 0.16, 0.32] {
            let m = ((edges.len() as f64 * frac) as usize).max(50);
            let pair = run_gps_pair(
                &edges,
                m,
                cfg.sub_seed(&format!("f2-stream-{}-{frac}", spec.name)),
                cfg.sub_seed(&format!("f2-sampler-{}-{frac}", spec.name)),
                cfg.backend,
            );
            let est = pair.in_stream.triangles;
            let (lb, ub) = est.ci95();
            table.row([
                spec.name.to_string(),
                m.to_string(),
                format!("{frac:.2}"),
                format!("{:.4}", est.value / truth.triangles),
                format!("{:.4}", lb / truth.triangles),
                format!("{:.4}", ub / truth.triangles),
            ]);
        }
    }
    table
}

/// Paper **Figure 3**: real-time tracking — triangle count and clustering
/// coefficient estimates with 95% bounds versus the exact values, at
/// checkpoints along the stream (orkut and skitter stand-ins).
pub fn fig3(cfg: &Config, checkpoints: usize) -> Table {
    let m = table3_capacity(cfg);
    let mut table = Table::new([
        "graph",
        "t",
        "tri_actual",
        "tri_est",
        "tri_lb",
        "tri_ub",
        "cc_actual",
        "cc_est",
        "cc_lb",
        "cc_ub",
    ]);
    for name in ["orkut-sim", "skitter-sim"] {
        let spec = corpus::by_name(name).expect("known workload");
        let edges = build(&spec, cfg);
        let stream = permuted(&edges, cfg.sub_seed(&format!("f3-stream-{name}")));
        let mut est = InStreamEstimator::with_backend(
            m,
            TriangleWeight::default(),
            cfg.sub_seed(&format!("f3-{name}")),
            cfg.backend,
        );
        let mut actual = IncrementalCounter::new();
        let cps = Checkpoints::linear(stream.len(), checkpoints);
        let est_cell = std::cell::RefCell::new(&mut est);
        let actual_cell = std::cell::RefCell::new(&mut actual);
        let rows = std::cell::RefCell::new(Vec::new());
        cps.drive(
            stream.iter().copied(),
            |e| {
                actual_cell.borrow_mut().insert(e);
                est_cell.borrow_mut().process(e);
            },
            |t| {
                let e = est_cell.borrow().estimates();
                let (tlb, tub) = e.triangles.ci95();
                let (clb, cub) = e.clustering.ci95();
                let act = actual_cell.borrow();
                rows.borrow_mut().push([
                    name.to_string(),
                    t.to_string(),
                    format!("{:.0}", act.triangles() as f64),
                    format!("{:.0}", e.triangles.value),
                    format!("{tlb:.0}"),
                    format!("{tub:.0}"),
                    format!("{:.5}", act.clustering()),
                    format!("{:.5}", e.clustering.value),
                    format!("{clb:.5}"),
                    format!("{cub:.5}"),
                ]);
            },
        );
        for row in rows.into_inner() {
            table.row(row);
        }
    }
    table
}

/// Weight-function ablation (paper §3.5's design choice): triangle and
/// wedge estimation MSE under uniform / wedge / triangle / triad weights,
/// for both estimation modes, at `m = |K| / 12`.
pub fn ablation(cfg: &Config, runs: u64) -> Table {
    let mut table = Table::new(["graph", "weights", "mode", "tri_rmse", "wedge_rmse"]);
    for name in ["hollywood-sim", "higgs-sim"] {
        let spec = corpus::by_name(name).expect("known workload");
        let edges = build(&spec, cfg);
        let truth = GroundTruth::of(&edges);
        let m = (edges.len() / 12).max(100);

        fn rmse_runs<W: EdgeWeight + Copy>(
            cfg: &Config,
            edges: &[Edge],
            truth: &GroundTruth,
            m: usize,
            w: W,
            runs: u64,
            label: &str,
        ) -> [f64; 4] {
            let (mut ti, mut wi, mut tp, mut wp) = (0.0, 0.0, 0.0, 0.0);
            for r in 0..runs {
                let stream = permuted(edges, cfg.sub_seed(&format!("ab-stream-{label}-{r}")));
                let mut est = InStreamEstimator::with_backend(
                    m,
                    w,
                    cfg.sub_seed(&format!("ab-est-{label}-{r}")),
                    cfg.backend,
                );
                est.process_stream(stream);
                let e_in = est.estimates();
                let e_post = post_stream::estimate(est.sampler());
                let rel = |x: f64, a: f64| (x - a) / a.max(1.0);
                ti += rel(e_in.triangles.value, truth.triangles).powi(2);
                wi += rel(e_in.wedges.value, truth.wedges).powi(2);
                tp += rel(e_post.triangles.value, truth.triangles).powi(2);
                wp += rel(e_post.wedges.value, truth.wedges).powi(2);
            }
            let n = runs as f64;
            [
                (ti / n).sqrt(),
                (wi / n).sqrt(),
                (tp / n).sqrt(),
                (wp / n).sqrt(),
            ]
        }

        let results: Vec<(&str, [f64; 4])> = vec![
            (
                "uniform",
                rmse_runs(
                    cfg,
                    &edges,
                    &truth,
                    m,
                    UniformWeight,
                    runs,
                    &format!("{name}-u"),
                ),
            ),
            (
                "wedge(4L+1)",
                rmse_runs(
                    cfg,
                    &edges,
                    &truth,
                    m,
                    WedgeWeight::default(),
                    runs,
                    &format!("{name}-w"),
                ),
            ),
            (
                "triangle(9T+1)",
                rmse_runs(
                    cfg,
                    &edges,
                    &truth,
                    m,
                    TriangleWeight::default(),
                    runs,
                    &format!("{name}-t"),
                ),
            ),
            (
                "triad(9T+4L+1)",
                rmse_runs(
                    cfg,
                    &edges,
                    &truth,
                    m,
                    TriadWeight::default(),
                    runs,
                    &format!("{name}-b"),
                ),
            ),
        ];
        for (wname, [ti, wi, tp, wp]) in results {
            table.row([
                name.to_string(),
                wname.to_string(),
                "in-stream".to_string(),
                format!("{ti:.4}"),
                format!("{wi:.4}"),
            ]);
            table.row([
                name.to_string(),
                wname.to_string(),
                "post".to_string(),
                format!("{tp:.4}"),
                format!("{wp:.4}"),
            ]);
        }
    }
    table
}

/// Renders a table to stdout with a title, and writes the TSV artifact.
pub fn emit(cfg: &Config, title: &str, artifact: &str, table: &Table) {
    println!("== {title}\n");
    println!("{}", table.render());
    if let Some(path) = cfg.write_tsv(artifact, &table.to_tsv()) {
        println!("[wrote {}]\n", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.02,
            seed: 7,
            out_dir: None,
            threads: 2,
            backend: BackendKind::Compact,
            shards: 2,
        }
    }

    #[test]
    fn table1_has_three_stats_per_graph() {
        let solo = Config {
            shards: 1,
            ..tiny_cfg()
        };
        let t = table1(&solo, 1);
        assert_eq!(t.len(), 11 * 3);
    }

    #[test]
    fn table1_gains_engine_rows_when_sharded() {
        // tiny_cfg has shards = 2: every graph gets a second row set from
        // the real sharded engine at the same total budget.
        let t = table1(&tiny_cfg(), 1);
        assert_eq!(t.len(), 11 * 3 * 2);
        assert!(t.to_tsv().contains("@S2"));
    }

    #[test]
    fn table2_covers_all_methods() {
        let t = table2(&tiny_cfg(), 1);
        assert_eq!(t.len(), 3 * 5);
        let tsv = t.to_tsv();
        for m in ["NSAMP", "TRIEST", "MASCOT", "GPS POST", "GPS IN-STREAM"] {
            assert!(tsv.contains(m), "missing method {m}");
        }
    }

    #[test]
    fn table2_is_backend_independent_up_to_timing() {
        // Same seeds, same streams: every estimate — and hence every ARE
        // and stored-edge cell — must be bit-identical across adjacency
        // backends; only the us/edge timing column may differ.
        let compact = table2(&tiny_cfg(), 1);
        let hashmap = table2(
            &Config {
                backend: BackendKind::HashMap,
                ..tiny_cfg()
            },
            1,
        );
        let strip_timing = |t: &Table| -> Vec<String> {
            t.to_tsv()
                .lines()
                .map(|l| {
                    let cells: Vec<&str> = l.split('\t').collect();
                    cells[..cells.len() - 1].join("\t")
                })
                .collect()
        };
        assert_eq!(strip_timing(&compact), strip_timing(&hashmap));
    }

    #[test]
    fn table3_reports_four_methods_per_graph() {
        let solo = Config {
            shards: 1,
            ..tiny_cfg()
        };
        let t = table3(&solo, 1, 10);
        assert_eq!(t.len(), 4 * 4);
    }

    #[test]
    fn table3_gains_sharded_tracking_arm_when_sharded() {
        let t = table3(&tiny_cfg(), 1, 10);
        assert_eq!(t.len(), 4 * 5);
        assert!(t.to_tsv().contains("GPS ENGINE(2) IN-STREAM"));
    }

    #[test]
    fn fig1_rows_have_finite_ratios() {
        let t = fig1(&tiny_cfg(), 1);
        assert_eq!(t.len(), 12);
        for line in t.to_tsv().lines().skip(1) {
            let cells: Vec<&str> = line.split('\t').collect();
            let tri: f64 = cells[2].parse().unwrap();
            let wedge: f64 = cells[3].parse().unwrap();
            assert!(tri.is_finite() && tri >= 0.0);
            assert!(wedge.is_finite() && wedge >= 0.0);
        }
    }

    #[test]
    fn fig2_sweeps_six_sizes_per_graph() {
        let t = fig2(&tiny_cfg());
        assert!(t.len().is_multiple_of(6) && !t.is_empty());
    }

    #[test]
    fn fig3_emits_checkpoint_series() {
        let t = fig3(&tiny_cfg(), 8);
        assert_eq!(t.len(), 2 * 8);
    }

    #[test]
    fn ablation_covers_weight_grid() {
        let t = ablation(&tiny_cfg(), 1);
        assert_eq!(t.len(), 2 * 4 * 2);
    }
}
