//! Harness configuration from CLI flags / environment variables.

use gps_graph::BackendKind;
use std::path::PathBuf;

/// Shared experiment configuration.
///
/// Flags (all optional): `--scale <f64>`, `--seed <u64>`, `--out <dir>`,
/// `--threads <n>`, `--backend compact|hashmap`, `--shards <n>`.
/// Environment fallbacks: `GPS_SCALE`, `GPS_SEED`, `GPS_OUT`,
/// `GPS_THREADS`, `GPS_BACKEND`, `GPS_SHARDS`.
///
/// `scale` multiplies every workload's size knobs; 1.0 builds graphs of
/// roughly 2–3 × 10⁵ edges each (laptop-friendly stand-ins for the paper's
/// 10⁶–10⁸-edge datasets; see DESIGN.md §5).
///
/// `backend` selects the adjacency substrate that *every* estimator in an
/// experiment runs on — GPS and the ported baselines alike — so accuracy
/// tables can be re-run on the nested-hash oracle to confirm the numbers
/// are backend-independent (they are, bit-for-bit; the flag exists to make
/// that claim checkable and to time the substrate difference).
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload scale multiplier.
    pub scale: f64,
    /// Base RNG seed for the whole experiment.
    pub seed: u64,
    /// Directory for TSV output (created on demand); `None` disables files.
    pub out_dir: Option<PathBuf>,
    /// Worker threads for parallel estimation.
    pub threads: usize,
    /// Adjacency backend every sampler in the experiment runs on.
    pub backend: BackendKind,
    /// Shard count for `gps-engine` workloads (the `scaling` bench and the
    /// sharded-ingest example read this as the top of their shard axis).
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 1.0,
            seed: 42,
            out_dir: Some(PathBuf::from("results")),
            threads: 4,
            backend: BackendKind::Compact,
            shards: 4,
        }
    }
}

/// Parses a backend name as accepted by `--backend` / `GPS_BACKEND`.
pub fn parse_backend(name: &str) -> Option<BackendKind> {
    match name {
        "compact" => Some(BackendKind::Compact),
        "hashmap" | "hash-map" | "map" => Some(BackendKind::HashMap),
        _ => None,
    }
}

impl Config {
    /// Parses `std::env::args` plus environment-variable fallbacks.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(v) = std::env::var("GPS_SCALE") {
            if let Ok(x) = v.parse() {
                cfg.scale = x;
            }
        }
        if let Ok(v) = std::env::var("GPS_SEED") {
            if let Ok(x) = v.parse() {
                cfg.seed = x;
            }
        }
        if let Ok(v) = std::env::var("GPS_OUT") {
            cfg.out_dir = Some(PathBuf::from(v));
        }
        if let Ok(v) = std::env::var("GPS_THREADS") {
            if let Ok(x) = v.parse() {
                cfg.threads = x;
            }
        }
        if let Ok(v) = std::env::var("GPS_BACKEND") {
            if let Some(kind) = parse_backend(&v) {
                cfg.backend = kind;
            }
        }
        if let Ok(v) = std::env::var("GPS_SHARDS") {
            if let Ok(x) = v.parse() {
                cfg.shards = x;
            }
        }
        let args: Vec<String> = std::env::args().collect();
        cfg.apply_args(&args);
        cfg
    }

    /// Applies `--flag value` pairs from an argument list (exposed for
    /// tests).
    pub fn apply_args(&mut self, args: &[String]) {
        let mut i = 0;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Ok(x) = args[i + 1].parse() {
                        self.scale = x;
                    }
                    i += 2;
                }
                "--seed" => {
                    if let Ok(x) = args[i + 1].parse() {
                        self.seed = x;
                    }
                    i += 2;
                }
                "--out" => {
                    self.out_dir = Some(PathBuf::from(&args[i + 1]));
                    i += 2;
                }
                "--threads" => {
                    if let Ok(x) = args[i + 1].parse() {
                        self.threads = x;
                    }
                    i += 2;
                }
                "--backend" => {
                    if let Some(kind) = parse_backend(&args[i + 1]) {
                        self.backend = kind;
                    }
                    i += 2;
                }
                "--shards" => {
                    if let Ok(x) = args[i + 1].parse() {
                        self.shards = x;
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        assert!(self.scale > 0.0, "--scale must be positive");
        assert!(self.shards > 0, "--shards must be positive");
    }

    /// A sub-seed derived from the base seed and a label (keeps independent
    /// experiments on independent RNG streams).
    pub fn sub_seed(&self, label: &str) -> u64 {
        let mut h = self.seed ^ 0x9e3779b97f4a7c15;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Writes a TSV artifact if an output directory is configured; returns
    /// the path written.
    pub fn write_tsv(&self, name: &str, content: &str) -> Option<PathBuf> {
        let dir = self.out_dir.as_ref()?;
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        let path = dir.join(name);
        std::fs::write(&path, content).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_override_defaults() {
        let mut cfg = Config::default();
        let args: Vec<String> = [
            "prog",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--threads",
            "2",
            "--out",
            "/tmp/x",
            "--backend",
            "hashmap",
            "--shards",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cfg.apply_args(&args);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(cfg.backend, BackendKind::HashMap);
        assert_eq!(cfg.shards, 8);
    }

    #[test]
    fn backend_names_parse() {
        assert_eq!(parse_backend("compact"), Some(BackendKind::Compact));
        assert_eq!(parse_backend("hashmap"), Some(BackendKind::HashMap));
        assert_eq!(parse_backend("hash-map"), Some(BackendKind::HashMap));
        assert_eq!(parse_backend("bogus"), None);
        assert_eq!(Config::default().backend, BackendKind::Compact);
    }

    #[test]
    fn unknown_flags_are_skipped() {
        let mut cfg = Config::default();
        let args: Vec<String> = ["prog", "--bogus", "--scale", "2.0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        cfg.apply_args(&args);
        assert_eq!(cfg.scale, 2.0);
    }

    #[test]
    fn sub_seeds_differ_by_label() {
        let cfg = Config::default();
        assert_ne!(cfg.sub_seed("a"), cfg.sub_seed("b"));
        assert_eq!(cfg.sub_seed("a"), cfg.sub_seed("a"));
    }

    #[test]
    fn write_tsv_respects_disabled_output() {
        let cfg = Config {
            out_dir: None,
            ..Default::default()
        };
        assert!(cfg.write_tsv("x.tsv", "a\n").is_none());
    }
}
