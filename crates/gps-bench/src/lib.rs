//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment is a library function returning render-ready
//! [`gps_stats::Table`]s, so the `src/bin/*` binaries stay thin and the
//! integration tests can exercise the full pipelines at reduced scale. The
//! mapping to the paper:
//!
//! | paper artifact | function | binary |
//! |----------------|----------|--------|
//! | Table 1 (post vs in-stream accuracy + CIs) | [`experiments::table1`] | `table1` |
//! | Table 2 (baseline ARE + update time) | [`experiments::table2`] | `table2` |
//! | Table 3 (MARE of estimates vs time) | [`experiments::table3`] | `table3` |
//! | Figure 1 (x̂/x scatter, triangles vs wedges) | [`experiments::fig1`] | `fig1` |
//! | Figure 2 (CI convergence vs sample size) | [`experiments::fig2`] | `fig2` |
//! | Figure 3 (real-time tracking with CIs) | [`experiments::fig3`] | `fig3` |
//! | §3.5 weight ablation (not a numbered figure) | [`experiments::ablation`] | `ablation` |
//! | §6 update-cost claim ("a few μs per edge") | [`perf::run_all`] | `bench_baseline` |
//!
//! `bench_baseline` additionally measures the compact adjacency backend
//! against the pre-refactor hash-map backend and persists the numbers as a
//! committed JSON trajectory (`BENCH_PR2.json`); see [`perf`] and [`json`].
//!
//! Scale, seed and output directory come from CLI flags / environment; see
//! [`config::Config`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapters;
pub mod config;
pub mod experiments;
pub mod json;
pub mod perf;
pub mod truth;
