//! [`TriangleEstimator`] adapters for the GPS estimators, so the harness can
//! drive GPS and the baselines through one interface.

use gps_baselines::TriangleEstimator;
use gps_core::weights::TriangleWeight;
use gps_core::{post_stream, GpsSampler, InStreamEstimator, TriadEstimates};
use gps_engine::{shard_seed, EdgePartitioner, ShardedGps};
use gps_graph::types::Edge;
use gps_graph::BackendKind;

/// GPS with post-stream estimation (paper "GPS POST"): samples with the
/// triangle-optimized weights and answers queries from the reservoir.
pub struct GpsPost {
    sampler: GpsSampler<TriangleWeight>,
}

impl GpsPost {
    /// Creates the adapter with reservoir capacity `m`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_backend(m, seed, BackendKind::Compact)
    }

    /// [`GpsPost::new`] on an explicit adjacency backend (the experiment
    /// harness threads `Config::backend` through here).
    pub fn with_backend(m: usize, seed: u64, backend: BackendKind) -> Self {
        GpsPost {
            sampler: GpsSampler::with_backend(m, TriangleWeight::default(), seed, backend),
        }
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &GpsSampler<TriangleWeight> {
        &self.sampler
    }
}

impl TriangleEstimator for GpsPost {
    fn process(&mut self, edge: Edge) {
        self.sampler.process(edge);
    }

    fn triangle_estimate(&self) -> f64 {
        post_stream::estimate_counts(&self.sampler).0
    }

    fn stored_edges(&self) -> usize {
        self.sampler.len()
    }

    fn name(&self) -> &'static str {
        "GPS POST"
    }
}

/// GPS with in-stream estimation (paper "GPS IN-STREAM").
pub struct GpsInStream {
    est: InStreamEstimator<TriangleWeight>,
}

impl GpsInStream {
    /// Creates the adapter with reservoir capacity `m`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_backend(m, seed, BackendKind::Compact)
    }

    /// [`GpsInStream::new`] on an explicit adjacency backend.
    pub fn with_backend(m: usize, seed: u64, backend: BackendKind) -> Self {
        GpsInStream {
            est: InStreamEstimator::with_backend(m, TriangleWeight::default(), seed, backend),
        }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &InStreamEstimator<TriangleWeight> {
        &self.est
    }
}

impl TriangleEstimator for GpsInStream {
    fn process(&mut self, edge: Edge) {
        self.est.process(edge);
    }

    fn triangle_estimate(&self) -> f64 {
        self.est.triangle_count()
    }

    fn stored_edges(&self) -> usize {
        self.est.sampler().len()
    }

    fn name(&self) -> &'static str {
        "GPS IN-STREAM"
    }
}

/// Single-threaded, checkpointable mirror of a `gps-engine` sharded run
/// with in-stream estimation: one `InStreamEstimator` per shard on the
/// engine's exact per-shard seeds and budgets, routed by the engine's
/// exact partition — so its estimates are **bit-identical** to
/// `ShardedGps::with_estimation` + `estimate_in_stream` on the same
/// config and stream (threading never changes per-shard arrival order),
/// while remaining queryable at any mid-stream checkpoint. Table 3's
/// sharded tracking arm runs on this.
pub struct ShardedInStream {
    parts: Vec<InStreamEstimator<TriangleWeight>>,
    partitioner: EdgePartitioner,
}

impl ShardedInStream {
    /// Mirror of `ShardedGps::new(m, TriangleWeight, seed, shards)` with
    /// in-stream estimation, on the compact backend.
    pub fn new(m: usize, seed: u64, shards: usize) -> Self {
        Self::with_backend(m, seed, shards, BackendKind::Compact)
    }

    /// [`ShardedInStream::new`] on an explicit adjacency backend.
    pub fn with_backend(m: usize, seed: u64, shards: usize, backend: BackendKind) -> Self {
        assert!(shards > 0 && m >= shards, "every shard needs a budget");
        ShardedInStream {
            parts: (0..shards)
                .map(|i| {
                    InStreamEstimator::with_backend(
                        ShardedGps::<TriangleWeight>::shard_capacity(m, shards, i),
                        TriangleWeight::default(),
                        shard_seed(seed, i),
                        backend,
                    )
                })
                .collect(),
            partitioner: EdgePartitioner::new(seed, shards),
        }
    }

    /// Merged estimates at the current stream position (the engine's
    /// `estimate_in_stream`, available at any checkpoint).
    pub fn estimates(&self) -> TriadEstimates {
        let parts: Vec<TriadEstimates> = self.parts.iter().map(|p| p.estimates()).collect();
        TriadEstimates::merged_colored(&parts)
    }
}

impl TriangleEstimator for ShardedInStream {
    fn process(&mut self, edge: Edge) {
        let s = self.partitioner.shard_of(edge);
        self.parts[s].process(edge);
    }

    fn triangle_estimate(&self) -> f64 {
        let s = self.parts.len() as f64;
        s * s * self.parts.iter().map(|p| p.triangle_count()).sum::<f64>()
    }

    fn stored_edges(&self) -> usize {
        self.parts.iter().map(|p| p.sampler().len()).sum()
    }

    fn name(&self) -> &'static str {
        "GPS SHARDED IN-STREAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k5() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn sharded_mirror_is_bit_identical_to_the_engine() {
        let mut edges = vec![];
        for base in (0..200u32).step_by(5) {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        for shards in [1usize, 3] {
            let mut engine = ShardedGps::with_estimation(
                gps_engine::EngineConfig::new(60, shards, 21),
                TriangleWeight::default(),
                None,
            );
            engine.push_stream(edges.iter().copied());
            let from_engine = engine.estimate_in_stream();
            let mut mirror = ShardedInStream::new(60, 21, shards);
            for &e in &edges {
                mirror.process(e);
            }
            let from_mirror = mirror.estimates();
            assert_eq!(
                from_engine.triangles.value.to_bits(),
                from_mirror.triangles.value.to_bits(),
                "S={shards}"
            );
            assert_eq!(
                from_engine.triangles.variance.to_bits(),
                from_mirror.triangles.variance.to_bits()
            );
            assert_eq!(
                from_engine.wedges.value.to_bits(),
                from_mirror.wedges.value.to_bits()
            );
            assert_eq!(
                from_mirror.triangles.value.to_bits(),
                mirror.triangle_estimate().to_bits(),
                "trait accessor must agree with the merged bundle"
            );
        }
    }

    #[test]
    fn adapters_are_exact_under_full_retention() {
        let mut post = GpsPost::new(100, 1);
        let mut instream = GpsInStream::new(100, 1);
        for e in k5() {
            post.process(e);
            instream.process(e);
        }
        assert!((post.triangle_estimate() - 10.0).abs() < 1e-9);
        assert!((instream.triangle_estimate() - 10.0).abs() < 1e-9);
        assert_eq!(post.stored_edges(), 10);
        assert_eq!(instream.stored_edges(), 10);
        assert_eq!(post.name(), "GPS POST");
        assert_eq!(instream.name(), "GPS IN-STREAM");
    }
}
