//! [`TriangleEstimator`] adapters for the GPS estimators, so the harness can
//! drive GPS and the baselines through one interface.

use gps_baselines::TriangleEstimator;
use gps_core::weights::TriangleWeight;
use gps_core::{post_stream, GpsSampler, InStreamEstimator};
use gps_graph::types::Edge;
use gps_graph::BackendKind;

/// GPS with post-stream estimation (paper "GPS POST"): samples with the
/// triangle-optimized weights and answers queries from the reservoir.
pub struct GpsPost {
    sampler: GpsSampler<TriangleWeight>,
}

impl GpsPost {
    /// Creates the adapter with reservoir capacity `m`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_backend(m, seed, BackendKind::Compact)
    }

    /// [`GpsPost::new`] on an explicit adjacency backend (the experiment
    /// harness threads `Config::backend` through here).
    pub fn with_backend(m: usize, seed: u64, backend: BackendKind) -> Self {
        GpsPost {
            sampler: GpsSampler::with_backend(m, TriangleWeight::default(), seed, backend),
        }
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &GpsSampler<TriangleWeight> {
        &self.sampler
    }
}

impl TriangleEstimator for GpsPost {
    fn process(&mut self, edge: Edge) {
        self.sampler.process(edge);
    }

    fn triangle_estimate(&self) -> f64 {
        post_stream::estimate_counts(&self.sampler).0
    }

    fn stored_edges(&self) -> usize {
        self.sampler.len()
    }

    fn name(&self) -> &'static str {
        "GPS POST"
    }
}

/// GPS with in-stream estimation (paper "GPS IN-STREAM").
pub struct GpsInStream {
    est: InStreamEstimator<TriangleWeight>,
}

impl GpsInStream {
    /// Creates the adapter with reservoir capacity `m`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_backend(m, seed, BackendKind::Compact)
    }

    /// [`GpsInStream::new`] on an explicit adjacency backend.
    pub fn with_backend(m: usize, seed: u64, backend: BackendKind) -> Self {
        GpsInStream {
            est: InStreamEstimator::with_backend(m, TriangleWeight::default(), seed, backend),
        }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &InStreamEstimator<TriangleWeight> {
        &self.est
    }
}

impl TriangleEstimator for GpsInStream {
    fn process(&mut self, edge: Edge) {
        self.est.process(edge);
    }

    fn triangle_estimate(&self) -> f64 {
        self.est.triangle_count()
    }

    fn stored_edges(&self) -> usize {
        self.est.sampler().len()
    }

    fn name(&self) -> &'static str {
        "GPS IN-STREAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k5() -> Vec<Edge> {
        let mut v = vec![];
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                v.push(Edge::new(a, b));
            }
        }
        v
    }

    #[test]
    fn adapters_are_exact_under_full_retention() {
        let mut post = GpsPost::new(100, 1);
        let mut instream = GpsInStream::new(100, 1);
        for e in k5() {
            post.process(e);
            instream.process(e);
        }
        assert!((post.triangle_estimate() - 10.0).abs() < 1e-9);
        assert!((instream.triangle_estimate() - 10.0).abs() < 1e-9);
        assert_eq!(post.stored_edges(), 10);
        assert_eq!(instream.stored_edges(), 10);
        assert_eq!(post.name(), "GPS POST");
        assert_eq!(instream.name(), "GPS IN-STREAM");
    }
}
