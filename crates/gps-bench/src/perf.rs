//! Reproducible `GPSUpdate` throughput measurement — the harness behind the
//! `bench_baseline` binary and the committed `BENCH_PR2.json` trajectory.
//!
//! Each [`Scenario`] is a full-stream sampling run: weight function ×
//! synthetic stream × reservoir capacity. Every scenario is measured on
//! *both* adjacency backends ([`BackendKind::Compact`] and the pre-refactor
//! [`BackendKind::HashMap`]) in the same process, so the reported speedup is
//! an apples-to-apples number on the machine that produced the file.
//! Timing takes the best of `iters` runs (minimum wall time — the standard
//! way to suppress scheduler noise for CPU-bound loops); stream generation
//! and sampler construction are untimed.
//!
//! Since the baselines port, the same both-backends protocol extends to the
//! ported `gps-baselines` samplers ([`run_baselines`]): each store-based
//! baseline is timed on its compact and nested-hash substrate, keeping the
//! paper's Table 2 update-cost comparison a pure algorithm measurement.
//!
//! [`run_engine`] adds the sharded-ingest scaling grid: the `gps-engine`
//! `ShardedGps` at `S ∈ {1, 2, 4, 8}` shards over a fixed total budget on
//! the triangle-weight Holme–Kim scenario (optional `engine` section of
//! the JSON document; schema unchanged).
//!
//! [`run_chaos`] adds the fault-injection grid: a scripted mid-stream
//! crash + checkpoint restore at `S ∈ {2, 4}` (recovery latency measured
//! externally as faulted-minus-clean wall time, exact loss/restart counts
//! from the engine's incident ledger) plus a gated serving probe that
//! counts degraded epochs published while one shard is stalled (optional
//! `chaos` section; schema unchanged).

use crate::json::Value;
use gps_baselines::{
    JhaWedgeSampler, Mascot, TriangleEstimator, TriestBase, TriestImpr, UniformReservoir,
};
use gps_chaos::run_engine_scenario;
use gps_core::weights::{TriadWeight, TriangleWeight, UniformWeight};
use gps_core::GpsSampler;
use gps_engine::{EngineConfig, EngineHealth, FaultPlan, ShardedGps};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_serve::{ClockMode, ServeConfig, ServeEngine};
use gps_stream::{gen, permuted};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Weight functions covered by the baseline (brackets the per-edge cost:
/// uniform ≈ floor, triangle/triad pay the common-neighbor intersection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightKind {
    /// `W ≡ 1` — no topology probe.
    Uniform,
    /// `W = 9·|△̂(k)| + 1` — the paper's headline weight.
    Triangle,
    /// Triangle + wedge mixture — heaviest per-edge cost.
    Triad,
}

impl WeightKind {
    /// All weights, in reporting order.
    pub const ALL: [WeightKind; 3] = [WeightKind::Uniform, WeightKind::Triangle, WeightKind::Triad];

    /// Stable scenario-name fragment.
    pub fn name(self) -> &'static str {
        match self {
            WeightKind::Uniform => "uniform",
            WeightKind::Triangle => "triangle",
            WeightKind::Triad => "triad",
        }
    }
}

/// Stream generators covered by the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Holme–Kim: clustered power-law (many triangles; heavy intersection).
    HolmeKim,
    /// R-MAT (social parameters): skewed hub degrees.
    Rmat,
}

impl StreamKind {
    /// All streams, in reporting order.
    pub const ALL: [StreamKind; 2] = [StreamKind::HolmeKim, StreamKind::Rmat];

    /// Stable scenario-name fragment.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::HolmeKim => "holme_kim",
            StreamKind::Rmat => "rmat",
        }
    }

    /// Generates the (seeded, permuted) edge stream at the given scale.
    /// Full-mode scales approximate the paper's §6 regime (graphs of
    /// hundreds of thousands of edges, reservoirs up to hundreds of
    /// thousands of slots); quick mode is CI-smoke sized.
    pub fn edges(self, quick: bool, seed: u64) -> Vec<Edge> {
        let edges = match (self, quick) {
            (StreamKind::HolmeKim, false) => gen::holme_kim(80_000, 4, 0.5, seed),
            (StreamKind::HolmeKim, true) => gen::holme_kim(2_000, 3, 0.5, seed),
            (StreamKind::Rmat, false) => gen::rmat(18, 320_000, gen::RmatParams::social(), seed),
            (StreamKind::Rmat, true) => gen::rmat(12, 8_000, gen::RmatParams::social(), seed),
        };
        permuted(&edges, seed ^ 0x5eed)
    }
}

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Stream generator.
    pub stream: StreamKind,
    /// Weight function.
    pub weight: WeightKind,
    /// Reservoir capacity `m`.
    pub capacity: usize,
}

impl Scenario {
    /// Stable machine-readable name, e.g. `holme_kim/triangle/m2000`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/m{}",
            self.stream.name(),
            self.weight.name(),
            self.capacity
        )
    }
}

/// Timing result of one scenario on one backend.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Best-of-iters wall time for the full stream, in nanoseconds.
    pub elapsed_ns: u128,
    /// Nanoseconds per processed edge (best run).
    pub ns_per_edge: f64,
    /// Processed edges per second (best run).
    pub edges_per_sec: f64,
}

/// A scenario measured on both backends.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The configuration.
    pub scenario: Scenario,
    /// Edges in the stream (arrivals processed per run).
    pub edges: usize,
    /// Compact (post-refactor) backend numbers.
    pub compact: Measurement,
    /// Hash-map (pre-refactor) backend numbers.
    pub hashmap: Measurement,
}

impl ScenarioResult {
    /// Compact-over-hashmap throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.compact.edges_per_sec / self.hashmap.edges_per_sec
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Reduced streams/capacities for CI smoke runs.
    pub quick: bool,
    /// Timed repetitions per (scenario, backend); the minimum is reported.
    pub iters: usize,
    /// Stream / sampler seed.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            quick: false,
            iters: 3,
            seed: 42,
        }
    }
}

/// Reservoir capacities measured per stream.
pub fn capacities(quick: bool) -> [usize; 2] {
    if quick {
        [500, 2_000]
    } else {
        [8_000, 16_000]
    }
}

fn time_once<W: gps_core::weights::EdgeWeight + Copy>(
    edges: &[Edge],
    capacity: usize,
    backend: BackendKind,
    weight_fn: W,
    seed: u64,
) -> u128 {
    let mut sampler = GpsSampler::with_backend(capacity, weight_fn, seed, backend);
    let start = Instant::now();
    for &e in edges {
        sampler.process(e);
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(sampler.len());
    elapsed
}

fn to_measurement(best_ns: u128, edges: usize) -> Measurement {
    let secs = best_ns as f64 / 1e9;
    Measurement {
        elapsed_ns: best_ns,
        ns_per_edge: best_ns as f64 / edges as f64,
        edges_per_sec: edges as f64 / secs.max(f64::MIN_POSITIVE),
    }
}

/// Times both backends with **interleaved** iterations (C, H, C, H, …) so
/// clock-frequency drift and noisy neighbors bias neither arm, reporting
/// each arm's best run.
fn time_pair<W: gps_core::weights::EdgeWeight + Copy>(
    edges: &[Edge],
    capacity: usize,
    weight_fn: W,
    seed: u64,
    iters: usize,
) -> (Measurement, Measurement) {
    let mut best_compact = u128::MAX;
    let mut best_hashmap = u128::MAX;
    for _ in 0..iters.max(1) {
        best_compact = best_compact.min(time_once(
            edges,
            capacity,
            BackendKind::Compact,
            weight_fn,
            seed,
        ));
        best_hashmap = best_hashmap.min(time_once(
            edges,
            capacity,
            BackendKind::HashMap,
            weight_fn,
            seed,
        ));
    }
    (
        to_measurement(best_compact, edges.len()),
        to_measurement(best_hashmap, edges.len()),
    )
}

fn measure_pair(
    edges: &[Edge],
    scenario: Scenario,
    cfg: &PerfConfig,
) -> (Measurement, Measurement) {
    match scenario.weight {
        WeightKind::Uniform => {
            time_pair(edges, scenario.capacity, UniformWeight, cfg.seed, cfg.iters)
        }
        WeightKind::Triangle => time_pair(
            edges,
            scenario.capacity,
            TriangleWeight::default(),
            cfg.seed,
            cfg.iters,
        ),
        WeightKind::Triad => time_pair(
            edges,
            scenario.capacity,
            TriadWeight::default(),
            cfg.seed,
            cfg.iters,
        ),
    }
}

/// Runs the full scenario grid (streams × weights × capacities × backends),
/// invoking `progress` with each finished scenario.
pub fn run_all(cfg: &PerfConfig, mut progress: impl FnMut(&ScenarioResult)) -> Vec<ScenarioResult> {
    let mut results = Vec::new();
    for stream in StreamKind::ALL {
        let edges = stream.edges(cfg.quick, cfg.seed);
        for capacity in capacities(cfg.quick) {
            for weight in WeightKind::ALL {
                let scenario = Scenario {
                    stream,
                    weight,
                    capacity,
                };
                let (compact, hashmap) = measure_pair(&edges, scenario, cfg);
                let result = ScenarioResult {
                    scenario,
                    edges: edges.len(),
                    compact,
                    hashmap,
                };
                progress(&result);
                results.push(result);
            }
        }
    }
    results
}

/// A ported baseline sampler timed on both adjacency backends over one
/// full stream (same best-of-iters, interleaved protocol as the GPS grid).
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Estimator display name (e.g. `TRIEST`).
    pub name: &'static str,
    /// Stable machine-readable scenario name, e.g. `baseline/triest/m8000`.
    pub scenario: String,
    /// Stored-edge budget the estimator was configured for.
    pub capacity: usize,
    /// Edges in the stream (arrivals processed per run).
    pub edges: usize,
    /// Compact-backend numbers.
    pub compact: Measurement,
    /// Hash-map-backend numbers.
    pub hashmap: Measurement,
}

impl BaselineResult {
    /// Compact-over-hashmap throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.compact.edges_per_sec / self.hashmap.edges_per_sec
    }
}

fn time_estimator(edges: &[Edge], mut est: Box<dyn TriangleEstimator>) -> u128 {
    let start = Instant::now();
    for &e in edges {
        est.process(e);
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(est.stored_edges());
    elapsed
}

/// Times the ported `gps-baselines` samplers on both adjacency backends:
/// the update-cost half of the paper's Table 2, with the data structure
/// held as an explicit axis. NSAMP is excluded — it keeps no adjacency, so
/// it has no backend axis (its cost is covered by the criterion
/// `baselines` bench).
pub fn run_baselines(
    cfg: &PerfConfig,
    mut progress: impl FnMut(&BaselineResult),
) -> Vec<BaselineResult> {
    let edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    let m = if cfg.quick { 500 } else { 8_000 };
    let p = (m as f64 / edges.len() as f64).min(1.0);
    let seed = cfg.seed;
    type Factory<'a> = Box<dyn Fn(BackendKind) -> Box<dyn TriangleEstimator> + 'a>;
    let factories: Vec<(&'static str, Factory)> = vec![
        (
            "triest",
            Box::new(move |b| Box::new(TriestBase::with_backend(m, seed, b))),
        ),
        (
            "triest_impr",
            Box::new(move |b| Box::new(TriestImpr::with_backend(m, seed, b))),
        ),
        (
            "mascot",
            Box::new(move |b| Box::new(Mascot::with_backend(p, seed, b))),
        ),
        (
            "jha",
            Box::new(move |b| Box::new(JhaWedgeSampler::with_backend(m, (m / 8).max(16), seed, b))),
        ),
        (
            "uniform_reservoir",
            Box::new(move |b| Box::new(UniformReservoir::with_backend(m, seed, b))),
        ),
    ];
    let mut results = Vec::new();
    for (name, factory) in &factories {
        let mut best_compact = u128::MAX;
        let mut best_hashmap = u128::MAX;
        for _ in 0..cfg.iters.max(1) {
            best_compact = best_compact.min(time_estimator(&edges, factory(BackendKind::Compact)));
            best_hashmap = best_hashmap.min(time_estimator(&edges, factory(BackendKind::HashMap)));
        }
        let result = BaselineResult {
            name: factory(BackendKind::Compact).name(),
            scenario: format!("baseline/{name}/m{m}"),
            capacity: m,
            edges: edges.len(),
            compact: to_measurement(best_compact, edges.len()),
            hashmap: to_measurement(best_hashmap, edges.len()),
        };
        progress(&result);
        results.push(result);
    }
    results
}

/// Shard counts measured by the engine scaling grid.
pub const ENGINE_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Total reservoir budget of the engine scaling scenario. Full mode uses
/// the grid's largest single-reservoir capacity so the `S = 1` arm is
/// directly comparable to the `holme_kim/triangle/m16000` scenario.
pub fn engine_capacity(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        16_000
    }
}

/// One shard count of the engine scaling scenario: full-stream sharded
/// ingest (push + finish) at total budget `m/S` per shard.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Shard / worker count `S`.
    pub shards: usize,
    /// Stable machine-readable name, e.g. `engine/holme_kim/triangle/m16000/s4`.
    pub scenario: String,
    /// Total reservoir budget `m` (split across shards).
    pub capacity: usize,
    /// Edges in the stream (arrivals pushed per run).
    pub edges: usize,
    /// Best-of-iters ingest numbers (includes batching, channel transfer
    /// and the final drain/join — everything between first push and owning
    /// the samplers).
    pub measurement: Measurement,
}

fn time_engine_once(edges: &[Edge], capacity: usize, shards: usize, seed: u64) -> u128 {
    let mut engine = ShardedGps::new(capacity, TriangleWeight::default(), seed, shards);
    let start = Instant::now();
    for &e in edges {
        engine.push(e);
    }
    engine.finish();
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(engine.len());
    elapsed
}

/// Measures the sharded engine's ingest throughput at `S ∈` [`ENGINE_SHARDS`]
/// on the triangle-weight Holme–Kim scenario (fixed *total* budget, so the
/// axis isolates sharding: per-shard reservoirs shrink as `m/S` and workers
/// run in parallel). The `S = 1` arm doubles as the engine-overhead
/// measurement against the bare-sampler scenario grid.
pub fn run_engine(cfg: &PerfConfig, mut progress: impl FnMut(&EngineResult)) -> Vec<EngineResult> {
    let edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    let m = engine_capacity(cfg.quick);
    let mut results = Vec::new();
    for shards in ENGINE_SHARDS {
        let mut best = u128::MAX;
        for _ in 0..cfg.iters.max(1) {
            best = best.min(time_engine_once(&edges, m, shards, cfg.seed));
        }
        let result = EngineResult {
            shards,
            scenario: format!("engine/holme_kim/triangle/m{m}/s{shards}"),
            capacity: m,
            edges: edges.len(),
            measurement: to_measurement(best, edges.len()),
        };
        progress(&result);
        results.push(result);
    }
    results
}

/// Concurrent reader counts measured by the serving grid (the acceptance
/// axis: ingest rate at 0 / 1 / 4 readers hammering `latest()`).
pub const SERVE_READERS: [usize; 3] = [0, 1, 4];

/// Shard count of the serving scenario.
pub const SERVE_SHARDS: usize = 4;

/// One reader count of the serving scenario: full-stream ingest through
/// `gps-serve`'s `ServeEngine` (in-stream estimation in every worker,
/// epoch publication on) while `readers` threads hammer
/// `QueryHandle::latest()` in a loop.
#[derive(Clone, Debug)]
pub struct ServeResult {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Stable machine-readable name, e.g.
    /// `serve/holme_kim/triangle/m16000/s4/r4`.
    pub scenario: String,
    /// Total reservoir budget `m` (split across [`SERVE_SHARDS`]).
    pub capacity: usize,
    /// Edges in the stream (arrivals pushed per run).
    pub edges: usize,
    /// Best-of-iters ingest numbers (push + finish, epochs publishing).
    pub measurement: Measurement,
    /// Total successful `latest()` reads across all readers (best run).
    pub reads: u64,
    /// Mean watermark lag `pushed − epoch.edges_seen` sampled during
    /// ingest (best run), in edges — the epoch staleness bound in action.
    pub staleness_mean_edges: f64,
    /// Maximum sampled watermark lag (best run), in edges.
    pub staleness_max_edges: u64,
}

struct ServeRun {
    elapsed: u128,
    reads: u64,
    staleness_mean: f64,
    staleness_max: u64,
}

fn time_serve_once(
    edges: &[Edge],
    capacity: usize,
    shards: usize,
    seed: u64,
    readers: usize,
) -> ServeRun {
    let mut serve = ServeEngine::new(capacity, TriangleWeight::default(), seed, shards);
    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let handle = serve.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                // ordering: Relaxed — stop flag only ends the measurement
                // loop; no data travels through it.
                while !stop.load(Ordering::Relaxed) {
                    if handle.latest().is_some() {
                        reads += 1;
                    }
                    // A real reader does work between queries; without
                    // this, spinning readers on few cores starve ingest
                    // and the axis measures the scheduler, not the cell.
                    std::thread::yield_now();
                }
                reads
            })
        })
        .collect();
    let probe = serve.handle();
    let mut lag_sum = 0u128;
    let mut lag_samples = 0u64;
    let mut lag_max = 0u64;
    let start = Instant::now();
    for (i, chunk) in edges.chunks(1024).enumerate() {
        serve.push_batch(chunk);
        if i % 16 == 0 {
            let watermark = probe.latest().map_or(0, |e| e.edges_seen);
            let lag = serve.pushed().saturating_sub(watermark);
            lag_sum += lag as u128;
            lag_samples += 1;
            lag_max = lag_max.max(lag);
        }
    }
    serve.finish();
    let elapsed = start.elapsed().as_nanos();
    // ordering: Relaxed — shutdown signal after the timed region; reader
    // counts are collected via join(), which synchronizes.
    stop.store(true, Ordering::Relaxed);
    let reads = reader_handles.into_iter().map(|r| r.join().unwrap()).sum();
    std::hint::black_box(probe.latest());
    ServeRun {
        elapsed,
        reads,
        staleness_mean: lag_sum as f64 / lag_samples.max(1) as f64,
        staleness_max: lag_max,
    }
}

/// Measures live-serving ingest at `readers ∈` [`SERVE_READERS`] concurrent
/// query threads on the triangle-weight Holme–Kim scenario ([`SERVE_SHARDS`]
/// shards, fixed total budget): the `r0` arm prices in-stream estimation +
/// epoch publication against the plain engine, the `r1`/`r4` arms price
/// concurrent readers (which, by design, ingest should barely notice — the
/// read path never touches a lock the workers hold).
pub fn run_serve(cfg: &PerfConfig, mut progress: impl FnMut(&ServeResult)) -> Vec<ServeResult> {
    let edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    let m = engine_capacity(cfg.quick);
    let mut results = Vec::new();
    for readers in SERVE_READERS {
        let mut best: Option<ServeRun> = None;
        for _ in 0..cfg.iters.max(1) {
            let run = time_serve_once(&edges, m, SERVE_SHARDS, cfg.seed, readers);
            if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                best = Some(run);
            }
        }
        let best = best.expect("at least one iteration");
        let result = ServeResult {
            readers,
            scenario: format!("serve/holme_kim/triangle/m{m}/s{SERVE_SHARDS}/r{readers}"),
            capacity: m,
            edges: edges.len(),
            measurement: to_measurement(best.elapsed, edges.len()),
            reads: best.reads,
            staleness_mean_edges: round2(best.staleness_mean),
            staleness_max_edges: best.staleness_max,
        };
        progress(&result);
        results.push(result);
    }
    results
}

/// Shard counts measured by the chaos grid (the ISSUE acceptance axis:
/// crash recovery and degraded serving at `S ∈ {2, 4}`).
pub const CHAOS_SHARDS: [usize; 2] = [2, 4];

/// One shard count of the chaos scenario: the same full-stream sharded
/// ingest as the engine grid, but with a scripted mid-stream worker crash
/// that the supervisor must absorb via a checkpoint restore.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    /// Shard / worker count `S`.
    pub shards: usize,
    /// Stable machine-readable name, e.g. `chaos/holme_kim/triangle/m16000/s4`.
    pub scenario: String,
    /// Total reservoir budget `m` (split across shards).
    pub capacity: usize,
    /// Edges in the stream (arrivals offered per run).
    pub edges: usize,
    /// Best-of-iters ingest with supervision + checkpointing armed but no
    /// fault injected — the honest denominator for recovery cost (both
    /// runs pay the checkpoint cadence).
    pub clean: Measurement,
    /// Best-of-iters ingest with the scripted crash + restore inline.
    pub faulted: Measurement,
    /// External wall-clock estimate of one crash-and-restore cycle:
    /// best faulted elapsed minus best clean elapsed, floored at zero
    /// (the engine itself never reads time into its estimates, so the
    /// latency is measured from outside).
    pub recovery_latency_ns: u128,
    /// Arrivals in the (checkpoint, crash] window the engine admits
    /// losing — exact, from [`EngineHealth`]; deterministic per seed.
    pub arrivals_lost: u64,
    /// Worker restarts the supervisor performed (1 for the single
    /// scripted crash).
    pub restarts: u64,
    /// Epochs a gated serving probe published while one shard was
    /// scripted to stall (timing-dependent; context for the next field).
    pub epochs: u64,
    /// Of those, epochs published in degraded mode (partial contributing
    /// set, honest per-color merge) once the publication gate expired.
    pub degraded_epochs: u64,
}

fn time_chaos_once(
    edges: &[Edge],
    capacity: usize,
    shards: usize,
    seed: u64,
    crash_at: Option<u64>,
) -> (u128, EngineHealth) {
    // Small batches so checkpoint boundaries actually precede the crash
    // site — otherwise the "restore" would be a from-scratch replay and
    // the loss window would swallow the whole substream so far.
    let cfg = EngineConfig {
        batch: 64,
        checkpoint_every: 64,
        ..EngineConfig::new(capacity, shards, seed)
    };
    let plan = match crash_at {
        Some(at) => FaultPlan::new().panic_at(shards - 1, at),
        None => FaultPlan::new(),
    };
    let start = Instant::now();
    let out = run_engine_scenario(cfg, TriangleWeight::default(), edges.iter().copied(), plan);
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(out.estimate.triangles.value);
    (elapsed, out.health)
}

/// Runs a quick-scale serving engine with one shard scripted to stall for
/// 400 ms behind a 50 ms publication gate (and a slowdown on shard 0 so a
/// live shard keeps reporting through the stall window), then counts the
/// epochs published and how many were degraded. Probe size is fixed at
/// quick scale regardless of mode: the metric is the gate's behavior
/// during the stall window, not throughput.
fn probe_degraded_epochs(shards: usize, seed: u64) -> (u64, u64) {
    let edges = StreamKind::HolmeKim.edges(true, seed);
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: 16,
            epoch_every: 32,
            checkpoint_every: 32,
            ..EngineConfig::new(edges.len() / 4, shards, seed)
        },
        subscribe_depth: 1 << 15,
        gate_timeout: Some(Duration::from_millis(50)),
        clock: ClockMode::Wall,
    };
    let faults = FaultPlan::new()
        .stall_at(shards - 1, 1, 400)
        .slowdown_at(0, 1, 2_000, 250);
    let mut serve = ServeEngine::with_config_and_faults(cfg, TriangleWeight::default(), faults);
    let sub = serve.handle().subscribe().expect("engine is live");
    serve.push_stream(edges.iter().copied());
    serve.finish();
    let mut epochs = 0u64;
    let mut degraded = 0u64;
    for epoch in sub {
        epochs += 1;
        if epoch.degraded() {
            degraded += 1;
        }
    }
    (epochs, degraded)
}

/// Measures crash recovery at `S ∈` [`CHAOS_SHARDS`] on the triangle-weight
/// Holme–Kim scenario: each shard count runs the stream clean (supervision
/// and checkpointing armed, no fault) and faulted (scripted panic on the
/// last shard a quarter into its expected substream), best of `iters`
/// each. Loss and restart counts come from the engine's deterministic
/// incident ledger; a gated serving probe contributes the degraded-epoch
/// count under a scripted stall.
pub fn run_chaos(cfg: &PerfConfig, mut progress: impl FnMut(&ChaosResult)) -> Vec<ChaosResult> {
    let edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    let m = engine_capacity(cfg.quick);
    let mut results = Vec::new();
    for shards in CHAOS_SHARDS {
        // A quarter into the expected per-shard substream: far enough in
        // that checkpoints exist, early enough that every shard count
        // reaches it even with hash-partition imbalance.
        let crash_at = (edges.len() / shards / 4).max(1) as u64;
        let mut clean_best = u128::MAX;
        let mut faulted_best = u128::MAX;
        let mut health = EngineHealth::default();
        for _ in 0..cfg.iters.max(1) {
            clean_best = clean_best.min(time_chaos_once(&edges, m, shards, cfg.seed, None).0);
            let (elapsed, h) = time_chaos_once(&edges, m, shards, cfg.seed, Some(crash_at));
            faulted_best = faulted_best.min(elapsed);
            // The ledger is deterministic per (seed, plan): identical
            // across iterations, so keeping the last run's copy is exact.
            health = h;
        }
        let (epochs, degraded_epochs) = probe_degraded_epochs(shards, cfg.seed);
        let result = ChaosResult {
            shards,
            scenario: format!("chaos/holme_kim/triangle/m{m}/s{shards}"),
            capacity: m,
            edges: edges.len(),
            clean: to_measurement(clean_best, edges.len()),
            faulted: to_measurement(faulted_best, edges.len()),
            recovery_latency_ns: faulted_best.saturating_sub(clean_best),
            arrivals_lost: health.lost_arrivals,
            restarts: health.incidents.iter().map(|i| u64::from(i.restarts)).sum(),
            epochs,
            degraded_epochs,
        };
        progress(&result);
        results.push(result);
    }
    results
}

/// Shard counts swept by the simulated scale-out grid per mode. Full mode
/// reaches `S = 256` — far beyond physical cores; the simulator runs nodes
/// as events, not threads, so the axis is pure algorithm behavior.
pub fn sim_shards(quick: bool) -> &'static [usize] {
    if quick {
        &[16, 64]
    } else {
        &[16, 64, 256]
    }
}

/// Runs the `gps-sim` discrete-event scale-out sweep: shard counts from
/// [`sim_shards`] × keyspace skew (hash vs Zipf) × fault scenario (clean /
/// straggler / crash-restore), every point in **virtual time** over the
/// production sampler/estimator/merge code. Unlike the wall-clock grids,
/// every number here is bit-deterministic per seed.
pub fn run_sim(
    cfg: &PerfConfig,
    mut progress: impl FnMut(&gps_sim::SweepPoint),
) -> Vec<gps_sim::SweepPoint> {
    let (n_edges, capacity) = if cfg.quick {
        (6_000, 3_000)
    } else {
        (20_000, 8_192)
    };
    gps_sim::sweep(sim_shards(cfg.quick), n_edges, capacity, cfg.seed, |p| {
        progress(p)
    })
}

/// One deterministic telemetry capture for the baseline document: the
/// engine's `Stable`-class counters after a clean, checkpointed run, plus
/// the FNV-1a fingerprint of the whole stable snapshot (counters *and*
/// histograms). Everything here is a pure function of seed + mode — no
/// wall clock — so a committed document re-validates bit-for-bit.
#[derive(Clone, Debug)]
pub struct TelemetryResult {
    /// Stable scenario name (`telemetry/holme_kim/triangle/mM/sS`).
    pub scenario: String,
    /// Stream length.
    pub edges: usize,
    /// Shard count of the capture run.
    pub shards: usize,
    /// `{:016x}` digest of the stable snapshot's text exposition.
    pub stable_fingerprint: String,
    /// Stable counters `(name, value)`, in snapshot (name) order.
    pub counters: Vec<(String, u64)>,
}

/// Captures the `telemetry` section: one clean engine run on the
/// triangle-weight Holme–Kim scenario with checkpointing armed, reduced to
/// its deterministic stable subset (see `TelemetrySnapshot::stable` in
/// `gps-telemetry`). Timing-class metrics and the event ring are excluded
/// on purpose — the committed numbers must replay exactly under
/// `bench_baseline --check`.
pub fn run_telemetry(cfg: &PerfConfig) -> TelemetryResult {
    let edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    let m = engine_capacity(cfg.quick);
    let shards = 2usize;
    let engine_cfg = EngineConfig {
        checkpoint_every: 64,
        ..EngineConfig::new(m, shards, cfg.seed)
    };
    let outcome = run_engine_scenario(
        engine_cfg,
        TriangleWeight::default(),
        edges.iter().copied(),
        FaultPlan::new(),
    );
    let stable = outcome.telemetry.stable();
    TelemetryResult {
        scenario: format!("telemetry/holme_kim/triangle/m{m}/s{shards}"),
        edges: edges.len(),
        shards,
        stable_fingerprint: format!("{:016x}", stable.fingerprint()),
        counters: stable
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect(),
    }
}

/// One stage row of the trace section: latency attribution for a pipeline
/// stage across every epoch of the traced run.
#[derive(Clone, Debug)]
pub struct TraceStage {
    /// Stage name from the trace-stage catalog (`docs/observability.md`).
    pub stage: String,
    /// Epochs that recorded this stage.
    pub count: u64,
    /// Median stage latency (nearest-rank) in clock nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile stage latency (nearest-rank) in clock nanoseconds.
    pub p99_ns: u64,
}

/// The `trace` section of the baseline document: per-stage latency
/// attribution from the serving stack's flight recorder over one
/// manual-clock run. Every field is stable — the run drives the clock
/// itself, so the percentiles replay bit-for-bit under `--check`.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// Stable scenario name (`trace/holme_kim/triangle/mM/s1`).
    pub scenario: String,
    /// Stream length of the traced run.
    pub edges: usize,
    /// Epochs retained by the flight recorder (all of them — the run is
    /// sized under the recorder capacity).
    pub epochs: usize,
    /// Per-stage attribution rows, in stage-name order.
    pub stages: Vec<TraceStage>,
    /// `{:016x}` FNV-1a digest of the rows plus every retained trace's
    /// own fingerprint.
    pub stable_fingerprint: String,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile_ns(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Captures the `trace` section: a single-shard serving engine on the
/// manual clock, driven one epoch-sized batch at a time — push a batch,
/// wait for its epoch, advance the clock one fixed step. Because the
/// driver owns the clock, every span the flight recorder stamps is a pure
/// function of seed + mode (the inter-epoch `arrival_batch` stage is
/// exactly one step; the in-publication stages are zero-width), so the
/// percentile table and its fingerprint replay exactly under
/// `bench_baseline --check`.
pub fn run_trace(cfg: &PerfConfig) -> TraceResult {
    let m = engine_capacity(cfg.quick);
    let chunk = 64usize;
    // Sized under the flight recorder's 64-trace capacity (one epoch per
    // chunk, plus the start-of-worker and drain-end epochs).
    let chunks = if cfg.quick { 16 } else { 48 };
    let mut edges = StreamKind::HolmeKim.edges(cfg.quick, cfg.seed);
    edges.truncate(chunk * chunks);
    let serve_cfg = ServeConfig {
        engine: EngineConfig {
            batch: chunk,
            epoch_every: chunk as u64,
            ..EngineConfig::new(m, 1, cfg.seed)
        },
        subscribe_depth: 1 << 10,
        gate_timeout: None,
        clock: ClockMode::Manual,
    };
    let mut serve = ServeEngine::with_config(serve_cfg, TriangleWeight::default());
    let handle = serve.handle();
    let step = Duration::from_micros(250);
    let mut pushed = 0u64;
    for batch in edges.chunks(chunk) {
        serve.push_batch(batch);
        pushed += batch.len() as u64;
        // Blocks until the batch's epoch publishes; also stamps its
        // first-observation span at the current (pre-advance) instant.
        handle.wait_for_edges(pushed);
        serve.advance_clock(step);
    }
    serve.finish();
    // Observe the drain-end epoch so its trace is complete too.
    std::hint::black_box(handle.latest());
    let traces = handle.recent_traces(gps_telemetry::DEFAULT_TRACE_CAPACITY);
    let mut by_stage: std::collections::BTreeMap<&'static str, Vec<u64>> =
        std::collections::BTreeMap::new();
    for t in &traces {
        for s in &t.spans {
            by_stage.entry(s.stage).or_default().push(s.duration_ns());
        }
    }
    let stages: Vec<TraceStage> = by_stage
        .into_iter()
        .map(|(stage, mut d)| {
            d.sort_unstable();
            TraceStage {
                stage: stage.to_string(),
                count: d.len() as u64,
                p50_ns: percentile_ns(&d, 50),
                p99_ns: percentile_ns(&d, 99),
            }
        })
        .collect();
    let scenario = format!("trace/holme_kim/triangle/m{m}/s1");
    let mut text = format!("{scenario} edges={} epochs={}", edges.len(), traces.len());
    for s in &stages {
        text.push_str(&format!(
            " {}:{}:{}:{}",
            s.stage, s.count, s.p50_ns, s.p99_ns
        ));
    }
    // FNV-1a over the rows, then fold in every retained trace's own digest
    // so the committed fingerprint pins full timelines, not just the table.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for t in &traces {
        h ^= t.fingerprint();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TraceResult {
        scenario,
        edges: edges.len(),
        epochs: traces.len(),
        stages,
        stable_fingerprint: format!("{h:016x}"),
    }
}

fn measurement_json(m: &Measurement) -> Value {
    Value::object(vec![
        ("elapsed_ns", Value::Number(m.elapsed_ns as f64)),
        ("ns_per_edge", Value::Number(round2(m.ns_per_edge))),
        ("edges_per_sec", Value::Number(round2(m.edges_per_sec))),
    ])
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Schema tag checked by the CI smoke run.
pub const SCHEMA: &str = "gps-bench/bench-baseline/v1";

/// The optional grids of a baseline document, bundled for
/// [`results_json`]. Each defaults to empty, and an empty grid's key is
/// omitted from the JSON, keeping documents produced before that grid
/// existed valid under the same schema.
#[derive(Clone, Copy, Default)]
pub struct OptionalGrids<'a> {
    /// Ported `gps-baselines` grid from [`run_baselines`] (`baseline_samplers` key).
    pub baselines: &'a [BaselineResult],
    /// Sharded-ingest scaling grid from [`run_engine`] (`engine` key).
    pub engine: &'a [EngineResult],
    /// Live-serving grid from [`run_serve`] (`serve` key).
    pub serve: &'a [ServeResult],
    /// Fault-injection grid from [`run_chaos`] (`chaos` key).
    pub chaos: &'a [ChaosResult],
    /// Simulated scale-out sweep from [`run_sim`] (`sim` key).
    pub sim: &'a [gps_sim::SweepPoint],
    /// Deterministic telemetry capture from [`run_telemetry`]
    /// (`telemetry` key; `None` omits it).
    pub telemetry: Option<&'a TelemetryResult>,
    /// Deterministic flight-recorder latency attribution from
    /// [`run_trace`] (`trace` key; `None` omits it).
    pub trace: Option<&'a TraceResult>,
}

/// Builds the machine-readable baseline document; the [`OptionalGrids`]
/// sections are emitted only when non-empty.
pub fn results_json(
    cfg: &PerfConfig,
    git_rev: &str,
    results: &[ScenarioResult],
    grids: OptionalGrids<'_>,
) -> Value {
    let OptionalGrids {
        baselines,
        engine,
        serve,
        chaos,
        sim,
        telemetry,
        trace,
    } = grids;
    let mut fields = vec![
        ("schema", Value::String(SCHEMA.into())),
        ("git_rev", Value::String(git_rev.into())),
        (
            "mode",
            Value::String(if cfg.quick { "quick" } else { "full" }.into()),
        ),
        ("iters", Value::Number(cfg.iters as f64)),
        ("seed", Value::Number(cfg.seed as f64)),
        (
            "scenarios",
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object(vec![
                            ("name", Value::String(r.scenario.name())),
                            ("stream", Value::String(r.scenario.stream.name().into())),
                            ("weight", Value::String(r.scenario.weight.name().into())),
                            ("capacity", Value::Number(r.scenario.capacity as f64)),
                            ("edges", Value::Number(r.edges as f64)),
                            ("compact", measurement_json(&r.compact)),
                            ("hashmap", measurement_json(&r.hashmap)),
                            ("speedup", Value::Number(round2(r.speedup()))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if !baselines.is_empty() {
        fields.push((
            "baseline_samplers",
            Value::Array(
                baselines
                    .iter()
                    .map(|r| {
                        Value::object(vec![
                            ("name", Value::String(r.scenario.clone())),
                            ("method", Value::String(r.name.into())),
                            ("capacity", Value::Number(r.capacity as f64)),
                            ("edges", Value::Number(r.edges as f64)),
                            ("compact", measurement_json(&r.compact)),
                            ("hashmap", measurement_json(&r.hashmap)),
                            ("speedup", Value::Number(round2(r.speedup()))),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !engine.is_empty() {
        let s1_rate = engine
            .iter()
            .find(|r| r.shards == 1)
            .map(|r| r.measurement.edges_per_sec);
        fields.push((
            "engine",
            Value::object(vec![
                ("stream", Value::String("holme_kim".into())),
                ("weight", Value::String("triangle".into())),
                ("capacity", Value::Number(engine[0].capacity as f64)),
                ("edges", Value::Number(engine[0].edges as f64)),
                (
                    "shards",
                    Value::Array(
                        engine
                            .iter()
                            .map(|r| {
                                let mut entry = vec![
                                    ("name", Value::String(r.scenario.clone())),
                                    ("shards", Value::Number(r.shards as f64)),
                                    ("elapsed_ns", Value::Number(r.measurement.elapsed_ns as f64)),
                                    (
                                        "ns_per_edge",
                                        Value::Number(round2(r.measurement.ns_per_edge)),
                                    ),
                                    (
                                        "edges_per_sec",
                                        Value::Number(round2(r.measurement.edges_per_sec)),
                                    ),
                                ];
                                if let Some(s1) = s1_rate {
                                    entry.push((
                                        "speedup_vs_s1",
                                        Value::Number(round2(r.measurement.edges_per_sec / s1)),
                                    ));
                                }
                                Value::object(entry)
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if !serve.is_empty() {
        let r0_rate = serve
            .iter()
            .find(|r| r.readers == 0)
            .map(|r| r.measurement.edges_per_sec);
        fields.push((
            "serve",
            Value::object(vec![
                ("stream", Value::String("holme_kim".into())),
                ("weight", Value::String("triangle".into())),
                ("capacity", Value::Number(serve[0].capacity as f64)),
                ("shards", Value::Number(SERVE_SHARDS as f64)),
                ("edges", Value::Number(serve[0].edges as f64)),
                (
                    "readers",
                    Value::Array(
                        serve
                            .iter()
                            .map(|r| {
                                let mut entry = vec![
                                    ("name", Value::String(r.scenario.clone())),
                                    ("readers", Value::Number(r.readers as f64)),
                                    ("elapsed_ns", Value::Number(r.measurement.elapsed_ns as f64)),
                                    (
                                        "ns_per_edge",
                                        Value::Number(round2(r.measurement.ns_per_edge)),
                                    ),
                                    (
                                        "edges_per_sec",
                                        Value::Number(round2(r.measurement.edges_per_sec)),
                                    ),
                                    ("reads", Value::Number(r.reads as f64)),
                                    (
                                        "staleness_mean_edges",
                                        Value::Number(r.staleness_mean_edges),
                                    ),
                                    (
                                        "staleness_max_edges",
                                        Value::Number(r.staleness_max_edges as f64),
                                    ),
                                ];
                                if let Some(r0) = r0_rate {
                                    entry.push((
                                        "rate_vs_r0",
                                        Value::Number(round2(r.measurement.edges_per_sec / r0)),
                                    ));
                                }
                                Value::object(entry)
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if !chaos.is_empty() {
        fields.push((
            "chaos",
            Value::object(vec![
                ("stream", Value::String("holme_kim".into())),
                ("weight", Value::String("triangle".into())),
                ("capacity", Value::Number(chaos[0].capacity as f64)),
                ("edges", Value::Number(chaos[0].edges as f64)),
                (
                    "shards",
                    Value::Array(
                        chaos
                            .iter()
                            .map(|r| {
                                Value::object(vec![
                                    ("name", Value::String(r.scenario.clone())),
                                    ("shards", Value::Number(r.shards as f64)),
                                    ("clean", measurement_json(&r.clean)),
                                    ("faulted", measurement_json(&r.faulted)),
                                    (
                                        "recovery_latency_ns",
                                        Value::Number(r.recovery_latency_ns as f64),
                                    ),
                                    ("arrivals_lost", Value::Number(r.arrivals_lost as f64)),
                                    ("restarts", Value::Number(r.restarts as f64)),
                                    ("epochs", Value::Number(r.epochs as f64)),
                                    ("degraded_epochs", Value::Number(r.degraded_epochs as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if !sim.is_empty() {
        fields.push((
            "sim",
            Value::object(vec![
                ("edges", Value::Number(sim[0].pushed as f64)),
                (
                    "points",
                    Value::Array(
                        sim.iter()
                            .map(|p| {
                                // Booleans as 0/1: the document stays in the
                                // numbers-and-strings subset the rest of the
                                // schema uses.
                                Value::object(vec![
                                    ("name", Value::String(p.name())),
                                    ("shards", Value::Number(p.shards as f64)),
                                    ("aggregators", Value::Number(p.aggregators as f64)),
                                    ("skew", Value::String(p.skew.into())),
                                    ("scenario", Value::String(p.scenario.into())),
                                    ("seed", Value::Number(p.seed as f64)),
                                    ("pushed", Value::Number(p.pushed as f64)),
                                    ("exact_triangles", Value::Number(p.exact_triangles as f64)),
                                    ("exact_wedges", Value::Number(p.exact_wedges as f64)),
                                    ("tri_are", Value::Number(round2(p.tri_are))),
                                    ("wedge_are", Value::Number(round2(p.wedge_are))),
                                    (
                                        "tri_covered",
                                        Value::Number(f64::from(u8::from(p.tri_covered))),
                                    ),
                                    (
                                        "wedge_covered",
                                        Value::Number(f64::from(u8::from(p.wedge_covered))),
                                    ),
                                    ("epochs", Value::Number(p.epochs as f64)),
                                    ("degraded_epochs", Value::Number(p.degraded_epochs as f64)),
                                    ("staleness_max_ns", Value::Number(p.staleness_max_ns as f64)),
                                    (
                                        "staleness_mean_ns",
                                        Value::Number(p.staleness_mean_ns as f64),
                                    ),
                                    ("arrivals_lost", Value::Number(p.lost_arrivals as f64)),
                                    ("restarts", Value::Number(p.restarts as f64)),
                                    (
                                        "tree_identical",
                                        Value::Number(f64::from(u8::from(p.tree_identical))),
                                    ),
                                    ("finished_at_ns", Value::Number(p.finished_at_ns as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(t) = telemetry {
        fields.push((
            "telemetry",
            Value::object(vec![
                ("scenario", Value::String(t.scenario.clone())),
                ("edges", Value::Number(t.edges as f64)),
                ("shards", Value::Number(t.shards as f64)),
                (
                    "stable_fingerprint",
                    Value::String(t.stable_fingerprint.clone()),
                ),
                (
                    "counters",
                    Value::Array(
                        t.counters
                            .iter()
                            .map(|(name, value)| {
                                // Counter values are bounded by stream
                                // length × small constants, far below
                                // 2^53 — exact in a JSON number.
                                Value::object(vec![
                                    ("name", Value::String(name.clone())),
                                    ("value", Value::Number(*value as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(t) = trace {
        fields.push((
            "trace",
            Value::object(vec![
                ("scenario", Value::String(t.scenario.clone())),
                ("edges", Value::Number(t.edges as f64)),
                ("epochs", Value::Number(t.epochs as f64)),
                (
                    "stable_fingerprint",
                    Value::String(t.stable_fingerprint.clone()),
                ),
                (
                    "stages",
                    Value::Array(
                        t.stages
                            .iter()
                            .map(|s| {
                                Value::object(vec![
                                    ("stage", Value::String(s.stage.clone())),
                                    ("count", Value::Number(s.count as f64)),
                                    ("p50_ns", Value::Number(s.p50_ns as f64)),
                                    ("p99_ns", Value::Number(s.p99_ns as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Value::object(fields)
}

/// Fields every scenario entry of a baseline document must carry.
pub const REQUIRED_SCENARIO_FIELDS: [&str; 8] = [
    "name", "stream", "weight", "capacity", "edges", "compact", "hashmap", "speedup",
];

/// Validates a parsed baseline document's shape. Returns the list of
/// problems (empty = valid).
pub fn validate_baseline(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    match doc.get_str("schema") {
        Some(SCHEMA) => {}
        Some(other) => problems.push(format!("unexpected schema '{other}'")),
        None => problems.push("missing 'schema'".into()),
    }
    for key in ["git_rev", "mode"] {
        if doc.get_str(key).is_none() {
            problems.push(format!("missing '{key}'"));
        }
    }
    let Some(scenarios) = doc.get("scenarios").and_then(Value::as_array) else {
        problems.push("missing 'scenarios' array".into());
        return problems;
    };
    if scenarios.is_empty() {
        problems.push("'scenarios' is empty".into());
    }
    for (i, s) in scenarios.iter().enumerate() {
        for field in REQUIRED_SCENARIO_FIELDS {
            if s.get(field).is_none() {
                problems.push(format!("scenario {i} missing '{field}'"));
            }
        }
        validate_measurements(s, &format!("scenario {i}"), &mut problems);
    }
    // Optional section (absent in documents predating the baselines port):
    // the ported gps-baselines grid, same per-backend measurement shape.
    if let Some(baselines) = doc.get("baseline_samplers").and_then(Value::as_array) {
        for (i, s) in baselines.iter().enumerate() {
            for field in ["name", "method", "capacity", "edges", "compact", "hashmap"] {
                if s.get(field).is_none() {
                    problems.push(format!("baseline {i} missing '{field}'"));
                }
            }
            validate_measurements(s, &format!("baseline {i}"), &mut problems);
        }
    }
    // Optional section (absent in documents predating gps-engine): the
    // sharded-ingest scaling grid.
    if let Some(engine) = doc.get("engine") {
        for field in ["stream", "weight", "capacity", "edges"] {
            if engine.get(field).is_none() {
                problems.push(format!("engine section missing '{field}'"));
            }
        }
        match engine.get("shards").and_then(Value::as_array) {
            Some(entries) if !entries.is_empty() => {
                for (i, entry) in entries.iter().enumerate() {
                    match entry.get_f64("shards") {
                        Some(s) if s >= 1.0 => {}
                        _ => problems.push(format!("engine entry {i} has invalid 'shards'")),
                    }
                    for field in ["name", "elapsed_ns", "ns_per_edge", "edges_per_sec"] {
                        match (field, entry.get(field)) {
                            (_, None) => {
                                problems.push(format!("engine entry {i} missing '{field}'"))
                            }
                            ("name", Some(_)) => {}
                            (_, Some(v)) => match v.as_f64() {
                                Some(x) if x > 0.0 => {}
                                _ => problems
                                    .push(format!("engine entry {i} {field} is not positive")),
                            },
                        }
                    }
                }
            }
            _ => problems.push("engine section missing 'shards' entries".into()),
        }
    }
    // Optional section (absent in documents predating gps-serve): the
    // live-serving grid — ingest under concurrent readers plus staleness.
    if let Some(serve) = doc.get("serve") {
        for field in ["stream", "weight", "capacity", "shards", "edges"] {
            if serve.get(field).is_none() {
                problems.push(format!("serve section missing '{field}'"));
            }
        }
        match serve.get("readers").and_then(Value::as_array) {
            Some(entries) if !entries.is_empty() => {
                for (i, entry) in entries.iter().enumerate() {
                    if entry.get("name").is_none() {
                        problems.push(format!("serve entry {i} missing 'name'"));
                    }
                    // Counters that may legitimately be zero (r0 has no
                    // reads; a fast quick run may sample zero lag).
                    for field in [
                        "readers",
                        "reads",
                        "staleness_mean_edges",
                        "staleness_max_edges",
                    ] {
                        match entry.get_f64(field) {
                            Some(x) if x >= 0.0 => {}
                            Some(_) => {
                                problems.push(format!("serve entry {i} {field} is negative"))
                            }
                            None => problems.push(format!("serve entry {i} missing '{field}'")),
                        }
                    }
                    for field in ["elapsed_ns", "ns_per_edge", "edges_per_sec"] {
                        match entry.get_f64(field) {
                            Some(x) if x > 0.0 => {}
                            Some(_) => {
                                problems.push(format!("serve entry {i} {field} is not positive"))
                            }
                            None => problems.push(format!("serve entry {i} missing '{field}'")),
                        }
                    }
                }
            }
            _ => problems.push("serve section missing 'readers' entries".into()),
        }
    }
    // Optional section (absent in documents predating the fault-tolerance
    // work): the crash-recovery grid — clean vs faulted ingest, exact loss
    // ledger counts, and the gated degraded-epoch probe.
    if let Some(chaos) = doc.get("chaos") {
        for field in ["stream", "weight", "capacity", "edges"] {
            if chaos.get(field).is_none() {
                problems.push(format!("chaos section missing '{field}'"));
            }
        }
        match chaos.get("shards").and_then(Value::as_array) {
            Some(entries) if !entries.is_empty() => {
                for (i, entry) in entries.iter().enumerate() {
                    if entry.get("name").is_none() {
                        problems.push(format!("chaos entry {i} missing 'name'"));
                    }
                    match entry.get_f64("shards") {
                        Some(s) if s >= 1.0 => {}
                        _ => problems.push(format!("chaos entry {i} has invalid 'shards'")),
                    }
                    if entry.get("clean").is_none() {
                        problems.push(format!("chaos entry {i} missing 'clean'"));
                    }
                    if entry.get("faulted").is_none() {
                        problems.push(format!("chaos entry {i} missing 'faulted'"));
                    }
                    validate_measurement_objects(
                        entry,
                        &["clean", "faulted"],
                        &format!("chaos entry {i}"),
                        &mut problems,
                    );
                    // A supervised crash always loses at least the
                    // panicking arrival and restarts the worker once —
                    // zeros here mean the scripted fault never fired.
                    for field in ["arrivals_lost", "restarts"] {
                        match entry.get_f64(field) {
                            Some(x) if x >= 1.0 => {}
                            Some(_) => problems.push(format!(
                                "chaos entry {i} {field} says the scripted crash never fired"
                            )),
                            None => problems.push(format!("chaos entry {i} missing '{field}'")),
                        }
                    }
                    // Timing-dependent counters that may legitimately be
                    // zero (an instant recovery, a race-free probe run).
                    for field in ["recovery_latency_ns", "epochs", "degraded_epochs"] {
                        match entry.get_f64(field) {
                            Some(x) if x >= 0.0 => {}
                            Some(_) => {
                                problems.push(format!("chaos entry {i} {field} is negative"))
                            }
                            None => problems.push(format!("chaos entry {i} missing '{field}'")),
                        }
                    }
                }
            }
            _ => problems.push("chaos section missing 'shards' entries".into()),
        }
    }
    // Optional section (absent in documents predating gps-sim): the
    // discrete-event scale-out sweep — virtual-time quality numbers, so
    // the checks are about ledger shape, not wall-clock positivity.
    if let Some(sim) = doc.get("sim") {
        if sim.get("edges").is_none() {
            problems.push("sim section missing 'edges'".into());
        }
        match sim.get("points").and_then(Value::as_array) {
            Some(points) if !points.is_empty() => {
                for (i, p) in points.iter().enumerate() {
                    for field in ["name", "skew", "scenario"] {
                        if p.get_str(field).is_none() {
                            problems.push(format!("sim point {i} missing '{field}'"));
                        }
                    }
                    match p.get_f64("shards") {
                        Some(s) if s >= 1.0 => {}
                        _ => problems.push(format!("sim point {i} has invalid 'shards'")),
                    }
                    // The merge-tree identity is the simulator's core
                    // claim: a 0 here means the tree merge diverged from
                    // the flat merge and the document must not validate.
                    match p.get_f64("tree_identical") {
                        Some(x) => {
                            if x != 1.0 {
                                problems.push(format!(
                                    "sim point {i} tree_identical says the merge tree diverged"
                                ));
                            }
                        }
                        None => problems.push(format!("sim point {i} missing 'tree_identical'")),
                    }
                    for field in [
                        "pushed",
                        "tri_are",
                        "wedge_are",
                        "tri_covered",
                        "wedge_covered",
                        "epochs",
                        "degraded_epochs",
                        "staleness_max_ns",
                        "staleness_mean_ns",
                        "arrivals_lost",
                        "restarts",
                        "finished_at_ns",
                    ] {
                        match p.get_f64(field) {
                            Some(x) if x >= 0.0 => {}
                            Some(_) => problems.push(format!("sim point {i} {field} is negative")),
                            None => problems.push(format!("sim point {i} missing '{field}'")),
                        }
                    }
                }
            }
            _ => problems.push("sim section missing 'points' entries".into()),
        }
    }
    // Optional section (absent in documents predating gps-telemetry): one
    // deterministic stable-counter capture plus the digest that pins it.
    if let Some(t) = doc.get("telemetry") {
        if t.get_str("scenario").is_none() {
            problems.push("telemetry section missing 'scenario'".into());
        }
        for field in ["edges", "shards"] {
            match t.get_f64(field) {
                Some(x) if x >= 1.0 => {}
                _ => problems.push(format!("telemetry section has invalid '{field}'")),
            }
        }
        match t.get_str("stable_fingerprint") {
            Some(fp) if fp.len() == 16 && fp.bytes().all(|b| b.is_ascii_hexdigit()) => {}
            Some(_) => {
                problems.push("telemetry stable_fingerprint is not a 64-bit hex digest".into())
            }
            None => problems.push("telemetry section missing 'stable_fingerprint'".into()),
        }
        match t.get("counters").and_then(Value::as_array) {
            Some(entries) if !entries.is_empty() => {
                for (i, entry) in entries.iter().enumerate() {
                    if entry.get_str("name").is_none() {
                        problems.push(format!("telemetry counter {i} missing 'name'"));
                    }
                    match entry.get_f64("value") {
                        Some(x) if x >= 0.0 => {}
                        Some(_) => {
                            problems.push(format!("telemetry counter {i} value is negative"))
                        }
                        None => problems.push(format!("telemetry counter {i} missing 'value'")),
                    }
                }
                // A capture without the engine's arrival ledger measured
                // nothing — the section must carry the core counter.
                if !entries
                    .iter()
                    .any(|e| e.get_str("name") == Some("gps_engine_arrivals_total"))
                {
                    problems.push("telemetry counters missing 'gps_engine_arrivals_total'".into());
                }
            }
            _ => problems.push("telemetry section missing 'counters' entries".into()),
        }
    }
    // Optional section (absent in documents predating the flight
    // recorder): per-stage latency attribution plus the digest pinning
    // the retained timelines.
    if let Some(t) = doc.get("trace") {
        if t.get_str("scenario").is_none() {
            problems.push("trace section missing 'scenario'".into());
        }
        for field in ["edges", "epochs"] {
            match t.get_f64(field) {
                Some(x) if x >= 1.0 => {}
                _ => problems.push(format!("trace section has invalid '{field}'")),
            }
        }
        match t.get_str("stable_fingerprint") {
            Some(fp) if fp.len() == 16 && fp.bytes().all(|b| b.is_ascii_hexdigit()) => {}
            Some(_) => problems.push("trace stable_fingerprint is not a 64-bit hex digest".into()),
            None => problems.push("trace section missing 'stable_fingerprint'".into()),
        }
        match t.get("stages").and_then(Value::as_array) {
            Some(entries) if !entries.is_empty() => {
                for (i, entry) in entries.iter().enumerate() {
                    if entry.get_str("stage").is_none() {
                        problems.push(format!("trace stage {i} missing 'stage'"));
                    }
                    match entry.get_f64("count") {
                        Some(x) if x >= 1.0 => {}
                        _ => problems.push(format!("trace stage {i} has invalid 'count'")),
                    }
                    for field in ["p50_ns", "p99_ns"] {
                        match entry.get_f64(field) {
                            Some(x) if x >= 0.0 => {}
                            _ => problems.push(format!("trace stage {i} has invalid '{field}'")),
                        }
                    }
                }
                // A traced run that never reached the merge stage traced
                // nothing — the table must carry the pipeline's heart.
                if !entries.iter().any(|e| e.get_str("stage") == Some("merge")) {
                    problems.push("trace stages missing 'merge'".into());
                }
            }
            _ => problems.push("trace section missing 'stages' entries".into()),
        }
    }
    problems
}

/// Checks the `compact`/`hashmap` measurement objects of one entry.
fn validate_measurements(entry: &Value, what: &str, problems: &mut Vec<String>) {
    validate_measurement_objects(entry, &["compact", "hashmap"], what, problems);
}

/// Checks the named measurement objects of one entry (those present; the
/// caller reports which keys are required).
fn validate_measurement_objects(
    entry: &Value,
    keys: &[&str],
    what: &str,
    problems: &mut Vec<String>,
) {
    for backend in keys {
        if let Some(m) = entry.get(backend) {
            for field in ["elapsed_ns", "ns_per_edge", "edges_per_sec"] {
                match m.get_f64(field) {
                    Some(x) if x > 0.0 => {}
                    Some(_) => problems.push(format!("{what} {backend}.{field} is not positive")),
                    None => problems.push(format!("{what} {backend} missing '{field}'")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny_cfg() -> PerfConfig {
        PerfConfig {
            quick: true,
            iters: 1,
            seed: 7,
        }
    }

    #[test]
    fn scenario_names_are_stable() {
        let s = Scenario {
            stream: StreamKind::HolmeKim,
            weight: WeightKind::Triangle,
            capacity: 2000,
        };
        assert_eq!(s.name(), "holme_kim/triangle/m2000");
    }

    #[test]
    fn quick_streams_are_nonempty_and_deterministic() {
        for kind in StreamKind::ALL {
            let a = kind.edges(true, 3);
            let b = kind.edges(true, 3);
            assert!(!a.is_empty());
            assert_eq!(a, b, "stream generation must be seeded");
        }
    }

    #[test]
    fn baseline_document_round_trips_and_validates() {
        // One micro-scenario end to end: measure, emit, parse, validate.
        let cfg = tiny_cfg();
        let edges = StreamKind::HolmeKim.edges(true, cfg.seed);
        let scenario = Scenario {
            stream: StreamKind::HolmeKim,
            weight: WeightKind::Uniform,
            capacity: 128,
        };
        let (compact, hashmap) = measure_pair(&edges, scenario, &cfg);
        let result = ScenarioResult {
            scenario,
            edges: edges.len(),
            compact,
            hashmap,
        };
        // Without the optional sections (the committed-file shape)…
        let doc = results_json(
            &cfg,
            "deadbeef",
            std::slice::from_ref(&result),
            OptionalGrids::default(),
        );
        assert!(doc.get("baseline_samplers").is_none());
        assert!(doc.get("engine").is_none());
        assert!(doc.get("serve").is_none());
        assert!(doc.get("chaos").is_none());
        assert!(doc.get("sim").is_none());
        assert!(doc.get("telemetry").is_none());
        assert!(doc.get("trace").is_none());
        let parsed = json::parse(&doc.to_pretty()).expect("emitted JSON must parse");
        assert_eq!(parsed, doc);
        assert!(validate_baseline(&parsed).is_empty());
        // …and with both of them.
        let baseline = BaselineResult {
            name: "TRIEST",
            scenario: "baseline/triest/m128".into(),
            capacity: 128,
            edges: edges.len(),
            compact,
            hashmap,
        };
        let engine = [1usize, 2]
            .map(|shards| EngineResult {
                shards,
                scenario: format!("engine/holme_kim/triangle/m128/s{shards}"),
                capacity: 128,
                edges: edges.len(),
                measurement: compact,
            })
            .to_vec();
        let serve = SERVE_READERS
            .map(|readers| ServeResult {
                readers,
                scenario: format!("serve/holme_kim/triangle/m128/s4/r{readers}"),
                capacity: 128,
                edges: edges.len(),
                measurement: compact,
                reads: if readers == 0 { 0 } else { 17 },
                staleness_mean_edges: 12.5,
                staleness_max_edges: 99,
            })
            .to_vec();
        let chaos = CHAOS_SHARDS
            .map(|shards| ChaosResult {
                shards,
                scenario: format!("chaos/holme_kim/triangle/m128/s{shards}"),
                capacity: 128,
                edges: edges.len(),
                clean: compact,
                faulted: compact,
                recovery_latency_ns: 120_000,
                arrivals_lost: 33,
                restarts: 1,
                epochs: 40,
                degraded_epochs: 3,
            })
            .to_vec();
        let sim = vec![gps_sim::SweepPoint {
            shards: 16,
            aggregators: 2,
            skew: "hash",
            scenario: "clean",
            seed: 7,
            pushed: 6_000,
            exact_triangles: 900,
            exact_wedges: 40_000,
            tri_are: 0.12,
            wedge_are: 0.01,
            tri_covered: true,
            wedge_covered: true,
            epochs: 12,
            degraded_epochs: 1,
            staleness_max_ns: 5_000_000,
            staleness_mean_ns: 800_000,
            lost_arrivals: 0,
            restarts: 0,
            tree_identical: true,
            finished_at_ns: 9_000_000,
        }];
        let telemetry = TelemetryResult {
            scenario: "telemetry/holme_kim/triangle/m128/s2".into(),
            edges: edges.len(),
            shards: 2,
            stable_fingerprint: "00c0ffee00c0ffee".into(),
            counters: vec![
                ("gps_engine_arrivals_total".into(), edges.len() as u64),
                ("gps_sampler_inserts_total".into(), 77),
            ],
        };
        let trace = TraceResult {
            scenario: "trace/holme_kim/triangle/m128/s1".into(),
            edges: edges.len(),
            epochs: 18,
            stages: vec![
                TraceStage {
                    stage: "arrival_batch".into(),
                    count: 18,
                    p50_ns: 250_000,
                    p99_ns: 250_000,
                },
                TraceStage {
                    stage: "merge".into(),
                    count: 18,
                    p50_ns: 0,
                    p99_ns: 0,
                },
            ],
            stable_fingerprint: "00c0ffee00c0ffee".into(),
        };
        let doc = results_json(
            &cfg,
            "deadbeef",
            &[result],
            OptionalGrids {
                baselines: &[baseline],
                engine: &engine,
                serve: &serve,
                chaos: &chaos,
                sim: &sim,
                telemetry: Some(&telemetry),
                trace: Some(&trace),
            },
        );
        let parsed = json::parse(&doc.to_pretty()).expect("emitted JSON must parse");
        assert_eq!(parsed, doc);
        assert!(validate_baseline(&parsed).is_empty());
        let chaos_entries = parsed
            .get("chaos")
            .and_then(|c| c.get("shards"))
            .and_then(Value::as_array)
            .expect("chaos section present");
        assert_eq!(chaos_entries.len(), CHAOS_SHARDS.len());
        assert_eq!(chaos_entries[0].get_f64("arrivals_lost"), Some(33.0));
        assert_eq!(chaos_entries[0].get_f64("degraded_epochs"), Some(3.0));
        let entries = parsed
            .get("engine")
            .and_then(|e| e.get("shards"))
            .and_then(Value::as_array)
            .expect("engine section present");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get_f64("speedup_vs_s1"), Some(1.0));
        let readers = parsed
            .get("serve")
            .and_then(|s| s.get("readers"))
            .and_then(Value::as_array)
            .expect("serve section present");
        assert_eq!(readers.len(), SERVE_READERS.len());
        assert_eq!(readers[0].get_f64("reads"), Some(0.0));
        assert_eq!(readers[0].get_f64("rate_vs_r0"), Some(1.0));
        let points = parsed
            .get("sim")
            .and_then(|s| s.get("points"))
            .and_then(Value::as_array)
            .expect("sim section present");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get_str("name"), Some("sim/s16/hash/clean"));
        assert_eq!(points[0].get_f64("tree_identical"), Some(1.0));
        assert_eq!(points[0].get_f64("wedge_covered"), Some(1.0));
        let tele = parsed.get("telemetry").expect("telemetry section present");
        assert_eq!(tele.get_str("stable_fingerprint"), Some("00c0ffee00c0ffee"));
        let counters = tele
            .get("counters")
            .and_then(Value::as_array)
            .expect("telemetry counters present");
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get_str("name"),
            Some("gps_engine_arrivals_total")
        );
        assert_eq!(counters[0].get_f64("value"), Some(edges.len() as f64));
        let tr = parsed.get("trace").expect("trace section present");
        assert_eq!(tr.get_f64("epochs"), Some(18.0));
        let stages = tr
            .get("stages")
            .and_then(Value::as_array)
            .expect("trace stages present");
        assert_eq!(stages[0].get_str("stage"), Some("arrival_batch"));
        assert_eq!(stages[0].get_f64("p50_ns"), Some(250_000.0));
    }

    #[test]
    fn telemetry_capture_is_deterministic_and_validates() {
        let cfg = tiny_cfg();
        let a = run_telemetry(&cfg);
        let b = run_telemetry(&cfg);
        // The capture is the stable subset of a seeded engine run: two
        // invocations must agree to the bit, digest included.
        assert_eq!(a.stable_fingerprint, b.stable_fingerprint);
        assert_eq!(a.counters, b.counters);
        // A clean run loses nothing: arrivals == stream length, zero
        // restarts, zero losses — and the always-on sampler ledger moved.
        let counter = |name: &str| a.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(counter("gps_engine_arrivals_total"), Some(a.edges as u64));
        assert_eq!(counter("gps_engine_lost_arrivals_total"), Some(0));
        assert_eq!(counter("gps_engine_restarts_total"), Some(0));
        assert!(counter("gps_sampler_inserts_total").unwrap() > 0);
        assert!(counter("gps_engine_checkpoints_total").unwrap() > 0);
        // And the emitted section round-trips through the validator.
        let doc = results_json(
            &cfg,
            "deadbeef",
            &[],
            OptionalGrids {
                telemetry: Some(&a),
                ..OptionalGrids::default()
            },
        );
        let parsed = json::parse(&doc.to_pretty()).expect("emitted JSON must parse");
        let problems = validate_baseline(&parsed);
        // The empty scenarios array is the only complaint expected here.
        assert!(
            problems.iter().all(|p| p.contains("scenarios")),
            "{problems:?}"
        );
    }

    #[test]
    fn validation_catches_malformed_telemetry() {
        let doc = json::parse(
            r#"{
                "schema": "gps-bench/bench-baseline/v1",
                "git_rev": "deadbeef",
                "mode": "quick",
                "scenarios": [],
                "telemetry": {
                    "scenario": "telemetry/x",
                    "edges": 10,
                    "shards": 2,
                    "stable_fingerprint": "nope",
                    "counters": [{"name": "gps_sampler_inserts_total", "value": 3}]
                }
            }"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("stable_fingerprint is not a 64-bit hex digest")));
        assert!(problems
            .iter()
            .any(|p| p.contains("missing 'gps_engine_arrivals_total'")));
    }

    #[test]
    fn trace_capture_is_deterministic_and_validates() {
        let cfg = tiny_cfg();
        let a = run_trace(&cfg);
        let b = run_trace(&cfg);
        // The driver owns the manual clock, so two runs agree to the bit —
        // including the digest that folds every retained timeline.
        assert_eq!(a.stable_fingerprint, b.stable_fingerprint);
        assert_eq!(a.epochs, b.epochs);
        // One epoch per chunk plus the start-of-worker and drain-end
        // publications, all under the recorder capacity.
        assert!(a.epochs >= 17, "only {} epochs traced", a.epochs);
        let stage = |name: &str| a.stages.iter().find(|s| s.stage == name);
        let merge = stage("merge").expect("merge stage recorded");
        assert_eq!(merge.count, a.epochs as u64, "every epoch merges");
        assert_eq!(
            merge.p99_ns, 0,
            "in-publication stages are zero-width under the driven clock"
        );
        let batch = stage("arrival_batch").expect("arrival_batch stage recorded");
        assert_eq!(
            batch.p50_ns, 250_000,
            "inter-epoch latency is exactly the driver's clock step"
        );
        // And the emitted section round-trips through the validator.
        let doc = results_json(
            &cfg,
            "deadbeef",
            &[],
            OptionalGrids {
                trace: Some(&a),
                ..OptionalGrids::default()
            },
        );
        let parsed = json::parse(&doc.to_pretty()).expect("emitted JSON must parse");
        let problems = validate_baseline(&parsed);
        // The empty scenarios array is the only complaint expected here.
        assert!(
            problems.iter().all(|p| p.contains("scenarios")),
            "{problems:?}"
        );
    }

    #[test]
    fn validation_catches_malformed_trace() {
        let doc = json::parse(
            r#"{
                "schema": "gps-bench/bench-baseline/v1",
                "git_rev": "deadbeef",
                "mode": "quick",
                "scenarios": [],
                "trace": {
                    "scenario": "trace/x",
                    "edges": 10,
                    "epochs": 0,
                    "stable_fingerprint": "nope",
                    "stages": [{"stage": "arrival_batch", "count": 3, "p50_ns": -1, "p99_ns": 0}]
                }
            }"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("trace section has invalid 'epochs'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("trace stable_fingerprint is not a 64-bit hex digest")));
        assert!(problems
            .iter()
            .any(|p| p.contains("trace stage 0 has invalid 'p50_ns'")));
        assert!(problems.iter().any(|p| p.contains("missing 'merge'")));
    }

    #[test]
    fn sim_sweep_runs_the_quick_grid_deterministically() {
        let cfg = tiny_cfg();
        let mut seen = 0;
        let points = run_sim(&cfg, |_| seen += 1);
        // 2 shard counts × 2 skews × 3 scenarios in quick mode.
        assert_eq!(points.len(), 12);
        assert_eq!(seen, 12);
        for p in &points {
            assert!(p.tree_identical, "{}: merge tree diverged", p.name());
            assert!(p.epochs > 0, "{}: no publishes", p.name());
            match p.scenario {
                "crash_restore" => assert!(p.lost_arrivals > 0 && p.restarts == 1),
                _ => assert!(p.lost_arrivals == 0 && p.restarts == 0),
            }
        }
        // Virtual time makes the whole sweep reproducible bit-for-bit.
        let again = run_sim(&cfg, |_| {});
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.tri_are.to_bits(), b.tri_are.to_bits(), "{}", a.name());
            assert_eq!(a.finished_at_ns, b.finished_at_ns, "{}", a.name());
        }
    }

    #[test]
    fn serve_grid_measures_every_reader_count() {
        let cfg = tiny_cfg();
        let mut seen = 0;
        let results = run_serve(&cfg, |_| seen += 1);
        assert_eq!(results.len(), SERVE_READERS.len());
        assert_eq!(seen, SERVE_READERS.len());
        for (r, readers) in results.iter().zip(SERVE_READERS) {
            assert_eq!(r.readers, readers);
            assert!(r.measurement.edges_per_sec > 0.0);
            assert!(r.scenario.starts_with("serve/"));
            assert!(r.staleness_mean_edges >= 0.0);
            if readers == 0 {
                assert_eq!(r.reads, 0, "no readers, no reads");
            }
        }
    }

    #[test]
    fn engine_grid_measures_every_shard_count() {
        let cfg = tiny_cfg();
        let mut seen = 0;
        let results = run_engine(&cfg, |_| seen += 1);
        assert_eq!(results.len(), ENGINE_SHARDS.len());
        assert_eq!(seen, ENGINE_SHARDS.len());
        for (r, s) in results.iter().zip(ENGINE_SHARDS) {
            assert_eq!(r.shards, s);
            assert!(r.measurement.edges_per_sec > 0.0);
            assert!(r.scenario.starts_with("engine/"));
        }
    }

    #[test]
    fn chaos_grid_measures_every_shard_count_and_records_the_crash() {
        let cfg = tiny_cfg();
        let mut seen = 0;
        let results = run_chaos(&cfg, |_| seen += 1);
        assert_eq!(results.len(), CHAOS_SHARDS.len());
        assert_eq!(seen, CHAOS_SHARDS.len());
        for (r, s) in results.iter().zip(CHAOS_SHARDS) {
            assert_eq!(r.shards, s);
            assert!(r.scenario.starts_with("chaos/"));
            assert!(r.clean.edges_per_sec > 0.0);
            assert!(r.faulted.edges_per_sec > 0.0);
            // The scripted crash must actually fire and be on the ledger —
            // a zero here would make the grid vacuous.
            assert!(r.restarts >= 1, "s{s}: scripted crash never fired");
            assert!(r.arrivals_lost >= 1, "s{s}: crash must lose its window");
        }
    }

    #[test]
    fn ported_baseline_grid_measures_both_backends() {
        let cfg = tiny_cfg();
        let mut seen = 0;
        let results = run_baselines(&cfg, |_| seen += 1);
        assert_eq!(results.len(), 5);
        assert_eq!(seen, 5);
        for r in &results {
            assert!(r.compact.edges_per_sec > 0.0);
            assert!(r.hashmap.edges_per_sec > 0.0);
            assert!(r.speedup() > 0.0);
            assert!(r.scenario.starts_with("baseline/"));
        }
    }

    #[test]
    fn validation_catches_missing_fields() {
        let doc = json::parse(r#"{"schema": "gps-bench/bench-baseline/v1"}"#).unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems.iter().any(|p| p.contains("scenarios")));
        assert!(problems.iter().any(|p| p.contains("git_rev")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [{"name": "a", "compact": {"elapsed_ns": 0}}]}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems.iter().any(|p| p.contains("missing 'hashmap'")));
        assert!(problems.iter().any(|p| p.contains("not positive")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [],
                "baseline_samplers": [{"name": "baseline/triest/m8"}]}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("baseline 0 missing 'method'")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [],
                "serve": {"stream": "holme_kim",
                          "readers": [{"readers": -1, "elapsed_ns": 5}]}}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("serve section missing 'shards'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("serve entry 0 readers is negative")));
        assert!(problems
            .iter()
            .any(|p| p.contains("serve entry 0 missing 'reads'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("serve entry 0 missing 'edges_per_sec'")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [],
                "engine": {"stream": "holme_kim",
                           "shards": [{"shards": 0, "elapsed_ns": -1}]}}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("engine section missing 'weight'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("engine entry 0 has invalid 'shards'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("engine entry 0 elapsed_ns is not positive")));
        assert!(problems
            .iter()
            .any(|p| p.contains("engine entry 0 missing 'edges_per_sec'")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [],
                "chaos": {"stream": "holme_kim",
                          "shards": [{"shards": 2, "restarts": 0,
                                      "clean": {"elapsed_ns": -4},
                                      "degraded_epochs": -1}]}}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos section missing 'weight'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 missing 'name'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 missing 'faulted'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 clean.elapsed_ns is not positive")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 restarts says the scripted crash never fired")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 missing 'arrivals_lost'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("chaos entry 0 degraded_epochs is negative")));

        let doc = json::parse(
            r#"{"schema": "gps-bench/bench-baseline/v1", "git_rev": "x", "mode": "full",
                "scenarios": [],
                "sim": {"points": [{"shards": 16, "skew": "hash",
                                    "tree_identical": 0, "tri_are": -0.5}]}}"#,
        )
        .unwrap();
        let problems = validate_baseline(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("sim section missing 'edges'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("sim point 0 missing 'name'")));
        assert!(problems
            .iter()
            .any(|p| p.contains("sim point 0 tree_identical says the merge tree diverged")));
        assert!(problems
            .iter()
            .any(|p| p.contains("sim point 0 tri_are is negative")));
        assert!(problems
            .iter()
            .any(|p| p.contains("sim point 0 missing 'restarts'")));
    }
}
