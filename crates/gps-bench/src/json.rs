//! Minimal JSON emission and parsing for benchmark artifacts.
//!
//! The perf harness writes machine-readable baselines (`BENCH_PR2.json`)
//! and the CI smoke check reads them back. The workspace builds offline
//! with no serde, so this module implements the small subset needed: an
//! order-preserving [`Value`] tree, a pretty printer, and a strict
//! recursive-descent parser. Not a general-purpose JSON library — numbers
//! are `f64`, and `\uXXXX` escapes outside the BMP are rejected.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object member order is preserved (emission should be
/// stable run-to-run so baseline diffs stay reviewable).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(members: Vec<(&str, Value)>) -> Value {
        Value::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind this value, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Value::as_f64`].
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Convenience: `get(key)` then [`Value::as_str`].
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                // Rust's shortest-round-trip float formatting is valid JSON.
                out.push_str(&format!("{n}"));
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape outside the BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar as raw bytes.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8"),
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.error(&format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_baseline_shaped_document() {
        let doc = Value::object(vec![
            ("schema", Value::String("gps-bench/v1".into())),
            ("iters", Value::Number(3.0)),
            ("ok", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "scenarios",
                Value::Array(vec![Value::object(vec![
                    ("name", Value::String("hk/triangle/m2000".into())),
                    ("edges_per_sec", Value::Number(1234567.25)),
                    ("empty", Value::Array(vec![])),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get_str("s"), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn accessors_navigate_nested_documents() {
        let v = parse(r#"{"a": {"b": [1, 2.5, -3e2]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get_f64("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"dup\": 1, \"dup\": 2}",
            "{\"n\": 1e}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn control_characters_are_escaped_on_output() {
        let v = Value::String("a\u{1}b".into());
        let text = v.to_pretty();
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(text.trim()).unwrap(), v);
    }
}
