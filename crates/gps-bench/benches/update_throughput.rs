//! Per-edge update cost of GPS(m) — the paper's headline "a few
//! microseconds per edge" claim (§6, Table 2's time column).
//!
//! Measures full-stream processing throughput for each weight function; the
//! weight computation (`O(min deĝ)` set intersection for triangles) is the
//! dominant per-edge cost, so uniform vs triangle weights brackets the
//! achievable range.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_core::weights::{TriadWeight, TriangleWeight, UniformWeight};
use gps_core::GpsSampler;
use gps_graph::BackendKind;
use gps_stream::{gen, permuted};

fn bench_updates(c: &mut Criterion) {
    let edges = permuted(&gen::holme_kim(20_000, 3, 0.5, 7), 1);
    let m = 5_000;
    let mut group = c.benchmark_group("gps_update");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    group.bench_function("uniform_weight", |b| {
        b.iter_batched(
            || GpsSampler::new(m, UniformWeight, 42),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("triangle_weight", |b| {
        b.iter_batched(
            || GpsSampler::new(m, TriangleWeight::default(), 42),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("triad_weight", |b| {
        b.iter_batched(
            || GpsSampler::new(m, TriadWeight::default(), 42),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();

    // Adjacency backend comparison on the triangle-weight hot path: the
    // compact interned backend vs the pre-refactor nested hash map (kept as
    // the perf baseline; `bench_baseline` persists the same comparison).
    let mut group = c.benchmark_group("gps_update_backend");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);
    for (label, backend) in [
        ("compact", BackendKind::Compact),
        ("hashmap", BackendKind::HashMap),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || GpsSampler::with_backend(m, TriangleWeight::default(), 42, backend),
                |mut s| {
                    for &e in &edges {
                        s.process(e);
                    }
                    s.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Capacity sensitivity: heap depth is O(log m); adjacency lookups grow
    // with sampled degrees.
    let mut group = c.benchmark_group("gps_update_capacity");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);
    for m in [1_000usize, 4_000, 16_000] {
        group.bench_function(format!("m_{m}"), |b| {
            b.iter_batched(
                || GpsSampler::new(m, TriangleWeight::default(), 42),
                |mut s| {
                    for &e in &edges {
                        s.process(e);
                    }
                    s.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
