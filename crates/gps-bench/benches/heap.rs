//! Min-heap microbenchmarks: the paper's O(log m) insert/evict claim for
//! the reservoir's priority queue (§3.2).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_core::heap::{HeapEntry, MinHeap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn priorities(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| 1.0 / (1.0 - rng.random::<f64>())).collect()
}

fn bench_heap(c: &mut Criterion) {
    let n = 100_000;
    let pris = priorities(n, 3);

    let mut group = c.benchmark_group("heap");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);

    group.bench_function("push_100k", |b| {
        b.iter_batched(
            MinHeap::new,
            |mut h| {
                for (i, &p) in pris.iter().enumerate() {
                    h.push(HeapEntry {
                        priority: p,
                        slot: i as u32,
                    });
                }
                h.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("push_pop_cycle_100k", |b| {
        b.iter_batched(
            || {
                let mut h = MinHeap::with_capacity(10_000);
                for (i, &p) in pris[..10_000].iter().enumerate() {
                    h.push(HeapEntry {
                        priority: p,
                        slot: i as u32,
                    });
                }
                h
            },
            |mut h| {
                // Reservoir-like workload: replace the minimum repeatedly.
                for (i, &p) in pris.iter().enumerate() {
                    if p > h.peek().unwrap().priority {
                        h.replace_min(HeapEntry {
                            priority: p,
                            slot: i as u32,
                        });
                    }
                }
                h.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_heap);
criterion_main!(benches);
