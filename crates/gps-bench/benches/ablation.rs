//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. Adjacency representation: the paper notes GPS could save space by
//!    rescanning the reservoir (O(m) per weight) instead of keeping the
//!    O(|V̂|+m) adjacency; this bench quantifies the time gap by comparing
//!    the adjacency-backed triangle weight against a simulated rescan.
//! 2. In-stream variance accumulators: Algorithm 3's covariance tracking
//!    costs extra slab writes per completed subgraph; compare the full
//!    in-stream estimator against the bare sampler to bound that overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_core::weights::{FnWeight, TriangleWeight};
use gps_core::{GpsSampler, InStreamEstimator, SampleView};
use gps_graph::types::Edge;
use gps_stream::{gen, permuted};

fn bench_ablation(c: &mut Criterion) {
    let edges = permuted(&gen::holme_kim(12_000, 3, 0.5, 21), 8);
    let m = 3_000;

    let mut group = c.benchmark_group("ablation");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    // 1a. Adjacency-backed weight (the shipped implementation).
    group.bench_function("weight_via_adjacency", |b| {
        b.iter_batched(
            || GpsSampler::new(m, TriangleWeight::default(), 3),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    // 1b. Simulated O(m) rescan: recount triangles by scanning a bounded
    // window of sampled edges (the space-lean alternative in §3.2 S4).
    group.bench_function("weight_via_rescan", |b| {
        b.iter_batched(
            || {
                GpsSampler::new(
                    m,
                    FnWeight(|edge: Edge, view: &SampleView<'_>| {
                        // Rescan: count sampled edges adjacent to `edge` by
                        // walking every sampled edge (O(m)).
                        let mut triangles = 0usize;
                        let (u, v) = edge.endpoints();
                        let mut u_nbrs = Vec::new();
                        let mut v_nbrs = Vec::new();
                        for se in view.sampled_edges() {
                            if let Some(w) = se.other(u) {
                                u_nbrs.push(w);
                            }
                            if let Some(w) = se.other(v) {
                                v_nbrs.push(w);
                            }
                        }
                        u_nbrs.sort_unstable();
                        for w in v_nbrs {
                            if u_nbrs.binary_search(&w).is_ok() {
                                triangles += 1;
                            }
                        }
                        9.0 * triangles as f64 + 1.0
                    }),
                    3,
                )
            },
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    // 2. Full in-stream estimation vs bare sampling (same weights/seed):
    // the marginal cost of Algorithm 3's count + variance accumulators.
    group.bench_function("sampler_only", |b| {
        b.iter_batched(
            || GpsSampler::new(m, TriangleWeight::default(), 5),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("sampler_plus_in_stream", |b| {
        b.iter_batched(
            || InStreamEstimator::new(m, TriangleWeight::default(), 5),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.triangle_count()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
