//! Cost of post-stream estimation (paper Algorithm 2): serial vs parallel,
//! full variance bookkeeping vs counts-only, across reservoir sizes.
//!
//! The paper claims `O(m^{3/2})` total and "abundant parallelism"; these
//! benches measure both.

use criterion::{criterion_group, criterion_main, Criterion};
use gps_core::weights::TriangleWeight;
use gps_core::{post_stream, GpsSampler};
use gps_stream::{gen, permuted};

fn loaded_sampler(m: usize) -> GpsSampler<TriangleWeight> {
    let edges = permuted(&gen::holme_kim(30_000, 3, 0.6, 11), 2);
    let mut s = GpsSampler::new(m, TriangleWeight::default(), 5);
    s.process_stream(edges);
    s
}

fn bench_estimation(c: &mut Criterion) {
    for m in [2_000usize, 8_000, 32_000] {
        let sampler = loaded_sampler(m);
        let mut group = c.benchmark_group(format!("post_stream_m{m}"));
        group.sample_size(10);
        group.bench_function("full_serial", |b| {
            b.iter(|| post_stream::estimate(&sampler))
        });
        group.bench_function("full_parallel4", |b| {
            b.iter(|| post_stream::estimate_with_threads(&sampler, 4))
        });
        group.bench_function("counts_only", |b| {
            b.iter(|| post_stream::estimate_counts(&sampler))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
