//! Exact-counting substrate benchmarks: the ground-truth cost every
//! experiment pays, and the incremental counter used for time-series truth.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::IncrementalCounter;
use gps_stream::gen;

fn bench_exact(c: &mut Criterion) {
    let hk = gen::holme_kim(30_000, 3, 0.6, 1);
    let er = gen::erdos_renyi(30_000, 90_000, 1);

    let mut group = c.benchmark_group("exact_triangles");
    group.sample_size(10);
    for (name, edges) in [("holme_kim_90k", &hk), ("erdos_renyi_90k", &er)] {
        let g = CsrGraph::from_edges(edges);
        group.bench_function(format!("{name}_csr_build"), |b| {
            b.iter(|| CsrGraph::from_edges(edges).num_edges())
        });
        group.bench_function(format!("{name}_count"), |b| {
            b.iter(|| exact::triangle_count(&g))
        });
        group.bench_function(format!("{name}_wedges"), |b| {
            b.iter(|| exact::wedge_count(&g))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("incremental_counter");
    group.throughput(Throughput::Elements(hk.len() as u64));
    group.sample_size(10);
    group.bench_function("insert_stream_90k", |b| {
        b.iter_batched(
            IncrementalCounter::new,
            |mut inc| {
                for &e in &hk {
                    inc.insert(e);
                }
                inc.triangles()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
