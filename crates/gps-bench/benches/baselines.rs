//! Per-edge update cost of every estimator at equal stored-edge budgets —
//! the timing half of paper Table 2 as a microbenchmark. Expected shape:
//! MASCOT and TRIEST are cheapest (no weight computation), GPS costs a
//! set-intersection more, NSAMP is slowest (O(r) per edge without bulk
//! processing, as the paper observes).
//!
//! Every store-based estimator is measured on **both** adjacency backends
//! (`compact` is the production default; `hashmap` is the pre-port
//! substrate), so a slow baseline can no longer be blamed on its data
//! structure: same-seed runs produce bit-identical estimates on either
//! backend and the delta is pure representation cost. The NSAMP variants
//! keep no adjacency and so have no backend axis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_baselines::{
    JhaWedgeSampler, Mascot, NSamp, NSampBulk, TriangleEstimator, TriestBase, TriestImpr,
    UniformReservoir,
};
use gps_bench::adapters::{GpsInStream, GpsPost};
use gps_graph::BackendKind;
use gps_stream::{gen, permuted};

fn backend_tag(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Compact => "compact",
        BackendKind::HashMap => "hashmap",
    }
}

fn bench_baselines(c: &mut Criterion) {
    let edges = permuted(&gen::holme_kim(20_000, 3, 0.5, 9), 4);
    let m = 4_000;
    let p = m as f64 / edges.len() as f64;

    let mut group = c.benchmark_group("baseline_updates");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    macro_rules! bench_est {
        ($label:expr, $make:expr) => {
            group.bench_function($label, |b| {
                b.iter_batched(
                    || $make,
                    |mut est| {
                        for &e in &edges {
                            est.process(e);
                        }
                        est.stored_edges()
                    },
                    BatchSize::LargeInput,
                )
            });
        };
    }

    // Backend axis: each store-based estimator on both substrates.
    for kind in [BackendKind::Compact, BackendKind::HashMap] {
        let tag = backend_tag(kind);
        bench_est!(
            format!("triest_base/{tag}"),
            TriestBase::with_backend(m, 1, kind)
        );
        bench_est!(
            format!("triest_impr/{tag}"),
            TriestImpr::with_backend(m, 1, kind)
        );
        bench_est!(format!("mascot/{tag}"), Mascot::with_backend(p, 1, kind));
        bench_est!(
            format!("jha_wedge/{tag}"),
            JhaWedgeSampler::with_backend(m, m / 8, 1, kind)
        );
        bench_est!(
            format!("uniform_reservoir/{tag}"),
            UniformReservoir::with_backend(m, 1, kind)
        );
        bench_est!(format!("gps_post/{tag}"), GpsPost::with_backend(m, 1, kind));
        bench_est!(
            format!("gps_in_stream/{tag}"),
            GpsInStream::with_backend(m, 1, kind)
        );
    }

    // No adjacency state, hence no backend axis.
    bench_est!("nsamp_r512", NSamp::new(512, 1));
    bench_est!("nsamp_bulk_r512", NSampBulk::new(512, 1));
    bench_est!("nsamp_bulk_r4096", NSampBulk::new(4096, 1));

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
