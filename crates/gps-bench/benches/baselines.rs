//! Per-edge update cost of every estimator at equal stored-edge budgets —
//! the timing half of paper Table 2 as a microbenchmark. Expected shape:
//! MASCOT and TRIEST are cheapest (no weight computation), GPS costs a
//! set-intersection more, NSAMP is slowest (O(r) per edge without bulk
//! processing, as the paper observes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_baselines::{
    Mascot, NSamp, NSampBulk, TriangleEstimator, TriestBase, TriestImpr, UniformReservoir,
};
use gps_bench::adapters::{GpsInStream, GpsPost};
use gps_stream::{gen, permuted};

fn bench_baselines(c: &mut Criterion) {
    let edges = permuted(&gen::holme_kim(20_000, 3, 0.5, 9), 4);
    let m = 4_000;
    let p = m as f64 / edges.len() as f64;

    let mut group = c.benchmark_group("baseline_updates");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    macro_rules! bench_est {
        ($label:expr, $make:expr) => {
            group.bench_function($label, |b| {
                b.iter_batched(
                    || $make,
                    |mut est| {
                        for &e in &edges {
                            est.process(e);
                        }
                        est.stored_edges()
                    },
                    BatchSize::LargeInput,
                )
            });
        };
    }

    bench_est!("triest_base", TriestBase::new(m, 1));
    bench_est!("triest_impr", TriestImpr::new(m, 1));
    bench_est!("mascot", Mascot::new(p, 1));
    bench_est!("uniform_reservoir", UniformReservoir::new(m, 1));
    bench_est!("gps_post", GpsPost::new(m, 1));
    bench_est!("gps_in_stream", GpsInStream::new(m, 1));
    bench_est!("nsamp_r512", NSamp::new(512, 1));
    bench_est!("nsamp_bulk_r512", NSampBulk::new(512, 1));
    bench_est!("nsamp_bulk_r4096", NSampBulk::new(4096, 1));

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
