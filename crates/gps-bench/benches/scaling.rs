//! Sharded-ingest scaling: `gps-engine`'s `ShardedGps` against the bare
//! single-threaded sampler, at a fixed *total* reservoir budget.
//!
//! The shard axis isolates the engine design: per-shard reservoirs shrink
//! as `m/S` (smaller heaps, smaller sampled adjacencies — cheaper
//! per-edge updates even on one core) and the `S` workers ingest in
//! parallel on multi-core hardware. `bare_sampler` vs `engine/s1`
//! additionally measures the pure batching/channel overhead of the engine
//! plumbing.
//!
//! Configuration: the shard axis is `S ∈ {1, 2, 4, 8}`; `GPS_SHARDS` (or
//! `--shards` via `gps_bench::Config`) appends one extra shard count when
//! it is not already on the axis; `GPS_SEED` reseeds the stream.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gps_bench::config::Config;
use gps_core::weights::TriangleWeight;
use gps_core::GpsSampler;
use gps_engine::ShardedGps;
use gps_stream::{gen, permuted};

fn bench_scaling(c: &mut Criterion) {
    let cfg = Config::from_env();
    let edges = permuted(&gen::holme_kim(20_000, 3, 0.5, cfg.seed), 1);
    let m = 8_000; // total budget, split m/S across shards

    let mut group = c.benchmark_group("sharded_ingest");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    group.bench_function("bare_sampler", |b| {
        b.iter_batched(
            || GpsSampler::new(m, TriangleWeight::default(), cfg.seed),
            |mut s| {
                for &e in &edges {
                    s.process(e);
                }
                s.len()
            },
            BatchSize::LargeInput,
        )
    });

    let mut axis = vec![1usize, 2, 4, 8];
    if !axis.contains(&cfg.shards) {
        axis.push(cfg.shards);
        axis.sort_unstable();
    }
    for shards in axis {
        group.bench_function(format!("engine/s{shards}"), |b| {
            b.iter_batched(
                || ShardedGps::new(m, TriangleWeight::default(), cfg.seed, shards),
                |mut engine| {
                    for &e in &edges {
                        engine.push(e);
                    }
                    engine.finish();
                    engine.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
