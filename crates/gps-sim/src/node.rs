//! A simulated shard host driving the **production** shard runner.
//!
//! [`LeafNode`] owns exactly what a `gps-engine` worker thread owns — a
//! [`ShardRunner`] in estimating mode (real `GpsSampler` + real
//! `InStreamEstimator`), recovery checkpoints in the real
//! `gps_core::persist` format, and the engine's restart-seed derivation —
//! but is driven by discrete events instead of a thread. Crash semantics
//! mirror the engine's supervisor: the crashing arrival is consumed and
//! lost along with everything after the last checkpoint; edges delivered
//! while the node is down are queued (the engine's feed channel survives a
//! worker crash) and replayed on restore; the restore RNG stream is
//! re-derived deterministically from the engine seed and restart ordinal.

use gps_core::weights::EdgeWeight;
use gps_core::GpsSampler;
use gps_core::TriadEstimates;
use gps_engine::shard::{restart_seed, ShardRunner};
use gps_engine::shard_seed;
use gps_graph::types::Edge;
use gps_graph::BackendKind;

/// An epoch report a leaf emits toward its aggregator: the sim-side
/// equivalent of `gps_engine::ShardReport`.
#[derive(Clone, Copy, Debug)]
pub struct LeafReport {
    /// Reporting shard index.
    pub shard: usize,
    /// Per-shard arrivals at report time.
    pub arrivals: u64,
    /// The shard's monochromatic in-stream estimates.
    pub estimates: TriadEstimates,
}

/// One simulated shard node (see the [module docs](self)).
pub struct LeafNode<W> {
    shard: usize,
    engine_seed: u64,
    capacity: usize,
    checkpoint_every: u64,
    epoch_every: u64,
    backend: BackendKind,
    weight_fn: W,
    /// `None` while crashed (between crash and restore).
    runner: Option<ShardRunner<W>>,
    ckpt: Vec<u8>,
    ckpt_arrivals: u64,
    next_ckpt: u64,
    next_report: u64,
    /// Edges delivered while down, replayed in delivery order on restore.
    pending: Vec<Edge>,
    lost: u64,
    restarts: u32,
}

impl<W: EdgeWeight + Clone> LeafNode<W> {
    /// A fresh node for `shard` with per-shard budget `capacity`, seeded
    /// exactly like the engine seeds its workers
    /// (`shard_seed(engine_seed, shard)`). An initial checkpoint of the
    /// empty state is taken so a pre-first-checkpoint crash restores to
    /// watermark 0 cleanly.
    pub fn new(
        shard: usize,
        capacity: usize,
        engine_seed: u64,
        checkpoint_every: u64,
        epoch_every: u64,
        backend: BackendKind,
        weight_fn: W,
    ) -> Self {
        let sampler = GpsSampler::with_backend(
            capacity,
            weight_fn.clone(),
            shard_seed(engine_seed, shard),
            backend,
        );
        let runner = ShardRunner::estimating(shard, sampler, None, None, epoch_every);
        let ckpt = runner.checkpoint_bytes();
        LeafNode {
            shard,
            engine_seed,
            capacity,
            checkpoint_every,
            epoch_every,
            backend,
            weight_fn,
            runner: Some(runner),
            ckpt,
            ckpt_arrivals: 0,
            next_ckpt: checkpoint_every.max(1),
            next_report: epoch_every.max(1),
            pending: Vec::new(),
            lost: 0,
            restarts: 0,
        }
    }

    /// True while the node is down (crashed, restore not yet delivered).
    pub fn is_down(&self) -> bool {
        self.runner.is_none()
    }

    /// Arrivals processed so far (the crashed-and-rolled-back window is
    /// not included — it was lost).
    pub fn arrivals(&self) -> u64 {
        match &self.runner {
            Some(r) => r.arrivals(),
            None => self.ckpt_arrivals,
        }
    }

    /// Arrivals lost across all crashes of this node.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Completed restarts.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Current in-stream estimates (the node's live state; `None` while
    /// down).
    pub fn estimates(&self) -> Option<TriadEstimates> {
        self.runner.as_ref().and_then(|r| r.estimates())
    }

    /// Delivers one routed edge. Down nodes queue it (the engine's feed
    /// channel outlives a crashed worker); live nodes process it through
    /// the production runner, checkpointing on the engine's cadence, and
    /// return a [`LeafReport`] when the arrival crossed an epoch boundary.
    pub fn deliver(&mut self, edge: Edge) -> Option<LeafReport> {
        let Some(runner) = self.runner.as_mut() else {
            self.pending.push(edge);
            return None;
        };
        runner.process(edge);
        let arrivals = runner.arrivals();
        if self.checkpoint_every > 0 && arrivals >= self.next_ckpt {
            self.ckpt = runner.checkpoint_bytes();
            self.ckpt_arrivals = arrivals;
            while self.next_ckpt <= arrivals {
                self.next_ckpt += self.checkpoint_every;
            }
        }
        self.report_if_due()
    }

    /// Crashes the node *while consuming* `edge` — the engine's panic
    /// semantics: the crashing arrival counts as attempted-and-lost, state
    /// rolls back to the last checkpoint, and everything after it is lost.
    pub fn crash_consuming(&mut self, _edge: Edge) {
        let attempted = self.arrivals() + 1;
        self.lost += attempted - self.ckpt_arrivals;
        self.runner = None;
    }

    /// Restores the node from its last checkpoint through the engine's
    /// real restart path ([`ShardRunner::from_checkpoint`], restart-ordinal
    /// RNG seed) and replays every edge queued while down. Returns the
    /// epoch reports the replay produced, in order.
    pub fn restore(&mut self) -> Vec<LeafReport> {
        assert!(self.runner.is_none(), "restore of a live node");
        self.restarts += 1;
        let seed = restart_seed(self.engine_seed, self.shard, self.restarts);
        let (runner, watermark, _corrupt) = ShardRunner::from_checkpoint(
            self.shard,
            &self.ckpt,
            self.weight_fn.clone(),
            seed,
            self.backend,
            self.capacity,
            true,
            None,
            self.epoch_every,
        );
        self.runner = Some(runner);
        self.ckpt_arrivals = watermark;
        self.next_ckpt = watermark + self.checkpoint_every.max(1);
        // Keep the reporting cadence anchored at the restored watermark,
        // as the engine's resumed runners do.
        self.next_report = watermark + self.epoch_every.max(1);
        let pending = std::mem::take(&mut self.pending);
        let mut reports = Vec::new();
        for edge in pending {
            if let Some(report) = self.deliver(edge) {
                reports.push(report);
            }
        }
        reports
    }

    fn report_if_due(&mut self) -> Option<LeafReport> {
        let runner = self.runner.as_ref()?;
        let arrivals = runner.arrivals();
        if arrivals < self.next_report {
            return None;
        }
        while self.next_report <= arrivals {
            self.next_report += self.epoch_every.max(1);
        }
        Some(LeafReport {
            shard: self.shard,
            arrivals,
            estimates: runner.estimates()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::TriangleWeight;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n)
            .flat_map(|b| {
                [
                    Edge::new(b, b + 1),
                    Edge::new(b, b + 2),
                    Edge::new(b + 1, b + 2),
                ]
            })
            .collect()
    }

    fn node() -> LeafNode<TriangleWeight> {
        LeafNode::new(
            0,
            32,
            7,
            16,
            64,
            BackendKind::Compact,
            TriangleWeight::default(),
        )
    }

    #[test]
    fn clean_delivery_matches_a_bare_runner() {
        let mut n = node();
        let sampler = GpsSampler::new(32, TriangleWeight::default(), gps_engine::shard_seed(7, 0));
        let mut bare = ShardRunner::estimating(0, sampler, None, None, 64);
        for e in edges(50) {
            n.deliver(e);
            bare.process(e);
        }
        let a = n.estimates().unwrap();
        let b = bare.estimates().unwrap();
        assert_eq!(a.triangles.value.to_bits(), b.triangles.value.to_bits());
        assert_eq!(a.wedges.value.to_bits(), b.wedges.value.to_bits());
    }

    #[test]
    fn crash_loses_exactly_the_post_checkpoint_window_and_replays_queue() {
        let mut n = node();
        let stream = edges(40);
        // 40 arrivals → checkpoints at 16 and 32.
        for e in &stream[..40] {
            n.deliver(*e);
        }
        assert_eq!(n.arrivals(), 40);
        // Crash consuming arrival 41: loss = 41 − 32 = 9.
        n.crash_consuming(stream[40]);
        assert!(n.is_down());
        assert_eq!(n.lost(), 9);
        // Deliveries while down queue up.
        n.deliver(stream[41]);
        n.deliver(stream[42]);
        assert_eq!(n.arrivals(), 32, "down node reports checkpoint watermark");
        let _ = n.restore();
        assert_eq!(n.restarts(), 1);
        // Replayed queue: 32 (checkpoint) + 2 queued = 34.
        assert_eq!(n.arrivals(), 34);
        assert!(n.estimates().is_some());
    }

    #[test]
    fn reports_follow_the_epoch_cadence() {
        let mut n = node();
        let mut reports = Vec::new();
        for e in edges(50) {
            if let Some(r) = n.deliver(e) {
                reports.push(r);
            }
        }
        // 150 arrivals at epoch_every = 64 → reports at 64 and 128.
        assert_eq!(
            reports.iter().map(|r| r.arrivals).collect::<Vec<_>>(),
            vec![64, 128]
        );
    }
}
