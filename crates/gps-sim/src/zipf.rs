//! Zipf-skewed key streams for partition-skew experiments.
//!
//! The engine's [`EdgePartitioner`](gps_engine::EdgePartitioner) hashes
//! edge keys, so a *uniform* keyspace balances shards almost perfectly —
//! the interesting adversary is a skewed keyspace where a few hot
//! node pairs dominate the stream. A Zipf(α) draw over node ids produces
//! exactly that: hot nodes appear in a large fraction of edges, their hot
//! edges repeat many times, and every repeat of an edge lands on the same
//! shard (routing is content-addressed), concentrating load.

use gps_graph::types::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded Zipf(α) sampler over `0..n` via inverse-CDF binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights `Σ_{j≤i} 1/(j+1)^α`.
    cdf: Vec<f64>,
    /// Total unnormalized mass (the last cumulative weight).
    total: f64,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform; 0.8–1.2 is the classic heavy-tail range).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        Zipf { cdf, total }
    }

    /// Draws one rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let x = rng.random::<f64>() * self.total;
        // First index whose cumulative weight exceeds x.
        let mut lo = 0usize;
        let mut hi = self.cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cdf[mid] > x {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u32
    }
}

/// A stream of `n_edges` edges whose endpoints are independent Zipf(α)
/// draws over `nodes` node ids (self-pairs rejected). Hot nodes produce
/// hot, frequently **repeated** edges — the skewed-keyspace regime for
/// partition-balance experiments, where every repeat of an edge routes to
/// the same shard. Seeded and deterministic.
///
/// For estimation-quality experiments use [`zipf_edges_distinct`]: GPS
/// models a simple graph stream, so exact ground truth deduplicates and a
/// stream with repeats would disagree with it by construction.
pub fn zipf_edges(nodes: usize, n_edges: usize, alpha: f64, seed: u64) -> Vec<Edge> {
    let zipf = Zipf::new(nodes, alpha);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_edges);
    while out.len() < n_edges {
        let u = zipf.sample(&mut rng);
        let v = zipf.sample(&mut rng);
        if u != v {
            out.push(Edge::new(u, v));
        }
    }
    out
}

/// Like [`zipf_edges`] but every edge is distinct (repeat draws are
/// rejected): a *simple* graph stream whose degree distribution is
/// Zipf-skewed — hot hubs with huge degrees, so wedge counts are dominated
/// by a few nodes. This is the skew regime for estimation-quality
/// experiments, where ground truth must match the stream exactly.
///
/// # Panics
/// Panics if the distinct-pair space is too small to yield `n_edges`
/// within a bounded number of draws.
pub fn zipf_edges_distinct(nodes: usize, n_edges: usize, alpha: f64, seed: u64) -> Vec<Edge> {
    let zipf = Zipf::new(nodes, alpha);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n_edges * 2);
    let mut out = Vec::with_capacity(n_edges);
    let mut attempts = 0usize;
    let budget = n_edges.saturating_mul(200);
    while out.len() < n_edges {
        attempts += 1;
        assert!(
            attempts <= budget,
            "distinct-pair space too small for {n_edges} edges over {nodes} nodes"
        );
        let u = zipf.sample(&mut rng);
        let v = zipf.sample(&mut rng);
        if u != v {
            let e = Edge::new(u, v);
            if seen.insert(e.key()) {
                out.push(e);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_seeded_and_skewed() {
        let a = zipf_edges(200, 5_000, 1.0, 9);
        let b = zipf_edges(200, 5_000, 1.0, 9);
        assert_eq!(a, b, "same seed, same stream");
        // Rank 0 must be far hotter than the median rank.
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits0 = 0usize;
        let mut hits500 = 0usize;
        for _ in 0..20_000 {
            match zipf.sample(&mut rng) {
                0 => hits0 += 1,
                500 => hits500 += 1,
                _ => {}
            }
        }
        assert!(hits0 > 20 * (hits500 + 1), "rank 0 ({hits0}) must dominate");
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "uniform-ish bucket, got {c}");
        }
    }
}
