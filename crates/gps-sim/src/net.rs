//! The simulated network: per-link latency and jitter distributions.
//!
//! Every message between simulated hosts takes `base_ns` plus a uniform
//! jitter draw from a **seeded** RNG — the only randomness in the
//! simulator besides the production code's own sampling, and seeded like
//! everything else, so delivery orders are bit-reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// A one-way link's latency model: `base_ns + U[0, jitter_ns)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Deterministic floor of every delivery, in virtual nanoseconds.
    pub base_ns: u64,
    /// Upper bound (exclusive) of the uniform jitter added per message;
    /// `0` disables jitter entirely.
    pub jitter_ns: u64,
}

impl Link {
    /// A jitter-free link.
    pub fn fixed(base_ns: u64) -> Self {
        Link {
            base_ns,
            jitter_ns: 0,
        }
    }

    /// Samples one delivery delay.
    pub fn delay(&self, rng: &mut SmallRng) -> u64 {
        let jitter = if self.jitter_ns > 0 {
            rng.random_range(0..self.jitter_ns)
        } else {
            0
        };
        self.base_ns.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delays_are_seeded_and_bounded() {
        let link = Link {
            base_ns: 100,
            jitter_ns: 50,
        };
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = link.delay(&mut a);
            assert_eq!(d, link.delay(&mut b), "same seed, same delays");
            assert!((100..150).contains(&d));
        }
        assert_eq!(Link::fixed(42).delay(&mut a), 42);
    }
}
