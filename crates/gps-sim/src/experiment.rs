//! Experiment drivers: the quality-vs-scale sweep.
//!
//! Each sweep point runs one full simulated cluster over a generated
//! stream, computes exact ground truth for that stream, and reduces the
//! run to the numbers the quality suites (and `bench_baseline --sim`)
//! pin: estimate error vs truth, CI coverage, epoch staleness in virtual
//! time, loss/restart accounting, and tree-vs-flat merge identity.
//!
//! The grid axes follow the scale-out question the simulator exists to
//! answer: shard count `S ∈ {16, 64, 256}` (far beyond physical cores) ×
//! keyspace skew (hash-friendly uniform vs Zipf-skewed) × fault scenario
//! (clean, straggler, crash/restore).

use crate::cluster::{run_cluster, SimConfig, SimFaults, SimOutcome};
use crate::zipf::zipf_edges_distinct;
use gps_core::weights::TriangleWeight;
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_stream::gen::holme_kim;
use gps_stream::permuted;

/// Keyspace shape of the generated stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Skew {
    /// Triangle-rich Holme–Kim graph in permuted order: node ids spread the
    /// key space roughly uniformly, the hash partitioner's home turf.
    Hash,
    /// Distinct edges with Zipf(α)-skewed endpoints: a few hot hubs carry
    /// most of the degree mass, so wedge counts concentrate on them.
    Zipf(f64),
}

impl Skew {
    /// Short stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Skew::Hash => "hash",
            Skew::Zipf(_) => "zipf",
        }
    }
}

/// Fault scenario applied to the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// No faults.
    Clean,
    /// One leaf's links gain latency far above the publish cadence: its
    /// reports go stale at the root but nothing is lost.
    Straggler,
    /// One leaf crashes mid-stream (losing its post-checkpoint window) and
    /// restores from its checkpoint in virtual time.
    CrashRestore,
}

impl Scenario {
    /// Short stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::Straggler => "straggler",
            Scenario::CrashRestore => "crash_restore",
        }
    }
}

/// One reduced sweep point (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Leaf count `S`.
    pub shards: usize,
    /// Aggregator count `K`.
    pub aggregators: usize,
    /// Keyspace label (`"hash"` / `"zipf"`).
    pub skew: &'static str,
    /// Scenario label (`"clean"` / `"straggler"` / `"crash_restore"`).
    pub scenario: &'static str,
    /// Seed the point ran under.
    pub seed: u64,
    /// Edges pushed by the source.
    pub pushed: u64,
    /// Exact triangle count of the (deduplicated) stream graph.
    pub exact_triangles: u64,
    /// Exact wedge count of the stream graph.
    pub exact_wedges: u128,
    /// Absolute relative error of the merged triangle estimate.
    pub tri_are: f64,
    /// Absolute relative error of the merged wedge estimate.
    pub wedge_are: f64,
    /// Whether the merged 95% CI covered the exact triangle count.
    pub tri_covered: bool,
    /// Whether the merged 95% CI covered the exact wedge count.
    pub wedge_covered: bool,
    /// Root publishes during the run.
    pub epochs: usize,
    /// Publishes that extrapolated from a partial leaf set.
    pub degraded_epochs: usize,
    /// Worst included-report age over all publishes, virtual ns.
    pub staleness_max_ns: u64,
    /// Mean of per-publish mean report ages, virtual ns.
    pub staleness_mean_ns: u64,
    /// Arrivals lost to crashes.
    pub lost_arrivals: u64,
    /// Completed shard restarts.
    pub restarts: u64,
    /// Tree merge bit-identical to flat merge.
    pub tree_identical: bool,
    /// Virtual completion time, ns.
    pub finished_at_ns: u64,
}

impl SweepPoint {
    /// Stable machine-readable name, e.g. `sim/s64/zipf/crash_restore`.
    pub fn name(&self) -> String {
        format!("sim/s{}/{}/{}", self.shards, self.skew, self.scenario)
    }
}

/// The generated edge stream for a skew setting: deterministic in
/// `(skew, n_edges, seed)`.
pub fn stream_for(skew: Skew, n_edges: usize, seed: u64) -> Vec<Edge> {
    match skew {
        Skew::Hash => {
            // Size the generator so ~n_edges come out, then truncate.
            let per_node = 4;
            let nodes = (n_edges / per_node + 8) as u32;
            let mut edges = permuted(&holme_kim(nodes, per_node, 0.6, seed), seed ^ 0x9E37);
            edges.truncate(n_edges);
            edges
        }
        Skew::Zipf(alpha) => zipf_edges_distinct(n_edges / 8, n_edges, alpha, seed),
    }
}

/// Fault script for a scenario, sized to the run (crash site scales with
/// per-shard arrivals so it fires at every `S`).
pub fn faults_for(scenario: Scenario, shards: usize, n_edges: usize) -> SimFaults {
    match scenario {
        Scenario::Clean => SimFaults::none(),
        Scenario::Straggler => SimFaults::none().straggler(1 % shards, 5_000_000),
        Scenario::CrashRestore => {
            let at = ((n_edges / shards / 2) as u64).max(5);
            SimFaults::none().crash_at(1 % shards, at, 2_000_000)
        }
    }
}

/// Runs one sweep point end to end: generate the stream, simulate the
/// cluster, compute exact truth, reduce.
pub fn quality_point(
    shards: usize,
    aggregators: usize,
    capacity: usize,
    skew: Skew,
    scenario: Scenario,
    n_edges: usize,
    seed: u64,
) -> SweepPoint {
    let edges = stream_for(skew, n_edges, seed);
    let mut cfg = SimConfig::new(shards, aggregators, capacity, seed);
    // Keep the epoch/checkpoint cadence meaningful at every S: a 256-leaf
    // cluster sees ~n/S arrivals per shard.
    cfg.epoch_every = ((n_edges / shards / 4) as u64).clamp(8, 256);
    cfg.checkpoint_every = (cfg.epoch_every / 2).max(4);
    let faults = faults_for(scenario, shards, n_edges);
    let outcome = run_cluster(&cfg, &faults, TriangleWeight::default(), &edges);
    reduce(&cfg, skew, scenario, seed, &edges, &outcome)
}

fn reduce(
    cfg: &SimConfig,
    skew: Skew,
    scenario: Scenario,
    seed: u64,
    edges: &[Edge],
    outcome: &SimOutcome,
) -> SweepPoint {
    let graph = CsrGraph::from_edges(edges);
    let exact_triangles = exact::triangle_count(&graph);
    let exact_wedges = exact::wedge_count(&graph);
    let tri = outcome.flat.triangles;
    let wedge = outcome.flat.wedges;
    let (tlo, thi) = tri.ci95();
    let (wlo, whi) = wedge.ci95();
    let tri_truth = exact_triangles as f64;
    let wedge_truth = exact_wedges as f64;
    let staleness_mean_ns = if outcome.epochs.is_empty() {
        0
    } else {
        outcome
            .epochs
            .iter()
            .map(|e| e.staleness_mean_ns)
            .sum::<u64>()
            / outcome.epochs.len() as u64
    };
    SweepPoint {
        shards: cfg.shards,
        aggregators: cfg.aggregators,
        skew: skew.label(),
        scenario: scenario.label(),
        seed,
        pushed: outcome.pushed,
        exact_triangles,
        exact_wedges,
        tri_are: tri.are(tri_truth),
        wedge_are: wedge.are(wedge_truth),
        tri_covered: tlo <= tri_truth && tri_truth <= thi,
        wedge_covered: wlo <= wedge_truth && wedge_truth <= whi,
        epochs: outcome.epochs.len(),
        degraded_epochs: outcome.degraded_epochs(),
        staleness_max_ns: outcome
            .epochs
            .iter()
            .map(|e| e.staleness_max_ns)
            .max()
            .unwrap_or(0),
        staleness_mean_ns,
        lost_arrivals: outcome.lost_arrivals,
        restarts: outcome.restarts,
        tree_identical: outcome.tree_matches_flat(),
        finished_at_ns: outcome.finished_at_ns,
    }
}

/// Runs the sweep grid `shard_counts` × {hash, Zipf(1.0)} × {clean,
/// straggler, crash/restore}, one run per point, invoking `progress` as
/// each point completes. `n_edges` and `capacity` size every point;
/// aggregators default to `S/8` (min 2).
pub fn sweep(
    shard_counts: &[usize],
    n_edges: usize,
    capacity: usize,
    seed: u64,
    mut progress: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &shards in shard_counts {
        let aggregators = (shards / 8).max(2);
        for &skew in &[Skew::Hash, Skew::Zipf(1.0)] {
            for &scenario in &[Scenario::Clean, Scenario::Straggler, Scenario::CrashRestore] {
                let point =
                    quality_point(shards, aggregators, capacity, skew, scenario, n_edges, seed);
                progress(&point);
                out.push(point);
            }
        }
    }
    out
}

/// The default sweep grid: `S ∈ {16, 64, 256}` over [`sweep`]'s skew and
/// scenario axes.
pub fn default_sweep(n_edges: usize, capacity: usize, seed: u64) -> Vec<SweepPoint> {
    sweep(&[16, 64, 256], n_edges, capacity, seed, |_| {})
}
