//! # gps-sim — deterministic discrete-event scale-out testbed
//!
//! The engine (`gps-engine`) runs `S` shards on `S` threads, so on a small
//! machine nothing above a handful of shards is ever *observed* — yet the
//! colorful-merge math ([`gps_core::TriadEstimates::merged_colored`]) and
//! the fault-tolerance story are claimed for `S ≫ cores`. This crate closes
//! that gap with a seeded discrete-event simulator: a virtual u64-nanosecond
//! clock, a stable event heap, simulated hosts connected by links with
//! configurable latency/jitter, straggler and crash/restore-from-checkpoint
//! injection — and **no wall clock anywhere**, so every run is
//! bit-reproducible.
//!
//! The crucial property: simulated shard-nodes drive the **real** code.
//! Each [`LeafNode`] hosts a production
//! [`ShardRunner`](gps_engine::ShardRunner) (real `GpsSampler`, real
//! `InStreamEstimator`), checkpoints in the real `gps_core::persist`
//! format, restores through the engine's real restart path, and the root
//! merges with the real [`TriadEstimates`](gps_core::TriadEstimates)
//! colorful merge. The sim is a test harness over production logic, not a
//! model of it — what it pins at `S = 256` is the code that ships.
//!
//! Layers:
//! - [`event`]: virtual clock + stable `(time, sequence)` event heap.
//! - [`net`]: per-link latency/jitter model (seeded).
//! - [`node`]: a simulated shard host over the production runner, with
//!   crash/queue/replay semantics mirroring the engine supervisor.
//! - [`cluster`]: source → `S` leaves → `K` aggregators → root, the
//!   two-level merge tree (forward-only aggregators keep the tree merge
//!   bit-identical to the flat merge), publish cadence, staleness ledger.
//! - [`zipf`]: Zipf-skewed keyspaces for partition-skew experiments.
//! - [`experiment`]: the quality-vs-scale sweep
//!   (`S ∈ {16,64,256}` × skew × fault scenario) reduced to pinned numbers.
//!
//! See `docs/scale-out.md` for the architecture and measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod event;
pub mod experiment;
pub mod net;
pub mod node;
pub mod zipf;

pub use cluster::{run_cluster, EpochStats, SimConfig, SimFaults, SimOutcome};
pub use event::Scheduler;
pub use experiment::{default_sweep, quality_point, stream_for, sweep, Scenario, Skew, SweepPoint};
pub use net::Link;
pub use node::{LeafNode, LeafReport};
pub use zipf::{zipf_edges, zipf_edges_distinct, Zipf};
