//! The discrete-event core: a virtual clock and an event heap.
//!
//! Virtual time is a plain `u64` of nanoseconds since simulation start —
//! never a wall clock. Events scheduled for the same instant pop in
//! scheduling order (a monotone sequence number breaks ties), so a run is
//! a pure function of the schedule calls: same inputs, same event order,
//! every time, on any machine. That tie-break is what makes whole
//! simulations bit-reproducible — `BinaryHeap` alone is not stable.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: ordered by `(at, seq)`, payload ignored.
struct Scheduled<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest (then
    // first-scheduled) event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A seedless, wall-clock-free event scheduler (see the [module docs](self)).
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: u64,
    seq: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at virtual time 0.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` at `now + delay_ns`.
    pub fn schedule(&mut self, delay_ns: u64, event: E) {
        let at = self.now.saturating_add(delay_ns);
        self.schedule_at(at, event);
    }

    /// Schedules `event` at absolute virtual time `at` (clamped to `now`:
    /// the past is not schedulable).
    pub fn schedule_at(&mut self, at: u64, event: E) {
        self.heap.push(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the virtual clock to its instant.
    pub fn pop(&mut self) -> Option<E> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some(entry.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_schedule_order() {
        let mut s = Scheduler::new();
        s.schedule(20, "late");
        s.schedule(10, "tie-a");
        s.schedule(10, "tie-b");
        s.schedule(0, "first");
        assert_eq!(s.pop(), Some("first"));
        assert_eq!(s.now(), 0);
        assert_eq!(s.pop(), Some("tie-a"));
        assert_eq!(s.pop(), Some("tie-b"));
        assert_eq!(s.now(), 10);
        assert_eq!(s.pop(), Some("late"));
        assert_eq!(s.now(), 20);
        assert!(s.pop().is_none());
    }

    #[test]
    fn clock_only_moves_forward() {
        let mut s = Scheduler::new();
        s.schedule(100, 1u8);
        s.pop();
        // Scheduling "in the past" lands at the current instant instead.
        s.schedule_at(5, 2u8);
        s.pop();
        assert_eq!(s.now(), 100);
    }
}
